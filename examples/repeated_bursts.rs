//! Repeated sprints: responsiveness across a *sequence* of user events.
//!
//! "Once sprinting capacity is exhausted, the chip must cool in non-sprint
//! mode before it can sprint again" (Section 3). This example fires a
//! burst of work every few (compressed) seconds on a single persistent
//! `SprintSession`: `rest()` cools the package and recharges the hybrid
//! supply between bursts, and `begin_burst()` re-arms the controller
//! against whatever capacity the package has recovered. Early bursts get
//! the full sprint; a burst arriving before cooldown completes gets only
//! partial capacity and finishes slower.
//!
//! Run with: `cargo run --release --example repeated_bursts`

use computational_sprinting::prelude::*;

fn main() {
    // Thermal model compressed 15x (matching the workload scale).
    // Limited design: one burst consumes most of the sprint budget, so the
    // inter-burst gap visibly matters. The hybrid Li-ion + ultracap supply
    // rides along in the same session, recharging during the rests.
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .thermal(PhoneThermalParams::limited().time_scaled(15.0).build())
        .supply(HybridSupply::phone())
        .config(SprintConfig::hpca_parallel())
        .trace_capacity(0)
        .build();

    println!("burst  idle-before  budget-at-start  completion   supply-capacity");
    for (i, idle_s) in [0.0f64, 0.002, 0.002, 0.01, 0.05, 0.2].iter().enumerate() {
        // Idle interval before the burst: the chip cools (rest() also
        // trickle-recharges the cap at compressed time). Top up at real
        // (15x de-compressed) scale for positive gaps only — back-to-back
        // bursts get no extra charge.
        session.rest(*idle_s);
        if *idle_s > 0.0 {
            session.supply_mut().recharge_between_sprints(idle_s * 15.0);
        }
        let budget_j = session.thermal().sprint_energy_budget_j();

        // Fire the burst against the current thermal/electrical state.
        suite_loader(WorkloadKind::Feature, InputSize::C, 16)(session.machine_mut());
        session.begin_burst();
        let t0 = session.now_s();
        session.run_to_completion();
        let completion_s = session.now_s() - t0;
        // The in-loop draws happen at compressed time; account the burst
        // against the supply at real scale too, as the paper's Section 6
        // feasibility numbers do.
        let _ = session.supply_mut().sprint(16.0, completion_s * 15.0);

        println!(
            "{i:>5}  {:>8.0} ms  {:>13.3} J  {:>8.2} ms  {:>13.1} J",
            idle_s * 1e3,
            budget_j,
            completion_s * 1e3,
            session.supply().sprint_capacity_j(),
        );
    }
    println!();
    println!("back-to-back bursts (rows 1-2) start with a depleted budget and run");
    println!("~25% slower; once the gap covers the cooldown (rows 4-5) the PCM");
    println!("refreezes and full capacity returns — the paper's sprint-then-cool cycle.");
}
