//! Cross-rack requeue routing: a crash-retry stranded on a rack whose
//! nodes are all quarantined must be able to land on another rack.
//!
//! Retry-in-place is the regression under test: without routing, a
//! task whose rack lost every node re-enters that same rack's queue
//! forever and is still outstanding at the time limit. With
//! [`FacilityBuilder::route_requeues`] the settlement barrier drains
//! the stranded retry and places it on the least-loaded live rack,
//! where it completes. Routing must also not cost determinism: the
//! routed facility report is byte-identical at any worker count and on
//! either stepping core.

use sprint_cluster::{ClusterPolicy, ClusterTask, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultEvent, FaultKind, FaultPlan, FaultResponse};
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// Two 2-node racks; rack 0's crash plan kills both of its nodes
/// mid-task, stranding their work in the crash-retry queue. The
/// 64-window retry backoff spans the 32-window epoch, so a settlement
/// barrier always sees the stranded tasks before their in-place retry
/// would fire.
fn crashed_rack_facility(route: bool, event_driven: bool) -> Facility {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let ev = |window: u64, node: u32| FaultEvent {
        window,
        node,
        kind: FaultKind::NodeCrash,
    };
    FacilityBuilder::new(2)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::greedy_default())
        .tasks_on(
            0,
            ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 2),
        )
        .tasks_on(
            1,
            ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 2),
        )
        .fault_on(
            0,
            FaultPlan::new(vec![ev(10, 0), ev(12, 1)])
                .with_retries(3, 64)
                .with_response(FaultResponse::Aware),
        )
        .epoch_windows(32)
        .max_time_s(0.01)
        .event_driven(event_driven)
        .route_requeues(route)
        .build()
}

/// The regression itself: retry-in-place strands work on a dead rack;
/// routing completes every task on the surviving one.
#[test]
fn routing_rescues_tasks_stranded_on_a_quarantined_rack() {
    let in_place = crashed_rack_facility(false, false).run(1);
    assert_eq!(in_place.node_crashes, 2, "the crash plan must bite");
    assert_eq!(
        in_place.rack_reports[0].quarantined_nodes, 2,
        "both origin nodes must be quarantined"
    );
    assert!(
        in_place.outstanding_tasks > 0 && !in_place.all_drained,
        "retry-in-place on a dead rack must strand work at the time \
         limit — otherwise this fixture tests nothing"
    );
    assert_eq!(in_place.migrated_tasks, 0);
    assert!(in_place.task_conservation_holds());

    let routed = crashed_rack_facility(true, false).run(1);
    assert_eq!(routed.node_crashes, 2);
    assert!(
        routed.migrated_tasks >= 1,
        "no stranded retry was ever routed"
    );
    assert_eq!(
        routed.rack_reports[0].migrated_tasks, routed.migrated_tasks,
        "every migration originates on the crashed rack"
    );
    assert_eq!(
        routed.completed, routed.total_tasks,
        "a routed facility must finish every submitted task: {} of {} \
         done, {} outstanding",
        routed.completed, routed.total_tasks, routed.outstanding_tasks,
    );
    assert!(routed.all_drained);
    assert!(routed.task_conservation_holds());
    // The facility total is net of the migration double count: both
    // runs submitted the same four tasks.
    assert_eq!(routed.total_tasks, in_place.total_tasks);
    // Rack 1 resolved its own two tasks plus every routed one.
    assert_eq!(routed.rack_reports[1].completed, 2 + routed.migrated_tasks);
    // A routed task's latency spans the crash and the migration: it
    // can only be worse than an undisturbed task's, and must be
    // finite.
    assert!(routed.max_latency_s.is_finite());
}

/// Routing must not cost a bit of determinism: worker count and
/// stepping core are both invisible in the routed report digest.
#[test]
fn routed_facility_is_byte_identical_across_cores_and_worker_counts() {
    let oracle = crashed_rack_facility(true, false).run(1);
    assert!(oracle.migrated_tasks >= 1, "the routing never fired");
    let report = crashed_rack_facility(true, false).run(2);
    assert_eq!(
        oracle.digest(),
        report.digest(),
        "routed lockstep facility diverged at 2 workers"
    );
    for threads in [1usize, 2] {
        let report = crashed_rack_facility(true, true).run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "routed event-driven facility at {threads} workers diverged \
             from the lockstep oracle"
        );
    }
}

/// The flag alone must change nothing: with no crash plan there is
/// nothing to strand, and the routed facility is byte-identical to the
/// unrouted one.
#[test]
fn routing_without_crashes_is_byte_identical_to_the_unrouted_run() {
    let build = |route: bool| {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.tdp_w = 8.0;
        FacilityBuilder::new(2)
            .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
            .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
            .config(cfg)
            .policy(ClusterPolicy::greedy_default())
            .tasks_on(
                0,
                ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 2),
            )
            .tasks_on(
                1,
                ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 2),
            )
            .epoch_windows(32)
            .max_time_s(0.01)
            .route_requeues(route)
            .build()
    };
    let plain = build(false).run(2);
    let routed = build(true).run(2);
    assert_eq!(plain.migrated_tasks, 0);
    assert_eq!(
        plain.digest(),
        routed.digest(),
        "an idle requeue router must be invisible"
    );
}
