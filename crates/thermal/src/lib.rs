//! Thermal modelling for computational sprinting.
//!
//! This crate implements the thermal side of *Computational Sprinting*
//! (Raghavan et al., HPCA 2012): lumped thermal RC networks with
//! phase-change-material (PCM) nodes, the paper's smart-phone package model
//! (Figure 3), and the transient analyses behind Figure 4.
//!
//! Heat storage uses the *enthalpy method*: nodes store joules, and
//! temperature is a piecewise function of enthalpy. A PCM node therefore
//! exhibits an exact temperature plateau at its melting point while latent
//! heat is absorbed — precisely the behaviour sprinting exploits to buffer
//! an order-of-magnitude power overshoot for sub-second bursts.
//!
//! # Quick start
//!
//! ```
//! use sprint_thermal::phone::PhoneThermalParams;
//! use sprint_thermal::analysis::simulate_sprint;
//!
//! // The paper's design point: 150 mg PCM, 60 C melting point, 70 C limit.
//! let mut phone = PhoneThermalParams::hpca().build();
//! assert!(phone.max_sprint_power_w() >= 16.0);
//!
//! // Sprint at 16x the ~1 W TDP: lasts a little over one second.
//! let transient = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
//! let duration = transient.duration_s.unwrap();
//! assert!(duration > 1.0 && duration < 2.0);
//! ```
//!
//! # Lumped vs grid backends
//!
//! Two families of thermal backend live here, and both implement the
//! sprint loop's `ThermalModel` contract (in `sprint-core`):
//!
//! * **Lumped** ([`phone::PhoneThermal`], and `sprint-core`'s
//!   single-node `LumpedThermal`): a handful of RC nodes. Cheap, exactly
//!   integrable, and faithful to the paper's Figure 3 — but it reports a
//!   single junction temperature, so every core looks equally hot.
//!   Pick it for figure reproduction, design sweeps, and any scenario
//!   where package-level capacity is the question.
//! * **Grid** ([`grid::GridThermal`]): a HotSpot-style `nx x ny` cell
//!   grid per package layer (die / PCM / spreader), with per-core power
//!   mapped through a [`floorplan::Floorplan`]. Active cores form
//!   hotspots several degrees above the die mean, and the backend
//!   reports the *hottest cell* as the junction — so sprints abort (or
//!   shed cores, with the hotspot-aware controller policy) on local
//!   heating the lumped models cannot represent. Pick it when spatial
//!   questions matter: how many cores may sprint, which ones, and what
//!   the die gradient looks like. Two integration schemes are
//!   available ([`grid::GridSolver`]): the bit-stable explicit default,
//!   and a semi-implicit ADI solver whose sub-step does not shrink with
//!   the grid resolution — at 32x32 it is >10x faster at matched
//!   (<0.1 K) accuracy, which is what makes fine grids and rack-scale
//!   floorplans practical (PCM-free layers additionally reuse cached
//!   tridiagonal factorizations across sub-steps). See the "Choosing a
//!   solver" section of the [`grid`] module docs.
//!
//! The floorplan abstraction scales past a die: a *rack* is a floorplan
//! whose "cores" are servers over a shared-airflow plenum layer
//! ([`grid::GridThermalParams::rack`]), with per-region readouts
//! (`core_temp_c`, `region_sprint_budget_j`) so each server sees its
//! own silicon — the substrate `sprint-cluster` schedules against.
//!
//! The two agree by construction where they overlap: a 1x1-cell-per-layer
//! grid reproduces the lumped chain (see
//! [`grid::GridThermalParams::phone_equivalent`]).
//!
//! # Modules
//!
//! * [`material`] — thermophysical property database (Cu, Al, icosane, the
//!   paper's reference PCM) and block-sizing helpers.
//! * [`node`] — enthalpy-method storage nodes with optional phase change.
//! * [`circuit`] — thermal RC networks with steady-state solving.
//! * [`solver`] — stable explicit transient integration.
//! * [`phone`] — the Figure 3 smart-phone model with PCM.
//! * [`floorplan`] — core rectangles rasterized onto cell grids.
//! * [`grid`] — the HotSpot-style multi-layer grid backend.
//! * [`analysis`] — sprint and cooldown transients (Figure 4).
//! * [`trace`] — time-series recording.
//! * [`tridiag`] — the O(n) Thomas solver behind the ADI sweeps,
//!   including the batched (structure-of-arrays) bundle solves.
//! * [`pool`] — the persistent worker pool that fans ADI line sweeps
//!   across threads, bit-identically at any lane count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod circuit;
pub mod floorplan;
pub mod grid;
pub mod material;
pub mod node;
pub mod phone;
pub mod pool;
pub mod solver;
pub mod trace;
pub mod tridiag;

pub use analysis::{
    cooldown_rule_of_thumb_s, pcm_mass_for_sprint_g, simulate_cooldown, simulate_sprint,
    CooldownTransient, SprintTransient,
};
pub use circuit::{NodeId, ThermalNetwork};
pub use floorplan::{CoreRect, Floorplan};
pub use grid::{GridLayer, GridSolver, GridThermal, GridThermalParams, LayerPhase};
pub use material::Material;
pub use node::{PhaseChange, StorageNode};
pub use phone::{BoardPath, PhoneThermal, PhoneThermalParams};
pub use pool::SolverPool;
pub use solver::TransientSolver;
pub use trace::{Trace, TracePoint};
pub use tridiag::Tridiag;
