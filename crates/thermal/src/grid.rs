//! HotSpot-style multi-layer grid thermal backend.
//!
//! Where [`crate::phone`] lumps the whole package into a handful of RC
//! nodes, [`GridThermal`] discretizes each package layer (die, PCM,
//! spreader, ...) into an `nx x ny` cell grid. Per-core power from a
//! [`Floorplan`](crate::floorplan::Floorplan) is injected into the die
//! cells it overlaps, conducts laterally within layers and vertically
//! between them, and finally convects from the last layer to the
//! ambient. The payoff is *where* heat accumulates: active cores form
//! hotspots several degrees above the die average, so the hottest cell —
//! not the mean — is what gates a sprint.
//!
//! Cells store enthalpy (the same enthalpy method as [`crate::node`]),
//! so a PCM layer exhibits an exact per-cell melting plateau and energy
//! conservation holds to floating-point roundoff.
//!
//! # Choosing a solver
//!
//! Two integration schemes share the same state, power map and
//! invariants; pick one with [`GridThermalParams::solver`]:
//!
//! * [`GridSolver::Explicit`] (the default) — forward Euler with
//!   automatic sub-stepping: the step size is bounded by a fraction of
//!   the smallest cell RC constant, computed once at build time (layer
//!   structure cannot change afterwards). Every arithmetic operation is
//!   plain `f64` add/mul — no transcendentals — so traces are
//!   bit-reproducible across platforms, which the golden-trace test
//!   relies on. **Explicit is required whenever bit-stable traces
//!   matter** (golden tables, cross-platform regression baselines).
//!   Its cost is the catch: the stability sub-step shrinks with the
//!   *cell* time constant, so refining an `n x n` die grid multiplies
//!   both the cell count (`n^2`) and the sub-step count (`~n^2`) —
//!   `O(n^4)` work overall. Fine at 8x8; painful at 32x32; hopeless for
//!   a rack-as-floorplan grid.
//!
//! * [`GridSolver::Adi`] — a semi-implicit operator-split scheme
//!   (alternating-direction implicit): each sub-step sweeps die rows,
//!   then columns, then the vertical layer stacks, solving one
//!   tridiagonal system per line with the O(n) Thomas solver
//!   ([`crate::tridiag`]). Implicit sweeps are unconditionally stable,
//!   so the sub-step is bounded by the fastest *layer-to-layer*
//!   (vertical) time constant — which is independent of the grid
//!   resolution — instead of the lateral cell constant. The PCM
//!   nonlinearity is handled by a per-step phase-state linearization:
//!   each cell's phase branch (solid / melting plateau / liquid) is
//!   frozen at sub-step entry — plateau cells become fixed-temperature
//!   rows, the others use their branch capacity — and enthalpy is then
//!   corrected from the post-sweep edge fluxes, which are antisymmetric
//!   by construction, so *exact* energy conservation survives (the same
//!   invariant the explicit property tests pin). Accuracy tracks the
//!   explicit solver to well under 0.1 K on sprint-and-rest cycles
//!   (see `tests/grid_adi.rs`) while taking sub-steps 10-200x larger,
//!   which is a >10x wall-clock win at 32x32 and grows with resolution
//!   (`perfbench` records the trajectory in `BENCH_grid.json`).
//!   Prefer it for fine grids (16x16 and up), long scenarios, and
//!   rack-scale floorplans; its traces are deterministic but *not*
//!   bit-identical to the explicit solver's.
//!
//! ## Batched and threaded sweeps
//!
//! The ADI sweeps are hundreds of *independent* tridiagonal lines per
//! sub-step (one per row, column and vertical cell stack), and the
//! engine exploits that on two axes:
//!
//! * **Batching (always on).** Lines of a sweep are solved as lanes of
//!   one structure-of-arrays pass ([`crate::tridiag`]'s `solve_batch` /
//!   `solve_planar`): the Thomas recurrence is a serially-dependent
//!   chain *within* a line, but lanes are independent, so laying lines
//!   side by side turns the latency-bound per-line chain into
//!   unit-stride inner loops the auto-vectorizer chews whole `f64`
//!   lanes at a time. Every lane performs the per-line arithmetic in
//!   the per-line order, so batched sweeps are bit-identical to
//!   line-at-a-time sweeps (pinned by the tridiag property tests and
//!   the in-module reference-equivalence tests).
//!
//! * **Threading ([`GridThermalParams::solver_threads`], default 1).**
//!   On a PCM-free grid (the rack/facility scale case) the sweep lines
//!   and the per-cell operator evaluation fan out across a small
//!   persistent worker pool ([`crate::pool::SolverPool`]). Determinism
//!   rules: the line→lane assignment is a fixed pure function of the
//!   counts, concurrent writes land in lane-disjoint cells, and the one
//!   cross-line reduction (`boundary_absorbed_j`) is re-accumulated by
//!   the caller in ascending cell order — so traces are **byte-identical
//!   at 1, 2 or 8 threads** and to the serial engine
//!   (`tests/grid_threads.rs` pins it). `solver_threads: 1` runs
//!   today's serial code path untouched. Grids *with* PCM integrate
//!   serially regardless (still batched): the phase-state relineariza-
//!   tion is per-sub-step and cheap next to the sweeps it gates.
//!   Guidance: threads only pay where a sweep has enough lines to
//!   amortize two condvar round-trips per region — rack grids (32x32
//!   and up) benefit; die-scale grids (16x16 and below) should stay
//!   single-threaded. The `SPRINT_SOLVER_THREADS` env var overrides
//!   the builder default via
//!   [`GridThermalParams::with_env_solver_threads`] (the
//!   cluster/facility builders and examples apply it).
//!
//! ## Automatic explicit fallback
//!
//! An ADI sub-step costs several explicit sub-steps' worth of work
//! (operator evaluation plus three sweeps). On coarse or strongly
//! time-compressed grids the explicit stability bound can be so close
//! to the ADI accuracy bound that implicit sweeps are pure overhead, so
//! when [`GridThermalParams::adi_explicit_fallback`] is on (the
//! default), a window whose explicit sub-step count is within
//! [`ADI_FALLBACK_COST_RATIO`]x of its ADI sub-step count integrates
//! explicitly instead — per `advance` call, from the same state, with
//! the same invariants. Disable it to pin the ADI path itself (as the
//! solver-equivalence tests do).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::floorplan::Floorplan;
use crate::phone::PhoneThermalParams;
use crate::pool::{lane_range, SolverPool};
use crate::tridiag::{Tridiag, TridiagFactor};

/// Integration scheme for a [`GridThermal`] backend. See the
/// [module docs](self) for the accuracy/cost trade-off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridSolver {
    /// Forward Euler, sub-stepped to the smallest cell RC constant.
    /// Bit-stable traces; `O(cells x substeps)` cost that grows as
    /// `n^4` with grid refinement. The default.
    #[default]
    Explicit,
    /// Semi-implicit ADI: row/column/stack Thomas sweeps with per-step
    /// phase-state linearization. Unconditionally stable, sub-step set
    /// by the resolution-independent vertical time constant; exactly
    /// energy-conserving but not bit-identical to `Explicit`.
    Adi,
}

/// Phase-change parameters of a grid layer (totals for the whole layer;
/// distributed over cells by area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPhase {
    /// Melting temperature, Celsius.
    pub melt_temp_c: f64,
    /// Total latent heat of the layer, joules.
    pub latent_heat_j: f64,
    /// Total sensible capacity of the liquid phase, J/K.
    pub liquid_capacity_j_per_k: f64,
}

/// One package layer of the grid stack, top (die) downwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridLayer {
    /// Layer name (used in accessors and error messages).
    pub name: String,
    /// Total (solid-phase) sensible heat capacity of the layer, J/K.
    pub capacity_j_per_k: f64,
    /// Lateral sheet resistance, K/W per square (`1 / (k * thickness)`).
    /// `f64::INFINITY` disables lateral conduction in this layer.
    pub lateral_r_square_k_per_w: f64,
    /// Interface resistance from this layer to the next, K/W across the
    /// whole die area (ignored for the last layer, which couples to the
    /// ambient through the sink resistance instead).
    pub r_to_next_k_per_w: f64,
    /// Optional phase change (a PCM layer).
    pub phase_change: Option<LayerPhase>,
}

impl GridLayer {
    /// A sensible-only layer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity or resistances.
    pub fn sensible(
        name: impl Into<String>,
        capacity_j_per_k: f64,
        lateral_r_square_k_per_w: f64,
        r_to_next_k_per_w: f64,
    ) -> Self {
        let layer = Self {
            name: name.into(),
            capacity_j_per_k,
            lateral_r_square_k_per_w,
            r_to_next_k_per_w,
            phase_change: None,
        };
        layer.validate();
        layer
    }

    /// A phase-change layer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacities, latent heat or resistances.
    pub fn pcm(
        name: impl Into<String>,
        capacity_j_per_k: f64,
        lateral_r_square_k_per_w: f64,
        r_to_next_k_per_w: f64,
        phase: LayerPhase,
    ) -> Self {
        let layer = Self {
            name: name.into(),
            capacity_j_per_k,
            lateral_r_square_k_per_w,
            r_to_next_k_per_w,
            phase_change: Some(phase),
        };
        layer.validate();
        layer
    }

    fn validate(&self) {
        assert!(
            self.capacity_j_per_k.is_finite() && self.capacity_j_per_k > 0.0,
            "layer capacity must be positive"
        );
        assert!(
            self.lateral_r_square_k_per_w > 0.0,
            "lateral resistance must be positive (INFINITY to disable)"
        );
        assert!(
            self.r_to_next_k_per_w.is_finite() && self.r_to_next_k_per_w > 0.0,
            "interface resistance must be positive"
        );
        if let Some(pc) = &self.phase_change {
            assert!(pc.latent_heat_j > 0.0, "latent heat must be positive");
            assert!(
                pc.liquid_capacity_j_per_k > 0.0,
                "liquid capacity must be positive"
            );
        }
    }
}

/// Full parameter set for a [`GridThermal`] backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridThermalParams {
    /// Ambient temperature, Celsius.
    pub ambient_c: f64,
    /// Maximum safe cell temperature, Celsius.
    pub t_max_c: f64,
    /// Grid cells along the die width.
    pub nx: usize,
    /// Grid cells along the die height.
    pub ny: usize,
    /// Core placement (power injection map for the die layer).
    pub floorplan: Floorplan,
    /// Package layers, die first. The die layer (index 0) receives the
    /// chip power; the last layer couples to ambient.
    pub layers: Vec<GridLayer>,
    /// Convection resistance from the last layer to ambient, K/W across
    /// the whole area.
    pub r_sink_ambient_k_per_w: f64,
    /// Sub-step bound as a fraction of the smallest cell RC constant.
    /// The ADI solver applies the same fraction to its (much larger)
    /// vertical time constant, so it doubles as the accuracy knob.
    pub stability_fraction: f64,
    /// Integration scheme (see the module docs' "Choosing a solver").
    pub solver: GridSolver,
    /// Execution lanes for the ADI sweeps on PCM-free grids: 1 (the
    /// default) is the serial engine; `k > 1` fans sweep lines across a
    /// persistent `k`-lane [`SolverPool`] with byte-identical results
    /// at any lane count (see the module docs' "Batched and threaded
    /// sweeps"). Ignored by the explicit solver and on grids with PCM.
    pub solver_threads: usize,
    /// Let a window whose explicit sub-step count is within
    /// [`ADI_FALLBACK_COST_RATIO`]x of its ADI sub-step count integrate
    /// explicitly even under [`GridSolver::Adi`] (on by default; see
    /// the module docs' "Automatic explicit fallback"). Disable to pin
    /// the ADI path itself regardless of cost.
    pub adi_explicit_fallback: bool,
}

impl GridThermalParams {
    /// A grid re-provisioning of the paper's phone package: the same
    /// junction/PCM/case capacities and series resistances as
    /// [`PhoneThermalParams::hpca`] (without the secondary board path),
    /// but with the die split into cells over a 4x4 core floorplan. TDP
    /// and sprint budget are near the lumped design's; what changes is
    /// that active cores form hotspots ~5-10 C above the die mean, so
    /// the hottest cell hits the 70 C limit during a 16 W sprint even
    /// though the *average* junction stays comfortably below it.
    ///
    /// Hotspot timescales at 1 W/core (uncompressed): 16 active cores
    /// reach the limit in ~0.75 s — well before the lumped package's
    /// ~1.1 s budget — while 8 cores last ~1.3 s and 4 cores ~3 s, so a
    /// core-count throttle genuinely stretches the sprint.
    pub fn hpca_like() -> Self {
        Self {
            ambient_c: 25.0,
            t_max_c: 70.0,
            nx: 8,
            ny: 8,
            floorplan: Floorplan::regular_array(4, 4, 0.72, 0.8),
            layers: vec![
                // Die: the junction lump of the phone model, now spatial.
                // Lateral sheet resistance ~= 1/(k_si * t_die).
                GridLayer::sensible("die", 0.01, 8.0, 0.35),
                // PCM: metal-foam-infiltrated composite (the paper's
                // Section 4.4 encapsulation), so lateral conduction
                // redistributes a hot core's heat into neighbouring
                // still-frozen PCM; the interface to the case remains
                // the dominant cooling resistance.
                GridLayer::pcm(
                    "pcm",
                    0.042,
                    300.0,
                    38.0,
                    LayerPhase {
                        melt_temp_c: 60.0,
                        latent_heat_j: 14.0,
                        liquid_capacity_j_per_k: 0.042,
                    },
                ),
                // Spreader/case: copper-class lateral spreading.
                GridLayer::sensible("spreader", 50.0, 2.0, 1.0),
            ],
            r_sink_ambient_k_per_w: 1.0,
            stability_fraction: 0.2,
            solver: GridSolver::Explicit,
            solver_threads: 1,
            adi_explicit_fallback: true,
        }
    }

    /// A 1x1-cell-per-layer grid equivalent of a (board-less) phone
    /// package: die = junction lump, PCM block, spreader = case, with
    /// the same capacities and series resistances. Used to validate the
    /// grid solver against the lumped reference — both must track the
    /// same junction trajectory. The secondary board path (if present in
    /// `phone`) is not modelled; compare against a `board_path: None`
    /// build.
    ///
    /// # Panics
    ///
    /// Panics if `phone` has no PCM (the grid stack expects the
    /// three-layer chain) or a PCM material without a melting point.
    pub fn phone_equivalent(phone: &PhoneThermalParams) -> Self {
        assert!(
            phone.pcm_mass_g > 0.0,
            "phone_equivalent needs the PCM layer"
        );
        let melt = phone
            .pcm_material
            .melting_point_c()
            .expect("PCM material must have a melting point");
        let sensible = phone
            .pcm_material
            .block_heat_capacity_j_per_k(phone.pcm_mass_g);
        let latent = phone.pcm_material.block_latent_heat_j(phone.pcm_mass_g);
        Self {
            ambient_c: phone.ambient_c,
            t_max_c: phone.t_max_c,
            nx: 1,
            ny: 1,
            floorplan: Floorplan::full_die(),
            layers: vec![
                GridLayer::sensible(
                    "die",
                    phone.junction_capacity_j_per_k,
                    f64::INFINITY,
                    phone.r_junction_pcm_k_per_w,
                ),
                GridLayer::pcm(
                    "pcm",
                    sensible,
                    f64::INFINITY,
                    phone.r_pcm_case_k_per_w,
                    LayerPhase {
                        melt_temp_c: melt,
                        latent_heat_j: latent,
                        liquid_capacity_j_per_k: sensible,
                    },
                ),
                GridLayer::sensible("spreader", phone.case_capacity_j_per_k, f64::INFINITY, 1.0),
            ],
            r_sink_ambient_k_per_w: phone.r_case_ambient_k_per_w,
            // Tight sub-steps: this configuration exists to be compared
            // against the exactly-integrated lumped reference.
            stability_fraction: 0.05,
            solver: GridSolver::Explicit,
            solver_threads: 1,
            adi_explicit_fallback: true,
        }
    }

    /// A rack-as-floorplan grid: `cols x rows` *servers* (one floorplan
    /// "core" rectangle per node) over a shared-airflow plenum layer —
    /// the data-center generalization of the die model (Porto et al.'s
    /// "fast, but not so furious" sprinting regime). Heat leaves each
    /// node vertically into the plenum, mixes laterally there (strong
    /// lateral conduction stands in for airflow recirculation), and
    /// convects to the CRAC ambient through the sink resistance.
    ///
    /// The design point assumes paper-like nodes: ~1 W sustained and
    /// ~16 W sprinting per server. Capacities are deliberately small
    /// (a behavioural rack, not a physical one) so node sprints exhaust
    /// on the paper's timescales: per-node sprint budget ≈ 30 J, node
    /// time constant ≈ 0.4 s, rack (plenum) time constant ≈ 10 s. The
    /// sizing scales with the node count — a lone sprinter barely
    /// registers (junction ≈ 45 C), a third of the rack sprinting
    /// approaches the 70 C limit, and the whole rack sprinting drives
    /// the steady state far past it (thermal collapse) — which is
    /// exactly the contention a cluster-level admission policy manages.
    ///
    /// Defaults: 8x8 cells per node (so a 4x4 rack is a 32x32 grid) and
    /// the ADI solver — the stack has no PCM, so every ADI line factor
    /// is cached and the sub-step is resolution-independent; explicit
    /// sub-stepping at rack resolutions is exactly the cost the solver
    /// work removed. Override with [`Self::with_grid`] /
    /// [`Self::with_solver`] where a scenario needs to.
    ///
    /// # Panics
    ///
    /// Panics unless `cols` and `rows` are at least 1.
    pub fn rack(cols: usize, rows: usize) -> Self {
        assert!(cols >= 1 && rows >= 1, "rack needs at least one server");
        let nodes = (cols * rows) as f64;
        // Server rectangles nearly tile the rack footprint.
        let (span, fill) = (0.96, 0.82);
        let coverage = (span * fill) * (span * fill);
        // Per-node constants of the design point (see the doc comment).
        // The plenum is deliberately light: airflow carries little
        // thermal mass, so the shared layer *reacts* on sprint
        // timescales — load up the rack and every node's inlet warms
        // within a burst, which is what makes unmanaged all-node
        // sprinting overshoot into the failsafe instead of being
        // quietly absorbed.
        let server_c_j_per_k = 1.0 * nodes;
        let plenum_c_j_per_k = 0.5 * nodes;
        // Whole-area server->plenum resistance giving each node a local
        // vertical resistance of ~0.6 K/W through its own footprint.
        let r_server_plenum = 0.6 * coverage / nodes;
        // Sink sized so the rack sustains ~8 W per node at the limit:
        // all-sustained (1 W/node) idles ~30 C, a quarter of the rack
        // sprinting runs warm, the whole rack sprinting collapses.
        let r_sink = 45.0 / (8.0 * nodes);
        Self {
            ambient_c: 25.0,
            t_max_c: 70.0,
            nx: 8 * cols,
            ny: 8 * rows,
            floorplan: Floorplan::regular_array(cols, rows, span, fill),
            layers: vec![
                // Servers: chassis + heatsink mass, nearly isolated
                // laterally (conduction between neighbouring chassis
                // is negligible next to the airflow path).
                GridLayer::sensible("servers", server_c_j_per_k, 50.0, r_server_plenum),
                // Plenum: shared airflow; strong lateral mixing.
                GridLayer::sensible("plenum", plenum_c_j_per_k, 0.1, 1.0),
            ],
            r_sink_ambient_k_per_w: r_sink,
            stability_fraction: 0.2,
            solver: GridSolver::Adi,
            solver_threads: 1,
            adi_explicit_fallback: true,
        }
    }

    /// Sets the grid resolution (builder style).
    pub fn with_grid(mut self, nx: usize, ny: usize) -> Self {
        self.nx = nx;
        self.ny = ny;
        self
    }

    /// Swaps the floorplan (builder style).
    pub fn with_floorplan(mut self, floorplan: Floorplan) -> Self {
        self.floorplan = floorplan;
        self
    }

    /// Selects the integration scheme (builder style).
    pub fn with_solver(mut self, solver: GridSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the ADI sweep lane count (builder style); see
    /// [`Self::solver_threads`]. Results are byte-identical at any
    /// count, so this is purely a wall-clock knob.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "solver needs at least one lane");
        self.solver_threads = threads;
        self
    }

    /// Enables or disables the automatic explicit fallback for cheap
    /// windows (builder style); see [`Self::adi_explicit_fallback`].
    pub fn with_adi_fallback(mut self, enabled: bool) -> Self {
        self.adi_explicit_fallback = enabled;
        self
    }

    /// Applies the `SPRINT_SOLVER_THREADS` environment override to the
    /// lane count, if set and parseable as a positive integer (builder
    /// style). The cluster/facility builders and the examples route
    /// through this, so one env var sweeps a whole stack's solvers —
    /// and because threaded results are byte-identical, CI can run the
    /// same test suite at 1/2/8 threads as a determinism pin. Not
    /// applied inside [`Self::build`]: tests comparing explicit lane
    /// counts must stay meaningful under the CI matrix.
    pub fn with_env_solver_threads(mut self) -> Self {
        if let Ok(v) = std::env::var("SPRINT_SOLVER_THREADS") {
            if let Ok(threads) = v.trim().parse::<usize>() {
                if threads >= 1 {
                    self.solver_threads = threads;
                }
            }
        }
        self
    }

    /// Compresses every thermal time constant by `factor` by dividing
    /// all heat capacities and latent heats by it — the same simulation
    /// trick as [`PhoneThermalParams::time_scaled`]. Steady-state
    /// temperatures and TDP are unchanged; transients shrink by exactly
    /// `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is strictly positive and finite.
    pub fn time_scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        for layer in &mut self.layers {
            layer.capacity_j_per_k /= factor;
            if let Some(pc) = &mut layer.phase_change {
                pc.latent_heat_j /= factor;
                pc.liquid_capacity_j_per_k /= factor;
            }
        }
        self
    }

    /// Validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid/stack/floorplan, a limit at or below
    /// ambient, an ambient at or above a PCM melting point, or a
    /// stability fraction outside `(0, 0.5]`.
    pub fn validate(&self) {
        assert!(self.nx >= 1 && self.ny >= 1, "grid needs at least one cell");
        assert!(!self.layers.is_empty(), "stack needs at least one layer");
        assert!(
            self.floorplan.core_count() >= 1,
            "floorplan needs at least one core"
        );
        assert!(self.t_max_c > self.ambient_c, "limit must exceed ambient");
        assert!(
            self.r_sink_ambient_k_per_w.is_finite() && self.r_sink_ambient_k_per_w > 0.0,
            "sink resistance must be positive"
        );
        assert!(
            self.stability_fraction > 0.0 && self.stability_fraction <= 0.5,
            "stability fraction must be in (0, 0.5]"
        );
        assert!(self.solver_threads >= 1, "solver needs at least one lane");
        for layer in &self.layers {
            layer.validate();
            if let Some(pc) = &layer.phase_change {
                assert!(
                    self.ambient_c < pc.melt_temp_c,
                    "ambient must be below the PCM melting point"
                );
            }
        }
    }

    /// Equivalent junction-to-ambient series resistance of the stack
    /// (valid for uniform power: interface resistances plus sink), K/W.
    pub fn series_resistance_k_per_w(&self) -> f64 {
        let interfaces: f64 = self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.r_to_next_k_per_w)
            .sum();
        interfaces + self.r_sink_ambient_k_per_w
    }

    /// Builds the backend with every cell at ambient temperature.
    pub fn build(self) -> GridThermal {
        GridThermal::new(self)
    }
}

/// Implicitness weight of the ADI theta scheme. `1/2` is the
/// trapezoidal (Crank-Nicolson) limit — second-order accurate but with
/// zero damping of unresolved stiff modes; backing off slightly buys
/// L-stable-like damping (amplification `-(1-θ)/θ` as `dt/τ -> ∞`)
/// while keeping the first-order error term `(θ - 1/2) dt` an order of
/// magnitude below backward Euler's. The sprint-cycle equivalence tests
/// pin the resulting accuracy.
const ADI_THETA: f64 = 0.55;

/// Cost of one ADI sub-step in explicit sub-steps: a full operator
/// evaluation (= one explicit step) plus three batched sweeps, each a
/// few passes over the grid. With [`GridThermalParams::
/// adi_explicit_fallback`] on, an `advance` window integrates
/// explicitly whenever its explicit sub-step count is within this
/// ratio of its ADI count — i.e. whenever implicit sweeps cannot pay
/// for themselves. Coarse, heavily time-compressed racks (the
/// event-core perf case: explicit/ADI step ratio ≈ 1.2) and lumped 1x1
/// chains (ratio 1) fall back; every die-scale case stays ADI (8x8 at
/// the perfbench window is ratio 11, a 16x16 is ratio 41). The
/// crossover is pinned by `tests/grid_adi.rs`.
pub const ADI_FALLBACK_COST_RATIO: f64 = 5.0;

/// The sweep pool a grid integrates through when
/// [`GridThermalParams::solver_threads`] exceeds 1 — created lazily on
/// first use, or shared across backends via
/// [`GridThermal::install_solver_pool`] (the facility installs one pool
/// per worker shard so a single pool services every rack the shard
/// owns). A runtime resource, not model state: clones share the pool,
/// comparisons ignore it, and (de)serialization drops it (the lazy
/// rebuild restores it on the next threaded `advance`).
#[derive(Default, Serialize, Deserialize)]
struct PoolHandle(#[serde(skip)] Option<Arc<SolverPool>>);

impl Clone for PoolHandle {
    fn clone(&self) -> Self {
        PoolHandle(self.0.clone())
    }
}

impl PartialEq for PoolHandle {
    fn eq(&self, _other: &Self) -> bool {
        // The pool never influences results (byte-identical at any lane
        // count), so two grids differing only in pool wiring are equal.
        true
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(pool) => write!(f, "PoolHandle({} lanes)", pool.lanes()),
            None => write!(f, "PoolHandle(none)"),
        }
    }
}

/// A conductance edge between two cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct GridEdge {
    a: u32,
    b: u32,
    g_w_per_k: f64,
}

/// Per-cell phase-change bookkeeping (copied from the owning layer with
/// per-cell totals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CellPhase {
    melt_temp_c: f64,
    latent_heat_j: f64,
    liquid_capacity_j_per_k: f64,
}

/// Cached ADI line factorizations for the coefficient sets that cannot
/// change between sub-steps: every line of a PCM-free layer solves the
/// identical tridiagonal system (only melting-plateau rows ever alter a
/// coefficient, and only PCM layers have those), so the Thomas
/// elimination is factored once per theta-weighted step size and
/// replayed per line. Keyed on `wdt`; a `advance` call with a different
/// window size rebuilds lazily (a session's window is constant, so in
/// practice this is built once).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct AdiCoeffCache {
    /// The theta-weighted sub-step the factors were built for
    /// (0 = empty cache; `wdt` is always positive in use).
    wdt: f64,
    /// Per-layer row (x-direction) factors; `None` for PCM layers,
    /// lateral-disabled layers and 1-cell axes.
    rows: Vec<Option<TridiagFactor>>,
    /// Per-layer column (y-direction) factors.
    cols: Vec<Option<TridiagFactor>>,
    /// The vertical-stack factor, shared by every cell column (the
    /// per-cell conductances are uniform); `None` when any layer has
    /// phase change, since plateau rows rewrite stack coefficients.
    stack: Option<TridiagFactor>,
}

/// The grid thermal backend. See the module docs for the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridThermal {
    params: GridThermalParams,
    cells_per_layer: usize,
    /// Enthalpy per cell (J, relative to 0 C), layer-major.
    enthalpy_j: Vec<f64>,
    /// Solid-phase sensible capacity per cell, J/K.
    capacity_j_per_k: Vec<f64>,
    /// Phase change per cell (PCM layers only).
    phase: Vec<Option<CellPhase>>,
    /// Power injected per cell, W (die layer only).
    power_w: Vec<f64>,
    /// Conduction edges (lateral + vertical). Both solvers evaluate the
    /// full operator through this list: the explicit step directly, the
    /// ADI step for its Douglas-Gunn right-hand side.
    edges: Vec<GridEdge>,
    /// Convection edges from last-layer cells to ambient.
    sink: Vec<(u32, f64)>,
    /// Per-core (cell, weight) lists on the die layer.
    core_cells: Vec<Vec<(usize, f64)>>,
    /// Indices of phase-change cells (sparse: the PCM layer only), so
    /// the hot temperature pass can stay branch-free for the rest.
    pcm_cells: Vec<u32>,
    /// Per-layer x-neighbour conductance, W/K (0 = lateral disabled).
    lat_gx: Vec<f64>,
    /// Per-layer y-neighbour conductance, W/K (0 = lateral disabled).
    lat_gy: Vec<f64>,
    /// Per-cell vertical conductance across each layer interface, W/K.
    g_vert: Vec<f64>,
    /// Per-cell last-layer-to-ambient conductance, W/K.
    g_sink_cell: f64,
    chip_power_w: f64,
    /// Per-core power, watts — the source of truth behind `power_w`.
    /// Written either uniformly (the `set_chip_power_w` split over
    /// `active_cores`) or individually (`set_core_power_w`, the rack
    /// path where every node carries its own load).
    core_power_w: Vec<f64>,
    /// `core_power_w` changed since `power_w` was last rebuilt; the
    /// rebuild happens once at the next `advance` (many rack nodes
    /// update their powers between two integrations — one rebuild
    /// serves them all).
    core_power_dirty: bool,
    active_cores: usize,
    sub_step_s: f64,
    adi_sub_step_s: f64,
    time_s: f64,
    boundary_absorbed_j: f64,
    peak_hotspot_gradient_k: f64,
    /// Hottest die cell after the last `advance` (or reset), Celsius.
    /// Enthalpy only changes inside `advance`/`reset_to_ambient`, so
    /// the cache is always current; it turns the per-window
    /// junction/headroom/limit queries of the sprint controller from
    /// O(cells) scans into loads.
    junction_cache_c: f64,
    /// Peak temperature seen per core (max over its cells), Celsius.
    peak_core_temps_c: Vec<f64>,
    scratch_temps: Vec<f64>,
    scratch_flows: Vec<f64>,
    /// ADI scratch: per-cell effective capacity for the current
    /// sub-step's phase-state linearization (INFINITY = melting
    /// plateau, i.e. a fixed-temperature row).
    adi_ceff: Vec<f64>,
    /// ADI scratch: the Douglas-Gunn right-hand side carried between
    /// implicit factors (energy units, `C * w`).
    adi_rhs: Vec<f64>,
    /// ADI scratch: one line's tridiagonal system and solution.
    tri_sub: Vec<f64>,
    tri_diag: Vec<f64>,
    tri_sup: Vec<f64>,
    tri_rhs: Vec<f64>,
    tri_x: Vec<f64>,
    /// ADI scratch for the batched paths: a whole plane (row/column
    /// sweep) or the whole grid (stack sweep) of solutions from one
    /// planar Thomas pass.
    adi_plane: Vec<f64>,
    /// Lane-major coefficient planes for the general (PCM) batched
    /// sweeps: per-lane tridiagonal systems assembled side by side so
    /// one [`Tridiag::solve_batch`] call sweeps a whole layer (or every
    /// vertical stack) at once.
    adi_bat_sub: Vec<f64>,
    adi_bat_diag: Vec<f64>,
    adi_bat_sup: Vec<f64>,
    adi_bat_rhs: Vec<f64>,
    /// Staging scratch for [`TridiagFactor::solve_batch`] row bundles.
    adi_batch_scratch: Vec<f64>,
    /// Per-last-layer-cell sink flows from a threaded region, reduced
    /// into `boundary_absorbed_j` by the main thread in ascending cell
    /// order (the serial accumulation order).
    adi_sink_q: Vec<f64>,
    tridiag: Tridiag,
    adi_cache: AdiCoeffCache,
    /// The sweep pool for `solver_threads > 1`; see [`PoolHandle`].
    pool: PoolHandle,
}

impl GridThermal {
    /// Builds the grid from validated parameters, all cells at ambient.
    pub fn new(params: GridThermalParams) -> Self {
        params.validate();
        let (nx, ny) = (params.nx, params.ny);
        let cells = nx * ny;
        let n = cells * params.layers.len();
        let mut capacity = Vec::with_capacity(n);
        let mut phase = Vec::with_capacity(n);
        for layer in &params.layers {
            let c_cell = layer.capacity_j_per_k / cells as f64;
            let p_cell = layer.phase_change.map(|pc| CellPhase {
                melt_temp_c: pc.melt_temp_c,
                latent_heat_j: pc.latent_heat_j / cells as f64,
                liquid_capacity_j_per_k: pc.liquid_capacity_j_per_k / cells as f64,
            });
            for _ in 0..cells {
                capacity.push(c_cell);
                phase.push(p_cell);
            }
        }
        // Per-axis conductances in SoA form, the single source both
        // operator representations are built from: the ADI sweeps use
        // them directly, the edge list (the explicit step and the ADI
        // right-hand side) is assembled from the same values below.
        // Sheet resistance per square: an x-neighbour pair spans dx of
        // length over dy of width, so R = r_sq * dx / dy. Zero means
        // "no such edge" (lateral disabled, or a 1-cell axis).
        let dx = params.floorplan.die_w() / nx as f64;
        let dy = params.floorplan.die_h() / ny as f64;
        let lateral = |r_sq: f64, num: f64, den: f64, axis_cells: usize| {
            if r_sq.is_finite() && axis_cells > 1 {
                num / (r_sq * den)
            } else {
                0.0
            }
        };
        let lat_gx: Vec<f64> = params
            .layers
            .iter()
            .map(|l| lateral(l.lateral_r_square_k_per_w, dy, dx, nx))
            .collect();
        let lat_gy: Vec<f64> = params
            .layers
            .iter()
            .map(|l| lateral(l.lateral_r_square_k_per_w, dx, dy, ny))
            .collect();
        let g_vert: Vec<f64> = params.layers[..params.layers.len() - 1]
            .iter()
            .map(|l| 1.0 / (l.r_to_next_k_per_w * cells as f64))
            .collect();

        let mut edges = Vec::new();
        for li in 0..params.layers.len() {
            let base = li * cells;
            let (g_x, g_y) = (lat_gx[li], lat_gy[li]);
            if g_x > 0.0 || g_y > 0.0 {
                for y in 0..ny {
                    for x in 0..nx {
                        let i = (base + y * nx + x) as u32;
                        if x + 1 < nx {
                            edges.push(GridEdge {
                                a: i,
                                b: i + 1,
                                g_w_per_k: g_x,
                            });
                        }
                        if y + 1 < ny {
                            edges.push(GridEdge {
                                a: i,
                                b: i + nx as u32,
                                g_w_per_k: g_y,
                            });
                        }
                    }
                }
            }
            if li + 1 < params.layers.len() {
                let g_v = g_vert[li];
                for c in 0..cells {
                    edges.push(GridEdge {
                        a: (base + c) as u32,
                        b: (base + cells + c) as u32,
                        g_w_per_k: g_v,
                    });
                }
            }
        }
        let sink_base = (params.layers.len() - 1) * cells;
        let g_sink = 1.0 / (params.r_sink_ambient_k_per_w * cells as f64);
        let sink: Vec<(u32, f64)> = (0..cells)
            .map(|c| ((sink_base + c) as u32, g_sink))
            .collect();

        // Stability bound: smallest C / G_total over cells, computed once
        // (the structure is fixed; the solid capacity is the conservative
        // choice for PCM cells, whose effective capacity only grows
        // during melt).
        let mut g_total = vec![0.0f64; n];
        for e in &edges {
            g_total[e.a as usize] += e.g_w_per_k;
            g_total[e.b as usize] += e.g_w_per_k;
        }
        for &(i, g) in &sink {
            g_total[i as usize] += g;
        }
        let mut min_tau = f64::INFINITY;
        for i in 0..n {
            let c = match &phase[i] {
                Some(pc) => capacity[i].min(pc.liquid_capacity_j_per_k),
                None => capacity[i],
            };
            if g_total[i] > 0.0 {
                min_tau = min_tau.min(c / g_total[i]);
            }
        }
        let sub_step_s = if min_tau.is_finite() {
            params.stability_fraction * min_tau
        } else {
            f64::MAX
        };

        // ADI sub-step bound: implicit sweeps are unconditionally
        // stable, so this is an *accuracy* bound — the stability
        // fraction of the fastest vertical (layer-to-layer) time
        // constant, which with the theta-weighted factors keeps
        // sprint-cycle junction traces within 0.1 K of the explicit
        // reference (tests/grid_adi.rs pins it). Per-cell capacity over
        // per-cell vertical conductance equals the layer-level ratio,
        // so the bound is independent of the grid resolution: exactly
        // the decoupling the explicit solver lacks.
        let layer_count = params.layers.len();
        let mut min_tau_vert = f64::INFINITY;
        for (li, layer) in params.layers.iter().enumerate() {
            let g_up = if li > 0 { g_vert[li - 1] } else { 0.0 };
            let g_dn = if li + 1 < layer_count {
                g_vert[li]
            } else {
                g_sink
            };
            let c_cell = match &layer.phase_change {
                Some(pc) => (layer.capacity_j_per_k / cells as f64)
                    .min(pc.liquid_capacity_j_per_k / cells as f64),
                None => layer.capacity_j_per_k / cells as f64,
            };
            min_tau_vert = min_tau_vert.min(c_cell / (g_up + g_dn));
        }
        let adi_sub_step_s = params.stability_fraction * min_tau_vert;

        let pcm_cells: Vec<u32> = phase
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_some().then_some(i as u32))
            .collect();
        let line_max = nx.max(ny).max(layer_count);
        let core_cells: Vec<Vec<(usize, f64)>> = (0..params.floorplan.core_count())
            .map(|c| params.floorplan.cell_weights(c, nx, ny))
            .collect();
        let cores = core_cells.len();
        let ambient = params.ambient_c;
        let mut grid = Self {
            cells_per_layer: cells,
            enthalpy_j: vec![0.0; n],
            capacity_j_per_k: capacity,
            phase,
            power_w: vec![0.0; n],
            edges,
            sink,
            core_cells,
            pcm_cells,
            lat_gx,
            lat_gy,
            g_vert,
            g_sink_cell: g_sink,
            chip_power_w: 0.0,
            core_power_w: vec![0.0; cores],
            core_power_dirty: false,
            active_cores: cores,
            sub_step_s,
            adi_sub_step_s,
            time_s: 0.0,
            boundary_absorbed_j: 0.0,
            peak_hotspot_gradient_k: 0.0,
            junction_cache_c: ambient,
            peak_core_temps_c: vec![ambient; cores],
            scratch_temps: vec![0.0; n],
            scratch_flows: vec![0.0; n],
            adi_ceff: vec![0.0; n],
            adi_rhs: vec![0.0; n],
            tri_sub: vec![0.0; line_max],
            tri_diag: vec![0.0; line_max],
            tri_sup: vec![0.0; line_max],
            tri_rhs: vec![0.0; line_max],
            tri_x: vec![0.0; line_max],
            adi_plane: vec![0.0; n],
            adi_bat_sub: vec![0.0; n],
            adi_bat_diag: vec![0.0; n],
            adi_bat_sup: vec![0.0; n],
            adi_bat_rhs: vec![0.0; n],
            adi_batch_scratch: Vec::new(),
            adi_sink_q: vec![0.0; cells],
            tridiag: Tridiag::with_capacity(line_max),
            adi_cache: AdiCoeffCache::default(),
            pool: PoolHandle::default(),
            params,
        };
        grid.reset_to_ambient();
        grid
    }

    /// The parameters this backend was built from.
    pub fn params(&self) -> &GridThermalParams {
        &self.params
    }

    /// Cells per layer (`nx * ny`).
    pub fn cells_per_layer(&self) -> usize {
        self.cells_per_layer
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.params.layers.len()
    }

    /// The explicit solver's automatic stability sub-step bound,
    /// seconds (a fraction of the smallest cell RC constant).
    pub fn sub_step_s(&self) -> f64 {
        self.sub_step_s
    }

    /// The ADI solver's accuracy sub-step bound, seconds (a fraction of
    /// the fastest vertical time constant; resolution-independent).
    pub fn adi_sub_step_s(&self) -> f64 {
        self.adi_sub_step_s
    }

    /// The integration scheme this backend steps with.
    pub fn solver(&self) -> GridSolver {
        self.params.solver
    }

    /// Execution lanes the ADI sweeps fan across (1 = serial engine).
    pub fn solver_threads(&self) -> usize {
        self.params.solver_threads
    }

    /// Installs a shared sweep pool, replacing any lazily-created one.
    /// This is the cross-rack batch seam: a facility worker shard
    /// creates one pool and installs it into every rack it owns, so a
    /// single set of parked workers services every rack's sweeps in
    /// turn instead of each rack spawning its own. The pool's lane
    /// count may exceed this grid's `solver_threads` (it is sized for
    /// the widest rack in the shard); results are byte-identical at any
    /// lane count, so sharing cannot perturb a trace.
    pub fn install_solver_pool(&mut self, pool: Arc<SolverPool>) {
        self.pool = PoolHandle(Some(pool));
    }

    /// The pool threaded advances run through, creating it on first use
    /// when `solver_threads > 1` and none was installed.
    fn ensure_pool(&mut self) -> Arc<SolverPool> {
        if self.pool.0.is_none() {
            self.pool = PoolHandle(Some(Arc::new(SolverPool::new(self.params.solver_threads))));
        }
        self.pool.0.clone().expect("pool just ensured")
    }

    /// The scheme a window of `dt_s` seconds actually integrates with:
    /// the configured solver, except that a cheap-window ADI `advance`
    /// falls back to explicit when implicit sweeps cannot pay for
    /// themselves (see [`ADI_FALLBACK_COST_RATIO`]; disabled via
    /// [`GridThermalParams::adi_explicit_fallback`]).
    pub fn effective_solver(&self, dt_s: f64) -> GridSolver {
        match self.params.solver {
            GridSolver::Explicit => GridSolver::Explicit,
            GridSolver::Adi => {
                if self.params.adi_explicit_fallback && dt_s > 0.0 {
                    let steps_e = (dt_s / self.sub_step_s).ceil().max(1.0);
                    let steps_a = (dt_s / self.adi_sub_step_s).ceil().max(1.0);
                    if steps_e <= ADI_FALLBACK_COST_RATIO * steps_a {
                        return GridSolver::Explicit;
                    }
                }
                GridSolver::Adi
            }
        }
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Sets the total chip power; it is split evenly across the active
    /// cores and rasterized onto the die cells each core overlaps.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite power.
    pub fn set_chip_power_w(&mut self, watts: f64) {
        assert!(watts.is_finite(), "power must be finite");
        self.chip_power_w = watts;
        self.apply_power_map();
    }

    /// Sets how many cores the chip power is spread over (clamped to
    /// `[1, core_count]`); the first `n` floorplan cores are active.
    pub fn set_active_cores(&mut self, n: usize) {
        let n = n.clamp(1, self.core_cells.len());
        if n != self.active_cores {
            self.active_cores = n;
            self.apply_power_map();
        }
    }

    /// Active core count the power map assumes.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Total chip power currently injected, watts.
    pub fn chip_power_w(&self) -> f64 {
        self.chip_power_w
    }

    /// Sets one core's power individually, leaving every other core's
    /// untouched — the rack path, where each floorplan "core" is a
    /// server carrying its own load. The total chip power becomes the
    /// sum of the per-core powers; a later [`set_chip_power_w`]
    /// (uniform split over the active cores) overwrites the whole map
    /// again, so the two interfaces compose without hidden state.
    ///
    /// [`set_chip_power_w`]: Self::set_chip_power_w
    ///
    /// # Panics
    ///
    /// Panics on a non-finite power or an out-of-range core index.
    pub fn set_core_power_w(&mut self, core: usize, watts: f64) {
        assert!(watts.is_finite(), "power must be finite");
        assert!(core < self.core_cells.len(), "core index out of range");
        // Unchanged writes are free: idle rack nodes re-assert 0 W
        // every sampling window, and a skipped rewrite is trivially
        // bit-identical to a repeated one.
        if self.core_power_w[core] == watts {
            return;
        }
        self.core_power_w[core] = watts;
        self.chip_power_w = self.core_power_w.iter().sum();
        // The cell map rebuild is deferred to the next `advance`: the
        // rebuild is always from zero (bit-stable, unlike a running
        // +=/-= delta), and deferring coalesces the many per-node
        // writes a rack makes between two integrations into one pass.
        self.core_power_dirty = true;
    }

    /// Power currently injected by core `core`, watts.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index.
    pub fn core_power_w(&self, core: usize) -> f64 {
        self.core_power_w[core]
    }

    fn apply_power_map(&mut self) {
        let per_core = self.chip_power_w / self.active_cores as f64;
        for (c, p) in self.core_power_w.iter_mut().enumerate() {
            *p = if c < self.active_cores { per_core } else { 0.0 };
        }
        // One rebuild path for both interfaces: with `core_power_w`
        // just filled, the per-core rebuild performs the identical
        // zero-and-accumulate arithmetic the uniform split always did
        // (0 W cores contribute exactly nothing either way).
        self.apply_core_power_map();
    }

    /// Rebuilds the die power map from the per-core powers (the
    /// `set_core_power_w` path; rewrites from zero with the same
    /// arithmetic as [`Self::apply_power_map`]).
    fn apply_core_power_map(&mut self) {
        self.core_power_dirty = false;
        for p in self.power_w[..self.cells_per_layer].iter_mut() {
            *p = 0.0;
        }
        for (core, cells) in self.core_cells.iter().enumerate() {
            let w = self.core_power_w[core];
            if w != 0.0 {
                for &(cell, weight) in cells {
                    self.power_w[cell] += w * weight;
                }
            }
        }
    }

    fn cell_temp(&self, i: usize) -> f64 {
        cell_temp_of(self.enthalpy_j[i], self.capacity_j_per_k[i], &self.phase[i])
    }

    /// Temperature of cell `(x, y)` in layer `layer`, Celsius.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn cell_temp_c(&self, layer: usize, x: usize, y: usize) -> f64 {
        assert!(layer < self.layer_count() && x < self.params.nx && y < self.params.ny);
        self.cell_temp(layer * self.cells_per_layer + y * self.params.nx + x)
    }

    /// Hottest die-layer cell, Celsius — the hotspot the sprint
    /// controller must respect. Served from a cache refreshed on every
    /// `advance` (enthalpy cannot change between advances), so the
    /// controller's repeated junction/headroom/limit queries cost a
    /// load instead of an O(cells) scan.
    pub fn junction_temp_c(&self) -> f64 {
        self.junction_cache_c
    }

    /// Mean die-layer temperature, Celsius — what a lumped model would
    /// report.
    pub fn mean_die_temp_c(&self) -> f64 {
        let sum: f64 = (0..self.cells_per_layer).map(|i| self.cell_temp(i)).sum();
        sum / self.cells_per_layer as f64
    }

    /// Spread between the hottest and coolest die cell right now, Kelvin.
    pub fn hotspot_gradient_k(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.cells_per_layer {
            let t = self.cell_temp(i);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        hi - lo
    }

    /// Largest die-cell spread observed over the whole run, Kelvin.
    pub fn peak_hotspot_gradient_k(&self) -> f64 {
        self.peak_hotspot_gradient_k
    }

    /// Hottest cell under core `core`'s footprint, Celsius.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index.
    pub fn core_temp_c(&self, core: usize) -> f64 {
        self.core_cells[core]
            .iter()
            .map(|&(cell, _)| self.cell_temp(cell))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Current per-core hotspot temperatures, Celsius.
    pub fn core_temps_c(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.core_cells.len()];
        self.core_temps_c_into(&mut out);
        out
    }

    /// Writes the current per-core hotspot temperatures into `out` —
    /// the non-allocating form of [`Self::core_temps_c`] for per-window
    /// polling loops (the cluster admission scheduler reads every
    /// node's temperature every sampling window).
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals the floorplan's core count.
    pub fn core_temps_c_into(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.core_cells.len(),
            "output slice must have one slot per core"
        );
        for (c, t) in out.iter_mut().enumerate() {
            *t = self.core_temp_c(c);
        }
    }

    /// Peak per-core hotspot temperatures over the whole run, Celsius.
    pub fn peak_core_temps_c(&self) -> &[f64] {
        &self.peak_core_temps_c
    }

    /// Overall melt fraction: melted latent heat over total latent heat
    /// across all PCM cells (zero without a PCM layer).
    pub fn melt_fraction(&self) -> f64 {
        let mut melted = 0.0;
        let mut total = 0.0;
        for (i, phase) in self.phase.iter().enumerate() {
            if let Some(pc) = phase {
                let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                melted += (self.enthalpy_j[i] - h0).clamp(0.0, pc.latent_heat_j);
                total += pc.latent_heat_j;
            }
        }
        if total > 0.0 {
            melted / total
        } else {
            0.0
        }
    }

    /// Ambient temperature, Celsius.
    pub fn ambient_c(&self) -> f64 {
        self.params.ambient_c
    }

    /// Changes the ambient (sink/inlet-air) temperature mid-run — the
    /// facility settlement hook: row-level airflow recirculation raises
    /// a rack's inlet air as its row's exhaust heat exceeds the CRAC
    /// capacity. Safe between `advance` calls with either solver: the
    /// ambient enters only the right-hand side of the heat operator
    /// (the `T - ambient` sink term), never the cached ADI line
    /// factorizations, so no factorization is invalidated. Cell state
    /// is untouched — only future sink flows change.
    ///
    /// # Panics
    ///
    /// Panics unless `ambient_c` is finite and below the thermal limit
    /// (and below any PCM melting point, mirroring `validate`).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        assert!(
            ambient_c.is_finite() && ambient_c < self.params.t_max_c,
            "ambient must be finite and below the thermal limit"
        );
        for layer in &self.params.layers {
            if let Some(pc) = &layer.phase_change {
                assert!(
                    ambient_c < pc.melt_temp_c,
                    "ambient must be below the PCM melting point"
                );
            }
        }
        self.params.ambient_c = ambient_c;
    }

    /// Maximum safe cell temperature, Celsius.
    pub fn t_max_c(&self) -> f64 {
        self.params.t_max_c
    }

    /// Headroom of the hottest cell below the limit, Kelvin.
    pub fn headroom_k(&self) -> f64 {
        self.params.t_max_c - self.junction_temp_c()
    }

    /// True once the hottest cell has reached the limit.
    pub fn at_thermal_limit(&self) -> bool {
        self.junction_temp_c() >= self.params.t_max_c - 1e-9
    }

    /// Sprint energy budget from the current state, joules: remaining
    /// latent heat plus the sensible headroom of the die and PCM layers
    /// up to the limit (the grid analogue of the phone model's
    /// "16 joules"). Die and phase-change cells only: the bulk of
    /// sensible layers further down (spreaders, heatsinks) would dwarf
    /// the fast storage that actually buffers a sprint.
    pub fn sprint_energy_budget_j(&self) -> f64 {
        let mut budget = 0.0;
        for i in 0..self.enthalpy_j.len() {
            if i >= self.cells_per_layer && self.phase[i].is_none() {
                continue;
            }
            budget += self.cell_sprint_budget_j(i);
        }
        budget
    }

    /// Sprint energy budget of one core's region, joules: the same
    /// accounting as [`Self::sprint_energy_budget_j`] restricted to the
    /// cell columns under core `core`'s floorplan footprint. This is
    /// the budget a *node* of a rack floorplan can spend — its own die
    /// cells and the storage directly beneath them — rather than the
    /// rack-global figure. For a core whose footprint covers the whole
    /// die the two are identical (bit-for-bit: same cells, visited in
    /// the same layer-major ascending order, so the sums accumulate
    /// identically). Touches only the footprint's columns — no
    /// allocation, no full-grid scan — so it is cheap enough for
    /// per-window scheduler telemetry.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index.
    pub fn region_sprint_budget_j(&self, core: usize) -> f64 {
        let mut budget = 0.0;
        for li in 0..self.params.layers.len() {
            let base = li * self.cells_per_layer;
            for &(cell, _) in &self.core_cells[core] {
                let i = base + cell;
                if li > 0 && self.phase[i].is_none() {
                    continue;
                }
                budget += self.cell_sprint_budget_j(i);
            }
        }
        budget
    }

    /// One cell's contribution to the sprint budget: remaining latent
    /// heat plus sensible headroom up to the limit.
    fn cell_sprint_budget_j(&self, i: usize) -> f64 {
        let t_max = self.params.t_max_c;
        let t = self.cell_temp(i);
        match &self.phase[i] {
            Some(pc) => {
                let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                let mut budget =
                    (pc.latent_heat_j - (self.enthalpy_j[i] - h0)).clamp(0.0, pc.latent_heat_j);
                if t < pc.melt_temp_c {
                    budget += (pc.melt_temp_c - t) * self.capacity_j_per_k[i];
                    budget += (t_max - pc.melt_temp_c) * pc.liquid_capacity_j_per_k;
                } else {
                    budget += (t_max - t).max(0.0) * pc.liquid_capacity_j_per_k;
                }
                budget
            }
            None => (t_max - t).max(0.0) * self.capacity_j_per_k[i],
        }
    }

    /// Total enthalpy stored in all cells, joules (for conservation
    /// checks together with [`Self::boundary_absorbed_j`]).
    pub fn total_stored_enthalpy_j(&self) -> f64 {
        self.enthalpy_j.iter().sum()
    }

    /// Cumulative energy absorbed by the ambient since construction,
    /// joules.
    pub fn boundary_absorbed_j(&self) -> f64 {
        self.boundary_absorbed_j
    }

    /// Resets every cell to ambient (PCM fully frozen) and clears the
    /// peak trackers.
    pub fn reset_to_ambient(&mut self) {
        let ambient = self.params.ambient_c;
        for i in 0..self.enthalpy_j.len() {
            // Ambient is below any melting point (validated), so the
            // solid branch applies.
            self.enthalpy_j[i] = ambient * self.capacity_j_per_k[i];
        }
        self.peak_hotspot_gradient_k = 0.0;
        for t in &mut self.peak_core_temps_c {
            *t = ambient;
        }
        // The same fold the old on-demand query ran, so the cached
        // junction is bit-identical to it (the round-trip through
        // enthalpy can land an ulp off `ambient`).
        self.junction_cache_c = (0..self.cells_per_layer)
            .map(|i| self.cell_temp(i))
            .fold(f64::NEG_INFINITY, f64::max);
    }

    /// Advances the grid by `dt_s` seconds, sub-stepping to the active
    /// solver's bound. Simulation time accumulates from the actual
    /// sub-steps taken, so the reported clock and the integrated state
    /// cannot drift apart over long runs.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or not finite.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "dt must be finite and non-negative"
        );
        if self.core_power_dirty {
            self.apply_core_power_map();
        }
        if dt_s > 0.0 {
            let solver = self.effective_solver(dt_s);
            let bound = match solver {
                GridSolver::Explicit => self.sub_step_s,
                GridSolver::Adi => self.adi_sub_step_s,
            };
            let steps = (dt_s / bound).ceil().max(1.0) as u64;
            let sub = dt_s / steps as f64;
            match solver {
                GridSolver::Explicit => {
                    for _ in 0..steps {
                        self.step_once(sub);
                        self.time_s += sub;
                    }
                }
                GridSolver::Adi => {
                    // Threading applies to the PCM-free linear engine
                    // (the rack/facility scale case); PCM grids batch
                    // but integrate serially.
                    let pool = (self.params.solver_threads > 1 && self.pcm_cells.is_empty())
                        .then(|| self.ensure_pool());
                    match pool {
                        Some(pool) => {
                            for _ in 0..steps {
                                self.adi_step_linear_threaded(sub, &pool);
                                self.time_s += sub;
                            }
                        }
                        None => {
                            for _ in 0..steps {
                                self.adi_step(sub);
                                self.time_s += sub;
                            }
                        }
                    }
                }
            }
        }
        self.track_peaks();
    }

    /// Refreshes `scratch_temps` from the enthalpy state: a branch-free
    /// solid-branch pass over every cell, then the piecewise correction
    /// for the sparse phase-change set. Bit-identical to evaluating
    /// [`cell_temp_of`] per cell (the solid branch *is* `h / c`), but
    /// the hot loop carries no `Option` test.
    fn fill_temps(&mut self) {
        for ((t, h), c) in self
            .scratch_temps
            .iter_mut()
            .zip(&self.enthalpy_j)
            .zip(&self.capacity_j_per_k)
        {
            *t = h / c;
        }
        for &i in &self.pcm_cells {
            let i = i as usize;
            self.scratch_temps[i] =
                cell_temp_of(self.enthalpy_j[i], self.capacity_j_per_k[i], &self.phase[i]);
        }
    }

    /// Evaluates the full heat operator at the current `scratch_temps`
    /// into `scratch_flows` (power + lateral + vertical + sink, W per
    /// cell), booking the ambient sink energy of one `dt` step. Shared
    /// by the explicit step and the ADI right-hand side.
    fn fill_flows(&mut self, dt: f64) {
        self.scratch_flows.copy_from_slice(&self.power_w);
        let temps = &self.scratch_temps[..];
        let flows = &mut self.scratch_flows[..];
        for e in &self.edges[..] {
            let q = (temps[e.a as usize] - temps[e.b as usize]) * e.g_w_per_k;
            flows[e.a as usize] -= q;
            flows[e.b as usize] += q;
        }
        let ambient = self.params.ambient_c;
        for &(i, g) in &self.sink[..] {
            let q = (temps[i as usize] - ambient) * g;
            flows[i as usize] -= q;
            self.boundary_absorbed_j += q * dt;
        }
    }

    /// One explicit sub-step: per-edge transfers are antisymmetric, so
    /// total enthalpy (cells + ambient bookkeeping) is conserved exactly.
    fn step_once(&mut self, dt: f64) {
        self.fill_temps();
        self.fill_flows(dt);
        for (h, f) in self.enthalpy_j.iter_mut().zip(&self.scratch_flows) {
            *h += f * dt;
        }
    }

    /// One semi-implicit ADI sub-step (theta-weighted Douglas-Gunn
    /// factorization): evaluate the *full* operator explicitly at step
    /// entry as the right-hand side, then pass the resulting increment
    /// through three implicit factors — row, column, and vertical-stack
    /// Thomas solves. The factored system
    /// `(C - θdt Lx)(C^-1)(C - θdt Ly)(C^-1)(C - θdt (Lz + Lsink)) dT =
    /// dt F(T^n)` differs from the unfactored theta scheme only by
    /// `O(dt^2)` cross terms in the increment, so there is none of the
    /// directional ping-pong a sequential split suffers, and every
    /// factor is an M-matrix, so the step is unconditionally stable for
    /// `θ >= 1/2`.
    ///
    /// The PCM nonlinearity is a per-step phase-state linearization:
    /// each cell's branch is frozen at step entry; melting-plateau
    /// cells become zero-increment (fixed-temperature) rows and absorb
    /// their net inflow as latent enthalpy. All enthalpy updates are
    /// antisymmetric edge fluxes (or booked sink flux), so conservation
    /// is exact regardless of how the linearization approximated the
    /// temperatures.
    fn adi_step(&mut self, dt: f64) {
        if self.pcm_cells.is_empty() {
            // No phase change anywhere: every cell's branch is the
            // solid one forever, so the general path degenerates to a
            // fully linear step that a batched routine reproduces
            // bit-for-bit at a fraction of the cost.
            self.adi_step_linear(dt);
        } else {
            self.adi_step_general(dt);
        }
    }

    /// The general (phase-aware) ADI sub-step; see [`adi_step`]
    /// (Self::adi_step) for the scheme. Sweeps run batched: PCM-free
    /// layers replay their cached factor over the whole layer at once,
    /// PCM layers assemble every line's (possibly plateau-modified)
    /// system lane-major and sweep them in one general batch. Each
    /// lane's arithmetic — and each cell's enthalpy-update and
    /// `boundary_absorbed_j` order — matches the line-at-a-time loop
    /// exactly, so the batch is bit-identical to
    /// [`Self::adi_step_general_reference`] (pinned in the test module).
    fn adi_step_general(&mut self, dt: f64) {
        let n = self.enthalpy_j.len();
        for i in 0..n {
            self.adi_ceff[i] = match &self.phase[i] {
                None => self.capacity_j_per_k[i],
                Some(pc) => {
                    let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                    if self.enthalpy_j[i] <= h0 {
                        self.capacity_j_per_k[i]
                    } else if self.enthalpy_j[i] <= h0 + pc.latent_heat_j {
                        f64::INFINITY
                    } else {
                        pc.liquid_capacity_j_per_k
                    }
                }
            };
        }
        self.fill_temps();
        self.fill_flows(dt);
        for i in 0..n {
            let e = self.scratch_flows[i] * dt;
            self.enthalpy_j[i] += e;
            self.adi_rhs[i] = e;
        }
        let wdt = ADI_THETA * dt;
        self.ensure_adi_cache(wdt);
        let cache = std::mem::take(&mut self.adi_cache);
        let (nx, ny) = (self.params.nx, self.params.ny);
        let layers = self.params.layers.len();
        if nx > 1 {
            for li in 0..layers {
                let g = self.lat_gx[li];
                if g > 0.0 {
                    match cache.rows[li].as_ref() {
                        Some(f) => self.adi_rows_factored(li, g, wdt, f),
                        None => self.adi_rows_general(li, g, wdt),
                    }
                }
            }
        }
        if ny > 1 {
            for li in 0..layers {
                let g = self.lat_gy[li];
                if g > 0.0 {
                    match cache.cols[li].as_ref() {
                        Some(f) => self.adi_cols_factored(li, g, wdt, f),
                        None => self.adi_cols_general(li, g, wdt),
                    }
                }
            }
        }
        match cache.stack.as_ref() {
            Some(f) => self.adi_stack_factored(wdt, f),
            None => self.adi_stack_general(wdt),
        }
        self.adi_cache = cache;
    }

    /// The pre-batching general sub-step: one [`Self::adi_sweep_line`] /
    /// [`Self::adi_sweep_stack`] call per line. Kept as the oracle the
    /// batched [`Self::adi_step_general`] is pinned against bit for bit.
    #[cfg(test)]
    fn adi_step_general_reference(&mut self, dt: f64) {
        let n = self.enthalpy_j.len();
        // Freeze each cell's phase branch for this step. INFINITY marks
        // the melting plateau (a Dirichlet, zero-increment row).
        for i in 0..n {
            self.adi_ceff[i] = match &self.phase[i] {
                None => self.capacity_j_per_k[i],
                Some(pc) => {
                    let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                    if self.enthalpy_j[i] <= h0 {
                        self.capacity_j_per_k[i]
                    } else if self.enthalpy_j[i] <= h0 + pc.latent_heat_j {
                        f64::INFINITY
                    } else {
                        pc.liquid_capacity_j_per_k
                    }
                }
            };
        }
        // Explicit full-operator evaluation at T^n: both the first
        // enthalpy increment and the Douglas-Gunn right-hand side
        // (energy units; `adi_rhs` carries `C * w` between factors).
        self.fill_temps();
        self.fill_flows(dt);
        for i in 0..n {
            let e = self.scratch_flows[i] * dt;
            self.enthalpy_j[i] += e;
            self.adi_rhs[i] = e;
        }
        // The implicit factors weight their operator by θdt; the
        // explicit evaluation above carries the matching (1-θ) share,
        // so the unfactored limit is the trapezoidal theta scheme.
        let wdt = ADI_THETA * dt;
        self.ensure_adi_cache(wdt);
        // Take the cache out of `self` so the sweeps can borrow its
        // factors while mutating everything else; restored below.
        let cache = std::mem::take(&mut self.adi_cache);
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let layers = self.params.layers.len();
        if nx > 1 {
            for li in 0..layers {
                let g = self.lat_gx[li];
                if g > 0.0 {
                    let factor = cache.rows[li].as_ref();
                    for y in 0..ny {
                        self.adi_sweep_line(li * cells + y * nx, 1, nx, g, wdt, factor);
                    }
                }
            }
        }
        if ny > 1 {
            for li in 0..layers {
                let g = self.lat_gy[li];
                if g > 0.0 {
                    let factor = cache.cols[li].as_ref();
                    for x in 0..nx {
                        self.adi_sweep_line(li * cells + x, nx, ny, g, wdt, factor);
                    }
                }
            }
        }
        // The vertical factor always runs: it owns the ambient sink, so
        // even a 1x1 grid (the lumped-equivalent chain) reduces to the
        // plain unfactored theta scheme through here.
        for c in 0..cells {
            self.adi_sweep_stack(c, wdt, cache.stack.as_ref());
        }
        self.adi_cache = cache;
    }

    /// Rebuilds the cached line factorizations when the theta-weighted
    /// sub-step changes (in a session it never does after the first
    /// window, so this amortizes to a single build). Only coefficient
    /// sets that are constant across sub-steps are cached: lines of
    /// PCM-free layers, and the shared vertical stack when no layer
    /// has phase change. Every cached factor reproduces the uncached
    /// assembly bit-for-bit (same expressions, same order).
    fn ensure_adi_cache(&mut self, wdt: f64) {
        if self.adi_cache.wdt == wdt {
            return;
        }
        let layers = self.params.layers.len();
        let cells = self.cells_per_layer;
        let (nx, ny) = (self.params.nx, self.params.ny);
        let line_factor = |has_pcm: bool, ceff: f64, g: f64, len: usize| {
            if has_pcm || g <= 0.0 || len <= 1 {
                return None;
            }
            let gdt = g * wdt;
            let mut sub = vec![0.0; len];
            let mut diag = vec![0.0; len];
            let mut sup = vec![0.0; len];
            for (k, d) in diag.iter_mut().enumerate() {
                let mut row = ceff;
                if k > 0 {
                    row += gdt;
                    sub[k] = -gdt;
                }
                if k + 1 < len {
                    row += gdt;
                    sup[k] = -gdt;
                }
                *d = row;
            }
            Some(TridiagFactor::new(&sub, &diag, &sup))
        };
        let mut rows = Vec::with_capacity(layers);
        let mut cols = Vec::with_capacity(layers);
        for (li, layer) in self.params.layers.iter().enumerate() {
            let has_pcm = layer.phase_change.is_some();
            // Per-cell capacity is uniform within a layer, so any
            // cell's value stands for the whole line.
            let ceff = self.capacity_j_per_k[li * cells];
            rows.push(line_factor(has_pcm, ceff, self.lat_gx[li], nx));
            cols.push(line_factor(has_pcm, ceff, self.lat_gy[li], ny));
        }
        let any_pcm = self.params.layers.iter().any(|l| l.phase_change.is_some());
        let stack = if any_pcm {
            None
        } else {
            let mut sub = vec![0.0; layers];
            let mut diag = vec![0.0; layers];
            let mut sup = vec![0.0; layers];
            for l in 0..layers {
                let ceff = self.capacity_j_per_k[l * cells];
                let g_up = if l > 0 { self.g_vert[l - 1] } else { 0.0 };
                let g_dn = if l + 1 < layers { self.g_vert[l] } else { 0.0 };
                let mut d = ceff + wdt * (g_up + g_dn);
                if l + 1 == layers {
                    d += wdt * self.g_sink_cell;
                }
                sub[l] = -wdt * g_up;
                diag[l] = d;
                sup[l] = -wdt * g_dn;
            }
            Some(TridiagFactor::new(&sub, &diag, &sup))
        };
        self.adi_cache = AdiCoeffCache {
            wdt,
            rows,
            cols,
            stack,
        };
    }

    /// One implicit lateral factor over a line of `len` cells starting
    /// at `base` and spaced `stride` apart, with uniform neighbour
    /// conductance `g`: solves `(C - wdt Lx) w = rhs` for the increment
    /// `w` (`wdt` is the theta-weighted step), applies the
    /// antisymmetric enthalpy correction `wdt * Lx w`, and stores
    /// `C * w` as the next factor's right-hand side.
    ///
    /// Layers with lateral conduction disabled never reach here; for
    /// them the factor is the identity (`C w = rhs` and `Lx w = 0`), so
    /// skipping the line entirely is exact, not an approximation.
    ///
    /// `factor` carries the line's cached elimination when the layer is
    /// PCM-free (the coefficients cannot change between sub-steps);
    /// with it the per-line work is just the two substitution passes.
    ///
    /// Only the reference sub-step drives this now; the live engine
    /// batches whole sweeps (see [`Self::adi_step_general`]).
    #[cfg(test)]
    fn adi_sweep_line(
        &mut self,
        base: usize,
        stride: usize,
        len: usize,
        g: f64,
        wdt: f64,
        factor: Option<&TridiagFactor>,
    ) {
        let gdt = g * wdt;
        if let Some(f) = factor {
            for k in 0..len {
                self.tri_rhs[k] = self.adi_rhs[base + k * stride];
            }
            f.solve(&self.tri_rhs[..len], &mut self.tri_x[..len]);
        } else {
            for k in 0..len {
                let i = base + k * stride;
                let ceff = self.adi_ceff[i];
                if ceff.is_finite() {
                    let mut diag = ceff;
                    let mut sub = 0.0;
                    let mut sup = 0.0;
                    if k > 0 {
                        diag += gdt;
                        sub = -gdt;
                    }
                    if k + 1 < len {
                        diag += gdt;
                        sup = -gdt;
                    }
                    self.tri_sub[k] = sub;
                    self.tri_diag[k] = diag;
                    self.tri_sup[k] = sup;
                    self.tri_rhs[k] = self.adi_rhs[i];
                } else {
                    self.tri_sub[k] = 0.0;
                    self.tri_diag[k] = 1.0;
                    self.tri_sup[k] = 0.0;
                    self.tri_rhs[k] = 0.0;
                }
            }
            self.tridiag.solve(
                &self.tri_sub[..len],
                &self.tri_diag[..len],
                &self.tri_sup[..len],
                &self.tri_rhs[..len],
                &mut self.tri_x[..len],
            );
        }
        for k in 0..len - 1 {
            let i = base + k * stride;
            let q = (self.tri_x[k] - self.tri_x[k + 1]) * gdt;
            self.enthalpy_j[i] -= q;
            self.enthalpy_j[i + stride] += q;
        }
        for k in 0..len {
            let i = base + k * stride;
            let ceff = self.adi_ceff[i];
            if ceff.is_finite() {
                self.adi_rhs[i] = ceff * self.tri_x[k];
            }
            // Plateau rows keep a zero increment; their rhs is never
            // read again this step.
        }
    }

    /// The final implicit factor over one vertical stack (cell `c`
    /// through every layer, interface conduction plus the ambient
    /// sink): solves for the step's temperature increment (with the
    /// theta-weighted step `wdt`) and applies the vertical/sink
    /// enthalpy corrections.
    ///
    /// `factor` carries the cached stack elimination when no layer has
    /// phase change — one factorization then serves every cell column,
    /// which on a PCM-free rack grid removes the entire per-column
    /// assembly-and-eliminate cost.
    ///
    /// Only the reference sub-step drives this now; the live engine
    /// batches whole sweeps (see [`Self::adi_step_general`]).
    #[cfg(test)]
    fn adi_sweep_stack(&mut self, c: usize, wdt: f64, factor: Option<&TridiagFactor>) {
        let cells = self.cells_per_layer;
        let layers = self.params.layers.len();
        let g_sink = self.g_sink_cell;
        if let Some(f) = factor {
            for l in 0..layers {
                self.tri_rhs[l] = self.adi_rhs[l * cells + c];
            }
            f.solve(&self.tri_rhs[..layers], &mut self.tri_x[..layers]);
        } else {
            for l in 0..layers {
                let i = l * cells + c;
                let ceff = self.adi_ceff[i];
                let g_up = if l > 0 { self.g_vert[l - 1] } else { 0.0 };
                let g_dn = if l + 1 < layers { self.g_vert[l] } else { 0.0 };
                if ceff.is_finite() {
                    let mut diag = ceff + wdt * (g_up + g_dn);
                    if l + 1 == layers {
                        diag += wdt * g_sink;
                    }
                    self.tri_sub[l] = -wdt * g_up;
                    self.tri_diag[l] = diag;
                    self.tri_sup[l] = -wdt * g_dn;
                    self.tri_rhs[l] = self.adi_rhs[i];
                } else {
                    self.tri_sub[l] = 0.0;
                    self.tri_diag[l] = 1.0;
                    self.tri_sup[l] = 0.0;
                    self.tri_rhs[l] = 0.0;
                }
            }
            self.tridiag.solve(
                &self.tri_sub[..layers],
                &self.tri_diag[..layers],
                &self.tri_sup[..layers],
                &self.tri_rhs[..layers],
                &mut self.tri_x[..layers],
            );
        }
        for l in 0..layers - 1 {
            let i = l * cells + c;
            let q = (self.tri_x[l] - self.tri_x[l + 1]) * self.g_vert[l] * wdt;
            self.enthalpy_j[i] -= q;
            self.enthalpy_j[i + cells] += q;
        }
        // The sink sees only the *increment* here; the `T^n - ambient`
        // part was booked by the explicit evaluation.
        let q_sink = self.tri_x[layers - 1] * g_sink * wdt;
        self.enthalpy_j[(layers - 1) * cells + c] -= q_sink;
        self.boundary_absorbed_j += q_sink;
    }

    /// [`adi_step`](Self::adi_step) specialized to a grid with no phase
    /// change anywhere (`pcm_cells` empty). Bit-identical to the
    /// general path on such a grid, which the equivalence rests on:
    ///
    /// - every `adi_ceff` entry would be the plain solid capacity, so
    ///   the fill is skipped and `capacity_j_per_k` read directly;
    /// - every conducting layer (and the stack) has a cached
    ///   [`TridiagFactor`], whose solve is bit-identical to the
    ///   uncached assembly, so only the factored branch is kept;
    /// - row lines are contiguous, so the factor solves straight out of
    ///   `adi_rhs` with no staging copy;
    /// - column and stack sweeps run as *planar* solves
    ///   ([`TridiagFactor::solve_planar`]): lines are interleaved lane
    ///   by lane, but each lane's arithmetic — and each cell's enthalpy
    ///   update sequence, and the cell-ascending
    ///   `boundary_absorbed_j` accumulation — keeps the exact order of
    ///   the line-at-a-time loop, because distinct lines touch disjoint
    ///   cells.
    fn adi_step_linear(&mut self, dt: f64) {
        let n = self.enthalpy_j.len();
        self.fill_temps();
        self.fill_flows(dt);
        for i in 0..n {
            let e = self.scratch_flows[i] * dt;
            self.enthalpy_j[i] += e;
            self.adi_rhs[i] = e;
        }
        let wdt = ADI_THETA * dt;
        self.ensure_adi_cache(wdt);
        let cache = std::mem::take(&mut self.adi_cache);
        let (nx, ny) = (self.params.nx, self.params.ny);
        let layers = self.params.layers.len();
        if nx > 1 {
            for li in 0..layers {
                let g = self.lat_gx[li];
                if g > 0.0 {
                    let factor = cache.rows[li]
                        .as_ref()
                        .expect("PCM-free conducting layer always has a row factor");
                    self.adi_rows_factored(li, g, wdt, factor);
                }
            }
        }
        if ny > 1 {
            for li in 0..layers {
                let g = self.lat_gy[li];
                if g > 0.0 {
                    let factor = cache.cols[li]
                        .as_ref()
                        .expect("PCM-free conducting layer always has a column factor");
                    self.adi_cols_factored(li, g, wdt, factor);
                }
            }
        }
        let stack = cache
            .stack
            .as_ref()
            .expect("PCM-free grid always has a stack factor");
        self.adi_stack_factored(wdt, stack);
        self.adi_cache = cache;
    }

    /// Every row of layer `li` in one contiguous bundle: the cached
    /// factor's [`TridiagFactor::solve_batch`] stages the layer's `ny`
    /// back-to-back lines through the transposed scratch (the SIMD
    /// layout), then the corrections and `C * w` write-back of the
    /// per-line sweep run per row unchanged. Callable from both the
    /// linear and the general path: on a PCM-free layer `adi_ceff`
    /// holds exactly `capacity_j_per_k`, so reading the capacity keeps
    /// the write-back bit-identical either way.
    fn adi_rows_factored(&mut self, li: usize, g: f64, wdt: f64, f: &TridiagFactor) {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let base = li * cells;
        let gdt = g * wdt;
        f.solve_batch(
            &self.adi_rhs[base..base + cells],
            &mut self.adi_plane[..cells],
            &mut self.adi_batch_scratch,
        );
        for y in 0..ny {
            let row = y * nx;
            for k in 0..nx - 1 {
                let q = (self.adi_plane[row + k] - self.adi_plane[row + k + 1]) * gdt;
                self.enthalpy_j[base + row + k] -= q;
                self.enthalpy_j[base + row + k + 1] += q;
            }
            for k in 0..nx {
                let i = base + row + k;
                self.adi_rhs[i] = self.capacity_j_per_k[i] * self.adi_plane[row + k];
            }
        }
    }

    /// Every row of a PCM layer in one general batch: lane `y` of the
    /// lane-major coefficient planes is row `y`'s system, assembled with
    /// the per-line expressions (melting-plateau cells become Dirichlet
    /// rows) and swept by [`Tridiag::solve_batch`]. Bit-identical per
    /// row to the per-line assembly-and-solve.
    fn adi_rows_general(&mut self, li: usize, g: f64, wdt: f64) {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let base = li * cells;
        let gdt = g * wdt;
        let lanes = ny;
        for k in 0..nx {
            for y in 0..ny {
                let i = base + y * nx + k;
                let idx = k * lanes + y;
                let ceff = self.adi_ceff[i];
                if ceff.is_finite() {
                    let mut diag = ceff;
                    let mut sub = 0.0;
                    let mut sup = 0.0;
                    if k > 0 {
                        diag += gdt;
                        sub = -gdt;
                    }
                    if k + 1 < nx {
                        diag += gdt;
                        sup = -gdt;
                    }
                    self.adi_bat_sub[idx] = sub;
                    self.adi_bat_diag[idx] = diag;
                    self.adi_bat_sup[idx] = sup;
                    self.adi_bat_rhs[idx] = self.adi_rhs[i];
                } else {
                    self.adi_bat_sub[idx] = 0.0;
                    self.adi_bat_diag[idx] = 1.0;
                    self.adi_bat_sup[idx] = 0.0;
                    self.adi_bat_rhs[idx] = 0.0;
                }
            }
        }
        self.tridiag.solve_batch(
            &self.adi_bat_sub[..cells],
            &self.adi_bat_diag[..cells],
            &self.adi_bat_sup[..cells],
            &self.adi_bat_rhs[..cells],
            &mut self.adi_plane[..cells],
            lanes,
        );
        for y in 0..ny {
            for k in 0..nx - 1 {
                let i = base + y * nx + k;
                let q = (self.adi_plane[k * lanes + y] - self.adi_plane[(k + 1) * lanes + y]) * gdt;
                self.enthalpy_j[i] -= q;
                self.enthalpy_j[i + 1] += q;
            }
            for k in 0..nx {
                let i = base + y * nx + k;
                let ceff = self.adi_ceff[i];
                if ceff.is_finite() {
                    self.adi_rhs[i] = ceff * self.adi_plane[k * lanes + y];
                }
            }
        }
    }

    /// Every column of a PCM layer in one general batch: lane `x` is
    /// column `x`'s system, and the lane-major index `y * nx + x` *is*
    /// the natural plane index, so assembly needs no transpose.
    fn adi_cols_general(&mut self, li: usize, g: f64, wdt: f64) {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let base = li * cells;
        let gdt = g * wdt;
        for y in 0..ny {
            for x in 0..nx {
                let i = base + y * nx + x;
                let idx = y * nx + x;
                let ceff = self.adi_ceff[i];
                if ceff.is_finite() {
                    let mut diag = ceff;
                    let mut sub = 0.0;
                    let mut sup = 0.0;
                    if y > 0 {
                        diag += gdt;
                        sub = -gdt;
                    }
                    if y + 1 < ny {
                        diag += gdt;
                        sup = -gdt;
                    }
                    self.adi_bat_sub[idx] = sub;
                    self.adi_bat_diag[idx] = diag;
                    self.adi_bat_sup[idx] = sup;
                    self.adi_bat_rhs[idx] = self.adi_rhs[i];
                } else {
                    self.adi_bat_sub[idx] = 0.0;
                    self.adi_bat_diag[idx] = 1.0;
                    self.adi_bat_sup[idx] = 0.0;
                    self.adi_bat_rhs[idx] = 0.0;
                }
            }
        }
        self.tridiag.solve_batch(
            &self.adi_bat_sub[..cells],
            &self.adi_bat_diag[..cells],
            &self.adi_bat_sup[..cells],
            &self.adi_bat_rhs[..cells],
            &mut self.adi_plane[..cells],
            nx,
        );
        for y in 0..ny - 1 {
            let row = y * nx;
            for x in 0..nx {
                let q = (self.adi_plane[row + x] - self.adi_plane[row + nx + x]) * gdt;
                self.enthalpy_j[base + row + x] -= q;
                self.enthalpy_j[base + row + nx + x] += q;
            }
        }
        for idx in 0..cells {
            let i = base + idx;
            let ceff = self.adi_ceff[i];
            if ceff.is_finite() {
                self.adi_rhs[i] = ceff * self.adi_plane[idx];
            }
        }
    }

    /// Every vertical stack in one general batch: lane `c` is cell
    /// column `c`'s system (lane-major index `l * cells + c` is the
    /// natural layer-major order), assembled with the per-stack
    /// expressions including the last-layer sink term; the sink booking
    /// stays cell-ascending, preserving the `boundary_absorbed_j`
    /// accumulation order of the per-stack loop.
    fn adi_stack_general(&mut self, wdt: f64) {
        let cells = self.cells_per_layer;
        let layers = self.params.layers.len();
        let n = layers * cells;
        let g_sink = self.g_sink_cell;
        for l in 0..layers {
            let g_up = if l > 0 { self.g_vert[l - 1] } else { 0.0 };
            let g_dn = if l + 1 < layers { self.g_vert[l] } else { 0.0 };
            for c in 0..cells {
                let i = l * cells + c;
                let ceff = self.adi_ceff[i];
                if ceff.is_finite() {
                    let mut diag = ceff + wdt * (g_up + g_dn);
                    if l + 1 == layers {
                        diag += wdt * g_sink;
                    }
                    self.adi_bat_sub[i] = -wdt * g_up;
                    self.adi_bat_diag[i] = diag;
                    self.adi_bat_sup[i] = -wdt * g_dn;
                    self.adi_bat_rhs[i] = self.adi_rhs[i];
                } else {
                    self.adi_bat_sub[i] = 0.0;
                    self.adi_bat_diag[i] = 1.0;
                    self.adi_bat_sup[i] = 0.0;
                    self.adi_bat_rhs[i] = 0.0;
                }
            }
        }
        self.tridiag.solve_batch(
            &self.adi_bat_sub[..n],
            &self.adi_bat_diag[..n],
            &self.adi_bat_sup[..n],
            &self.adi_bat_rhs[..n],
            &mut self.adi_plane[..n],
            cells,
        );
        for l in 0..layers - 1 {
            let row = l * cells;
            let gv = self.g_vert[l];
            for c in 0..cells {
                let q = (self.adi_plane[row + c] - self.adi_plane[row + cells + c]) * gv * wdt;
                self.enthalpy_j[row + c] -= q;
                self.enthalpy_j[row + cells + c] += q;
            }
        }
        let row = (layers - 1) * cells;
        for c in 0..cells {
            let q_sink = self.adi_plane[row + c] * g_sink * wdt;
            self.enthalpy_j[row + c] -= q_sink;
            self.boundary_absorbed_j += q_sink;
        }
    }

    /// Every column of layer `li` in one planar pass. Lane `x` of the
    /// planar solve is column `x`'s Thomas recurrence; the correction
    /// loops run y-outer so each cell sees its `+q`/`-q` pair in the
    /// same order as the per-column loop.
    fn adi_cols_factored(&mut self, li: usize, g: f64, wdt: f64, f: &TridiagFactor) {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let base = li * cells;
        let gdt = g * wdt;
        f.solve_planar(
            &self.adi_rhs[base..base + cells],
            &mut self.adi_plane[..cells],
            nx,
        );
        for y in 0..ny - 1 {
            let row = y * nx;
            for x in 0..nx {
                let q = (self.adi_plane[row + x] - self.adi_plane[row + nx + x]) * gdt;
                self.enthalpy_j[base + row + x] -= q;
                self.enthalpy_j[base + row + nx + x] += q;
            }
        }
        for i in 0..cells {
            self.adi_rhs[base + i] = self.capacity_j_per_k[base + i] * self.adi_plane[i];
        }
    }

    /// Every vertical stack in one planar pass (lane `c` = cell column
    /// `c`), then the vertical/sink corrections of
    /// [`adi_sweep_stack`](Self::adi_sweep_stack) with the layer loop
    /// outermost; the sink booking stays cell-ascending, so the
    /// `boundary_absorbed_j` accumulation order is untouched.
    fn adi_stack_factored(&mut self, wdt: f64, f: &TridiagFactor) {
        let cells = self.cells_per_layer;
        let layers = self.params.layers.len();
        let n = layers * cells;
        f.solve_planar(&self.adi_rhs[..n], &mut self.adi_plane[..n], cells);
        for l in 0..layers - 1 {
            let row = l * cells;
            let gv = self.g_vert[l];
            for c in 0..cells {
                let q = (self.adi_plane[row + c] - self.adi_plane[row + cells + c]) * gv * wdt;
                self.enthalpy_j[row + c] -= q;
                self.enthalpy_j[row + cells + c] += q;
            }
        }
        let g_sink = self.g_sink_cell;
        let row = (layers - 1) * cells;
        for c in 0..cells {
            let q_sink = self.adi_plane[row + c] * g_sink * wdt;
            self.enthalpy_j[row + c] -= q_sink;
            self.boundary_absorbed_j += q_sink;
        }
    }

    /// One linear ADI sub-step with every region fanned across the
    /// worker pool. Bit-identical to [`Self::adi_step_linear`] at any
    /// lane count (pinned by `tests/grid_threads.rs`), by construction:
    ///
    /// - every parallel region partitions its index space with
    ///   [`lane_range`], so each lane writes a fixed, disjoint set of
    ///   cells (rows, x-columns, or cell stacks own all the cells they
    ///   update — sweep corrections never cross a line);
    /// - the per-cell explicit gather replays the serial edge-scan's
    ///   accumulation order exactly (power, vertical-in, y-in, x-in,
    ///   x-out, y-out, vertical-out, sink — including the `±0.0`
    ///   contributions of zero-conductance lateral edges the serial
    ///   edge list still carries);
    /// - Thomas recurrences replay the cached factor per line in the
    ///   line's own order, which is the same arithmetic
    ///   [`TridiagFactor::solve_batch`] / `solve_planar` perform lane
    ///   by lane;
    /// - the only cross-line reduction, `boundary_absorbed_j`, is
    ///   staged into the per-cell `adi_sink_q` scratch and accumulated
    ///   by the calling thread in ascending cell order — the serial
    ///   sink loop's exact add sequence.
    fn adi_step_linear_threaded(&mut self, dt: f64, pool: &SolverPool) {
        let lanes = pool.lanes();
        let n = self.enthalpy_j.len();
        let (nx, ny) = (self.params.nx, self.params.ny);
        let cells = self.cells_per_layer;
        let layers = self.params.layers.len();
        let wdt = ADI_THETA * dt;
        self.ensure_adi_cache(wdt);
        let cache = std::mem::take(&mut self.adi_cache);

        // Region 1: enthalpy -> temperature, cell-partitioned.
        {
            let temps = RawCells(self.scratch_temps.as_mut_ptr());
            let h = &self.enthalpy_j[..];
            let c = &self.capacity_j_per_k[..];
            pool.run(&|lane| {
                for i in lane_range(n, lane, lanes) {
                    // Safety: lanes own disjoint index ranges.
                    unsafe { temps.set(i, h[i] / c[i]) };
                }
            });
        }

        // Region 2: explicit full-operator gather, enthalpy kick and
        // RHS, cell-partitioned; sink heat staged per cell.
        {
            let temps = &self.scratch_temps[..];
            let power = &self.power_w[..];
            let lat_gx = &self.lat_gx[..];
            let lat_gy = &self.lat_gy[..];
            let g_vert = &self.g_vert[..];
            let g_sink = self.g_sink_cell;
            let ambient = self.params.ambient_c;
            let h = RawCells(self.enthalpy_j.as_mut_ptr());
            let rhs = RawCells(self.adi_rhs.as_mut_ptr());
            let sink_q = RawCells(self.adi_sink_q.as_mut_ptr());
            pool.run(&|lane| {
                for i in lane_range(n, lane, lanes) {
                    let li = i / cells;
                    let c = i - li * cells;
                    let y = c / nx;
                    let x = c - y * nx;
                    let t = temps[i];
                    let mut f = power[i];
                    if li > 0 {
                        f += (temps[i - cells] - t) * g_vert[li - 1];
                    }
                    let (gx, gy) = (lat_gx[li], lat_gy[li]);
                    if gx > 0.0 || gy > 0.0 {
                        // The serial edge list emits both axes whenever
                        // the layer conducts laterally at all, so a
                        // zero-g axis still contributes its +/-0.0.
                        if y > 0 {
                            f += (temps[i - nx] - t) * gy;
                        }
                        if x > 0 {
                            f += (temps[i - 1] - t) * gx;
                        }
                        if x + 1 < nx {
                            f -= (t - temps[i + 1]) * gx;
                        }
                        if y + 1 < ny {
                            f -= (t - temps[i + nx]) * gy;
                        }
                    }
                    if li + 1 < layers {
                        f -= (t - temps[i + cells]) * g_vert[li];
                    }
                    if li + 1 == layers {
                        let q = (t - ambient) * g_sink;
                        f -= q;
                        // Safety: `c` ranges over disjoint lane-owned
                        // last-layer cells.
                        unsafe { sink_q.set(c, q) };
                    }
                    let e = f * dt;
                    // Safety: lane-owned index.
                    unsafe {
                        h.set(i, h.get(i) + e);
                        rhs.set(i, e);
                    }
                }
            });
            for c in 0..cells {
                self.boundary_absorbed_j += self.adi_sink_q[c] * dt;
            }
        }

        // Region 3 (per conducting layer): row sweeps, row-partitioned.
        if nx > 1 {
            for li in 0..layers {
                let g = self.lat_gx[li];
                if g <= 0.0 {
                    continue;
                }
                let f = cache.rows[li]
                    .as_ref()
                    .expect("PCM-free conducting layer always has a row factor");
                let (fsub, fcp, fm) = f.parts();
                let base = li * cells;
                let gdt = g * wdt;
                let caps = &self.capacity_j_per_k[..];
                let h = RawCells(self.enthalpy_j.as_mut_ptr());
                let rhs = RawCells(self.adi_rhs.as_mut_ptr());
                let plane = RawCells(self.adi_plane.as_mut_ptr());
                pool.run(&|lane| {
                    // Safety: every index below lives in this lane's
                    // rows, which no other lane touches.
                    for yy in lane_range(ny, lane, lanes) {
                        let row = base + yy * nx;
                        unsafe {
                            plane.set(row, rhs.get(row) * fm[0]);
                            for k in 1..nx {
                                let w =
                                    (rhs.get(row + k) - fsub[k] * plane.get(row + k - 1)) * fm[k];
                                plane.set(row + k, w);
                            }
                            for k in (0..nx - 1).rev() {
                                plane.set(
                                    row + k,
                                    plane.get(row + k) - fcp[k] * plane.get(row + k + 1),
                                );
                            }
                            for k in 0..nx - 1 {
                                let q = (plane.get(row + k) - plane.get(row + k + 1)) * gdt;
                                h.set(row + k, h.get(row + k) - q);
                                h.set(row + k + 1, h.get(row + k + 1) + q);
                            }
                            for k in 0..nx {
                                rhs.set(row + k, caps[row + k] * plane.get(row + k));
                            }
                        }
                    }
                });
            }
        }

        // Region 4 (per conducting layer): column sweeps, partitioned
        // by x so each lane owns whole columns.
        if ny > 1 {
            for li in 0..layers {
                let g = self.lat_gy[li];
                if g <= 0.0 {
                    continue;
                }
                let f = cache.cols[li]
                    .as_ref()
                    .expect("PCM-free conducting layer always has a column factor");
                let (fsub, fcp, fm) = f.parts();
                let base = li * cells;
                let gdt = g * wdt;
                let caps = &self.capacity_j_per_k[..];
                let h = RawCells(self.enthalpy_j.as_mut_ptr());
                let rhs = RawCells(self.adi_rhs.as_mut_ptr());
                let plane = RawCells(self.adi_plane.as_mut_ptr());
                pool.run(&|lane| {
                    let xr = lane_range(nx, lane, lanes);
                    // Safety: every index below is in a lane-owned
                    // column (fixed x); corrections stay in-column.
                    unsafe {
                        for x in xr.clone() {
                            plane.set(x, rhs.get(base + x) * fm[0]);
                        }
                        for y in 1..ny {
                            let row = y * nx;
                            for x in xr.clone() {
                                let w = (rhs.get(base + row + x)
                                    - fsub[y] * plane.get(row - nx + x))
                                    * fm[y];
                                plane.set(row + x, w);
                            }
                        }
                        for y in (0..ny - 1).rev() {
                            let row = y * nx;
                            for x in xr.clone() {
                                plane.set(
                                    row + x,
                                    plane.get(row + x) - fcp[y] * plane.get(row + nx + x),
                                );
                            }
                        }
                        for y in 0..ny - 1 {
                            let row = y * nx;
                            for x in xr.clone() {
                                let q = (plane.get(row + x) - plane.get(row + nx + x)) * gdt;
                                h.set(base + row + x, h.get(base + row + x) - q);
                                h.set(base + row + nx + x, h.get(base + row + nx + x) + q);
                            }
                        }
                        for y in 0..ny {
                            let row = y * nx;
                            for x in xr.clone() {
                                rhs.set(base + row + x, caps[base + row + x] * plane.get(row + x));
                            }
                        }
                    }
                });
            }
        }

        // Region 5: stack sweep, partitioned by cell column; sink heat
        // staged per cell and reduced in ascending order below.
        {
            let f = cache
                .stack
                .as_ref()
                .expect("PCM-free grid always has a stack factor");
            let (fsub, fcp, fm) = f.parts();
            let g_sink = self.g_sink_cell;
            let g_vert = &self.g_vert[..];
            let h = RawCells(self.enthalpy_j.as_mut_ptr());
            let rhs = RawCells(self.adi_rhs.as_mut_ptr());
            let plane = RawCells(self.adi_plane.as_mut_ptr());
            let sink_q = RawCells(self.adi_sink_q.as_mut_ptr());
            pool.run(&|lane| {
                let cr = lane_range(cells, lane, lanes);
                // Safety: every index below is in a lane-owned vertical
                // stack (fixed cell column).
                unsafe {
                    for c in cr.clone() {
                        plane.set(c, rhs.get(c) * fm[0]);
                    }
                    for l in 1..layers {
                        let row = l * cells;
                        for c in cr.clone() {
                            let w =
                                (rhs.get(row + c) - fsub[l] * plane.get(row - cells + c)) * fm[l];
                            plane.set(row + c, w);
                        }
                    }
                    for l in (0..layers - 1).rev() {
                        let row = l * cells;
                        for c in cr.clone() {
                            plane.set(
                                row + c,
                                plane.get(row + c) - fcp[l] * plane.get(row + cells + c),
                            );
                        }
                    }
                    for (l, &gv) in g_vert.iter().enumerate().take(layers - 1) {
                        let row = l * cells;
                        for c in cr.clone() {
                            let q = (plane.get(row + c) - plane.get(row + cells + c)) * gv * wdt;
                            h.set(row + c, h.get(row + c) - q);
                            h.set(row + cells + c, h.get(row + cells + c) + q);
                        }
                    }
                    let row = (layers - 1) * cells;
                    for c in cr {
                        let q_sink = plane.get(row + c) * g_sink * wdt;
                        h.set(row + c, h.get(row + c) - q_sink);
                        sink_q.set(c, q_sink);
                    }
                }
            });
            for c in 0..cells {
                self.boundary_absorbed_j += self.adi_sink_q[c];
            }
        }
        self.adi_cache = cache;
    }

    fn track_peaks(&mut self) {
        // One die scan refreshes both the gradient tracker and the
        // junction cache: `hi` is exactly the fold `junction_temp_c`
        // used to recompute on demand.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.cells_per_layer {
            let t = self.cell_temp(i);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        self.junction_cache_c = hi;
        self.peak_hotspot_gradient_k = self.peak_hotspot_gradient_k.max(hi - lo);
        for core in 0..self.core_cells.len() {
            let t = self.core_temp_c(core);
            if t > self.peak_core_temps_c[core] {
                self.peak_core_temps_c[core] = t;
            }
        }
    }
}

/// A raw view of a cell array that the threaded sweep regions share.
/// `&mut`-free so the region closure can be `Fn + Sync`; soundness
/// comes from the sweep's partitioning discipline — every lane reads
/// and writes only indices in its own [`lane_range`] (or its own rows/
/// columns/stacks), so no two lanes ever touch the same element within
/// a region, and [`SolverPool::run`] is a full barrier between regions.
struct RawCells(*mut f64);

unsafe impl Send for RawCells {}
unsafe impl Sync for RawCells {}

impl RawCells {
    /// # Safety
    /// `i` must be in bounds and, within a pool region, owned by the
    /// calling lane (no lane reads an element another lane writes).
    #[inline]
    unsafe fn get(&self, i: usize) -> f64 {
        *self.0.add(i)
    }

    /// # Safety
    /// Same contract as [`Self::get`].
    #[inline]
    unsafe fn set(&self, i: usize, v: f64) {
        *self.0.add(i) = v;
    }
}

/// Piecewise temperature-of-enthalpy (the enthalpy method), matching
/// [`crate::node::StorageNode`] with a 0 C reference.
fn cell_temp_of(enthalpy_j: f64, solid_capacity_j_per_k: f64, phase: &Option<CellPhase>) -> f64 {
    match phase {
        None => enthalpy_j / solid_capacity_j_per_k,
        Some(pc) => {
            let h0 = pc.melt_temp_c * solid_capacity_j_per_k;
            if enthalpy_j <= h0 {
                enthalpy_j / solid_capacity_j_per_k
            } else if enthalpy_j <= h0 + pc.latent_heat_j {
                pc.melt_temp_c
            } else {
                pc.melt_temp_c + (enthalpy_j - h0 - pc.latent_heat_j) / pc.liquid_capacity_j_per_k
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient_everywhere() {
        let g = GridThermalParams::hpca_like().build();
        for layer in 0..g.layer_count() {
            for y in 0..g.params().ny {
                for x in 0..g.params().nx {
                    assert!((g.cell_temp_c(layer, x, y) - 25.0).abs() < 1e-9);
                }
            }
        }
        assert_eq!(g.melt_fraction(), 0.0);
        assert_eq!(g.hotspot_gradient_k(), 0.0);
    }

    #[test]
    fn uniform_power_reaches_the_series_steady_state() {
        // Full-die core, lateral disabled by symmetry anyway: the grid
        // must settle at ambient + P * (sum of series resistances).
        let mut params = GridThermalParams::hpca_like().with_floorplan(Floorplan::full_die());
        params.layers = vec![
            GridLayer::sensible("die", 0.2, 10.0, 1.0),
            GridLayer::sensible("mid", 0.5, 10.0, 2.0),
            GridLayer::sensible("sink", 1.0, 10.0, 1.0),
        ];
        params.r_sink_ambient_k_per_w = 3.0;
        params.nx = 3;
        params.ny = 3;
        let mut g = params.build();
        g.set_chip_power_w(2.0);
        g.advance(200.0);
        let expected = 25.0 + 2.0 * (1.0 + 2.0 + 3.0);
        let got = g.junction_temp_c();
        assert!(
            (got - expected).abs() < 0.05,
            "expected {expected}, got {got}"
        );
        // Uniform power: no gradient.
        assert!(g.hotspot_gradient_k() < 1e-6);
    }

    #[test]
    fn concentrated_cores_form_a_hotspot() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_chip_power_w(16.0);
        g.advance(2.0);
        let gradient = g.hotspot_gradient_k();
        assert!(
            gradient > 3.0,
            "4x4 core array must produce a multi-degree gradient, got {gradient:.2} K"
        );
        assert!(g.junction_temp_c() > g.mean_die_temp_c() + 1.0);
    }

    #[test]
    fn fewer_active_cores_concentrate_the_same_power() {
        let mut all = GridThermalParams::hpca_like().build();
        let mut one = GridThermalParams::hpca_like().build();
        all.set_chip_power_w(4.0);
        one.set_active_cores(1);
        one.set_chip_power_w(4.0);
        all.advance(1.0);
        one.advance(1.0);
        assert!(
            one.junction_temp_c() > all.junction_temp_c() + 1.0,
            "4 W on one core must run hotter than on sixteen: {:.2} vs {:.2}",
            one.junction_temp_c(),
            all.junction_temp_c()
        );
    }

    #[test]
    fn energy_is_conserved() {
        let mut g = GridThermalParams::hpca_like().build();
        let e0 = g.total_stored_enthalpy_j();
        g.set_chip_power_w(16.0);
        g.advance(0.7);
        let injected = 16.0 * 0.7;
        let stored = g.total_stored_enthalpy_j() - e0;
        let absorbed = g.boundary_absorbed_j();
        assert!(
            (stored + absorbed - injected).abs() < 1e-9 * injected,
            "stored {stored} + absorbed {absorbed} != {injected}"
        );
    }

    #[test]
    fn pcm_layer_melts_and_budget_shrinks() {
        let mut g = GridThermalParams::hpca_like().build();
        let b0 = g.sprint_energy_budget_j();
        assert!(
            (13.0..20.0).contains(&b0),
            "cold budget {b0:.1} J should be near the paper's 16 J"
        );
        g.set_chip_power_w(16.0);
        g.advance(0.8);
        assert!(g.melt_fraction() > 0.0, "sprint heat must start the melt");
        assert!(g.sprint_energy_budget_j() < b0);
    }

    #[test]
    fn time_scaling_compresses_transients_only() {
        let mut base = GridThermalParams::hpca_like().build();
        let mut scaled = GridThermalParams::hpca_like().time_scaled(10.0).build();
        base.set_chip_power_w(8.0);
        scaled.set_chip_power_w(8.0);
        base.advance(1.0);
        scaled.advance(0.1);
        assert!(
            (base.junction_temp_c() - scaled.junction_temp_c()).abs() < 0.2,
            "10x compressed run at t/10 must match: {:.2} vs {:.2}",
            base.junction_temp_c(),
            scaled.junction_temp_c()
        );
    }

    #[test]
    fn reset_clears_state_and_peaks() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_chip_power_w(16.0);
        g.advance(1.0);
        assert!(g.peak_hotspot_gradient_k() > 0.0);
        g.reset_to_ambient();
        assert!((g.junction_temp_c() - 25.0).abs() < 1e-9);
        assert_eq!(g.peak_hotspot_gradient_k(), 0.0);
        assert_eq!(g.melt_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "limit must exceed ambient")]
    fn inverted_limits_rejected() {
        let mut p = GridThermalParams::hpca_like();
        p.t_max_c = 20.0;
        p.validate();
    }

    #[test]
    fn solver_selection_plumbs_through() {
        let explicit = GridThermalParams::hpca_like().build();
        assert_eq!(explicit.solver(), GridSolver::Explicit);
        let adi = GridThermalParams::hpca_like()
            .with_solver(GridSolver::Adi)
            .build();
        assert_eq!(adi.solver(), GridSolver::Adi);
        // The decoupling in one line: the ADI bound dwarfs the explicit
        // one, and refining the grid widens the gap (the explicit bound
        // shrinks, the ADI bound holds still).
        assert!(adi.adi_sub_step_s() > 5.0 * adi.sub_step_s());
        let fine = GridThermalParams::hpca_like().with_grid(32, 32).build();
        assert!(fine.sub_step_s() < explicit.sub_step_s() / 4.0);
        assert!((fine.adi_sub_step_s() - explicit.adi_sub_step_s()).abs() < 1e-12);
    }

    #[test]
    fn per_core_power_matches_the_uniform_split() {
        // Writing chip/N to every core individually must reproduce the
        // uniform `set_chip_power_w` split bit-for-bit.
        let mut uniform = GridThermalParams::hpca_like().build();
        let mut per_core = GridThermalParams::hpca_like().build();
        uniform.set_chip_power_w(16.0);
        let cores = per_core.params().floorplan.core_count();
        for c in 0..cores {
            per_core.set_core_power_w(c, 16.0 / cores as f64);
        }
        assert_eq!(uniform.chip_power_w(), per_core.chip_power_w());
        uniform.advance(0.5);
        per_core.advance(0.5);
        assert_eq!(
            uniform.junction_temp_c().to_bits(),
            per_core.junction_temp_c().to_bits()
        );
    }

    #[test]
    fn one_hot_core_power_heats_only_its_region() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_core_power_w(0, 4.0);
        assert_eq!(g.chip_power_w(), 4.0);
        assert_eq!(g.core_power_w(0), 4.0);
        assert_eq!(g.core_power_w(7), 0.0);
        g.advance(1.0);
        // Core 0 (a corner of the array) must run hotter than the
        // diagonally opposite core 15.
        assert!(g.core_temp_c(0) > g.core_temp_c(15) + 1.0);
    }

    #[test]
    fn region_budget_of_a_full_die_core_equals_the_global_budget() {
        let mut p = GridThermalParams::hpca_like();
        p.floorplan = Floorplan::full_die();
        let mut g = p.build();
        g.set_chip_power_w(8.0);
        g.advance(0.4);
        assert_eq!(
            g.sprint_energy_budget_j().to_bits(),
            g.region_sprint_budget_j(0).to_bits(),
            "a footprint covering every cell must see the global budget"
        );
    }

    #[test]
    fn region_budgets_track_their_own_heat() {
        let mut g = GridThermalParams::hpca_like().build();
        let cold0 = g.region_sprint_budget_j(0);
        let cold15 = g.region_sprint_budget_j(15);
        assert!((cold0 - cold15).abs() < 1e-9, "symmetric corners at rest");
        g.set_core_power_w(0, 6.0);
        g.advance(1.0);
        assert!(
            g.region_sprint_budget_j(0) < g.region_sprint_budget_j(15),
            "the heated region must have less budget left"
        );
    }

    #[test]
    fn core_temps_into_matches_the_allocating_accessor() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_chip_power_w(10.0);
        g.advance(0.5);
        let alloc = g.core_temps_c();
        let mut buf = vec![0.0; alloc.len()];
        g.core_temps_c_into(&mut buf);
        assert_eq!(alloc, buf);
    }

    #[test]
    fn rack_preset_steady_states_bracket_the_limit() {
        // All-sustained idles far below the limit; the whole rack
        // sprinting drives the steady state past it (thermal collapse):
        // exactly the contention an admission policy has to manage.
        let nodes = 16;
        let mut idle = GridThermalParams::rack(4, 4).build();
        assert_eq!(idle.params().nx, 32);
        assert_eq!(idle.params().floorplan.core_count(), nodes);
        assert_eq!(idle.solver(), GridSolver::Adi);
        for n in 0..nodes {
            idle.set_core_power_w(n, 1.0);
        }
        idle.advance(200.0);
        assert!(
            idle.junction_temp_c() < 40.0,
            "sustained rack must idle cool, got {:.1} C",
            idle.junction_temp_c()
        );

        let mut one = GridThermalParams::rack(4, 4).build();
        for n in 0..nodes {
            one.set_core_power_w(n, if n == 5 { 16.0 } else { 1.0 });
        }
        one.advance(200.0);
        assert!(
            one.junction_temp_c() < 55.0,
            "a lone sprinter must stay well below the limit, got {:.1} C",
            one.junction_temp_c()
        );

        let mut all = GridThermalParams::rack(4, 4).build();
        for n in 0..nodes {
            all.set_core_power_w(n, 16.0);
        }
        all.advance(200.0);
        assert!(
            all.junction_temp_c() > all.t_max_c() + 10.0,
            "an unmanaged all-node sprint must collapse thermally, got {:.1} C",
            all.junction_temp_c()
        );
    }

    #[test]
    fn adi_cache_rebuilds_on_a_new_step_size_without_changing_results() {
        // Two identical ADI racks, one advanced with a uniform window
        // and one with a mixed schedule covering the same span, must
        // agree closely (the cache is keyed on the sub-step and must
        // rebuild transparently).
        let mut a = GridThermalParams::rack(2, 2).build();
        let mut b = GridThermalParams::rack(2, 2).build();
        for n in 0..4 {
            a.set_core_power_w(n, 8.0);
            b.set_core_power_w(n, 8.0);
        }
        for _ in 0..40 {
            a.advance(0.05);
        }
        for _ in 0..10 {
            b.advance(0.13);
        }
        b.advance(0.7);
        assert!(
            (a.junction_temp_c() - b.junction_temp_c()).abs() < 0.2,
            "{} vs {}",
            a.junction_temp_c(),
            b.junction_temp_c()
        );
    }

    #[test]
    fn adi_reaches_the_same_series_steady_state() {
        let mut params = GridThermalParams::hpca_like().with_floorplan(Floorplan::full_die());
        params.layers = vec![
            GridLayer::sensible("die", 0.2, 10.0, 1.0),
            GridLayer::sensible("mid", 0.5, 10.0, 2.0),
            GridLayer::sensible("sink", 1.0, 10.0, 1.0),
        ];
        params.r_sink_ambient_k_per_w = 3.0;
        params.nx = 3;
        params.ny = 3;
        params.solver = GridSolver::Adi;
        let mut g = params.build();
        g.set_chip_power_w(2.0);
        g.advance(200.0);
        let expected = 25.0 + 2.0 * (1.0 + 2.0 + 3.0);
        let got = g.junction_temp_c();
        assert!(
            (got - expected).abs() < 0.05,
            "expected {expected}, got {got}"
        );
        assert!(g.hotspot_gradient_k() < 1e-6);
    }

    /// Drives the *general* (phase-aware) ADI path with the same
    /// sub-stepping and peak tracking as [`GridThermal::advance`], so a
    /// PCM-free grid can be integrated down both paths side by side.
    fn advance_general(g: &mut GridThermal, dt_s: f64) {
        assert!(matches!(g.params.solver, GridSolver::Adi));
        if g.core_power_dirty {
            g.apply_core_power_map();
        }
        if dt_s > 0.0 {
            let steps = (dt_s / g.adi_sub_step_s).ceil().max(1.0) as u64;
            let sub = dt_s / steps as f64;
            for _ in 0..steps {
                g.adi_step_general(sub);
                g.time_s += sub;
            }
        }
        g.track_peaks();
    }

    #[test]
    fn linear_fast_path_matches_general_adi_bit_for_bit() {
        // The PCM-free fast path (batched factors, planar sweeps) must
        // reproduce the general path to the last bit, or every digest
        // pinned downstream (cluster, facility) would shift.
        let mut fast = GridThermalParams::rack(2, 2).build();
        let mut general = GridThermalParams::rack(2, 2).build();
        assert!(
            fast.pcm_cells.is_empty(),
            "rack preset must be PCM-free for this test"
        );
        let cores = fast.params().floorplan.cores().len();
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for window in 0..120 {
            for core in 0..cores {
                // Mix busy, idle, and repeated-value windows so the
                // dirty-map early-out is exercised on both sides.
                let u = next();
                let watts = if u < 0.4 { 0.0 } else { 40.0 * u };
                fast.set_core_power_w(core, watts);
                general.set_core_power_w(core, watts);
            }
            let dt = if window % 7 == 0 { 0.05 } else { 0.002 };
            fast.advance(dt);
            advance_general(&mut general, dt);
        }
        for i in 0..fast.enthalpy_j.len() {
            assert_eq!(
                fast.enthalpy_j[i].to_bits(),
                general.enthalpy_j[i].to_bits(),
                "cell {i} diverged"
            );
        }
        assert_eq!(
            fast.boundary_absorbed_j.to_bits(),
            general.boundary_absorbed_j.to_bits()
        );
        assert_eq!(
            fast.junction_cache_c.to_bits(),
            general.junction_cache_c.to_bits()
        );
        assert_eq!(
            fast.peak_hotspot_gradient_k.to_bits(),
            general.peak_hotspot_gradient_k.to_bits()
        );
        for (a, b) in fast
            .peak_core_temps_c
            .iter()
            .zip(&general.peak_core_temps_c)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Drives the pre-batching per-line general sub-step
    /// ([`GridThermal::adi_step_general_reference`]) with the same
    /// sub-stepping and peak tracking as [`GridThermal::advance`].
    fn advance_general_reference(g: &mut GridThermal, dt_s: f64) {
        assert!(matches!(g.params.solver, GridSolver::Adi));
        if g.core_power_dirty {
            g.apply_core_power_map();
        }
        if dt_s > 0.0 {
            let steps = (dt_s / g.adi_sub_step_s).ceil().max(1.0) as u64;
            let sub = dt_s / steps as f64;
            for _ in 0..steps {
                g.adi_step_general_reference(sub);
                g.time_s += sub;
            }
        }
        g.track_peaks();
    }

    #[test]
    fn batched_general_sweeps_match_the_per_line_reference_bit_for_bit() {
        // The lane-major batched assembly (and the factored whole-layer
        // bundles on the PCM-free layers) must reproduce the
        // line-at-a-time general sweep to the last bit — through solid
        // heating, the melting plateau (Dirichlet rows), full melt and
        // refreeze.
        let mut batched = GridThermalParams::hpca_like()
            .with_grid(6, 5)
            .with_solver(GridSolver::Adi)
            .build();
        let mut reference = GridThermalParams::hpca_like()
            .with_grid(6, 5)
            .with_solver(GridSolver::Adi)
            .build();
        assert!(
            !batched.pcm_cells.is_empty(),
            "the hpca preset must carry PCM for this test"
        );
        // Sprint hard into the melt, dwell on the plateau, then cool.
        let schedule = [
            (18.0, 0.4),
            (16.0, 0.6),
            (20.0, 0.5),
            (0.0, 0.8),
            (22.0, 0.7),
            (0.0, 2.0),
        ];
        for &(watts, dt) in &schedule {
            batched.set_chip_power_w(watts);
            reference.set_chip_power_w(watts);
            advance_general(&mut batched, dt);
            advance_general_reference(&mut reference, dt);
        }
        assert!(
            batched.peak_core_temps_c.iter().any(|&t| t > 59.0),
            "the schedule must actually reach the melt region"
        );
        for i in 0..batched.enthalpy_j.len() {
            assert_eq!(
                batched.enthalpy_j[i].to_bits(),
                reference.enthalpy_j[i].to_bits(),
                "cell {i} diverged"
            );
        }
        assert_eq!(
            batched.boundary_absorbed_j.to_bits(),
            reference.boundary_absorbed_j.to_bits()
        );
        assert_eq!(
            batched.junction_cache_c.to_bits(),
            reference.junction_cache_c.to_bits()
        );
        assert_eq!(
            batched.peak_hotspot_gradient_k.to_bits(),
            reference.peak_hotspot_gradient_k.to_bits()
        );
    }
}
