//! The coupled sprint system: architecture ⇄ thermal co-simulation.
//!
//! Mirrors the paper's methodology (Section 8.1): the machine runs in
//! energy-sampling windows (1000 cycles); each window's dissipated energy
//! drives the thermal RC network; the sprint controller watches the
//! budget/temperature and reconfigures the machine (core count, operating
//! point) as the sprint progresses.

use serde::{Deserialize, Serialize};
use sprint_archsim::machine::Machine;
use sprint_thermal::phone::PhoneThermal;

use crate::config::SprintConfig;
use crate::controller::{ControllerEvent, SprintController, SprintState};

/// One sampled point of a coupled run (for Figure 2-style traces).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSample {
    /// Time, seconds.
    pub time_s: f64,
    /// Active cores.
    pub active_cores: usize,
    /// Cumulative instructions retired.
    pub instructions: u64,
    /// Chip power over the last window, watts.
    pub power_w: f64,
    /// Junction temperature, Celsius.
    pub junction_c: f64,
    /// PCM melt fraction.
    pub melt_fraction: f64,
}

/// Result of a coupled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock completion time of the computation, seconds.
    pub completion_s: f64,
    /// Total dynamic energy, joules.
    pub energy_j: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// Time the sprint ended (migration or completion), if it was a sprint.
    pub sprint_end_s: Option<f64>,
    /// Maximum junction temperature observed, Celsius.
    pub max_junction_c: f64,
    /// Controller events.
    pub events: Vec<ControllerEvent>,
    /// Whether the run finished within the configured time limit.
    pub finished: bool,
    /// Sampled trace (decimated).
    pub trace: Vec<RunSample>,
}

impl RunReport {
    /// Responsiveness gain over a baseline completion time.
    pub fn speedup_over(&self, baseline_s: f64) -> f64 {
        baseline_s / self.completion_s
    }
}

/// The coupled system.
#[derive(Debug)]
pub struct SprintSystem {
    machine: Machine,
    thermal: PhoneThermal,
    config: SprintConfig,
    /// Keep roughly this many trace samples (decimating as needed).
    trace_capacity: usize,
}

impl SprintSystem {
    /// Couples a loaded machine (threads already spawned) with a thermal
    /// model under a sprint configuration.
    pub fn new(machine: Machine, thermal: PhoneThermal, config: SprintConfig) -> Self {
        config.validate();
        Self {
            machine,
            thermal,
            config,
            trace_capacity: 2048,
        }
    }

    /// Limits the retained trace length (0 disables tracing).
    pub fn with_trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Read access to the machine (e.g. for stats after a run).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read access to the thermal model.
    pub fn thermal(&self) -> &PhoneThermal {
        &self.thermal
    }

    /// Runs the computation to completion (or the configured time limit),
    /// returning the coupled report.
    pub fn run(mut self) -> RunReport {
        let mut controller =
            SprintController::new(self.config.clone(), &self.thermal, &mut self.machine);
        let window_ps = self.config.sample_window_ps;
        let window_s = window_ps as f64 * 1e-12;
        let max_windows = (self.config.max_time_s / window_s).ceil() as u64;
        let mut max_junction: f64 = self.thermal.junction_temp_c();
        let mut trace: Vec<RunSample> = Vec::new();
        // Sample decimation: grow stride when the trace would overflow.
        let mut stride = 1u64;
        let mut finished = false;
        let mut windows = 0u64;
        while windows < max_windows {
            let report = self.machine.run_window(window_ps);
            windows += 1;
            let now_s = self.machine.time_s();
            let power_w = report.energy_j / window_s;
            self.thermal.set_chip_power_w(power_w);
            self.thermal.advance(window_s);
            max_junction = max_junction.max(self.thermal.junction_temp_c());
            controller.step(
                &self.thermal,
                report.energy_j,
                window_s,
                now_s,
                &mut self.machine,
            );
            if self.trace_capacity > 0 && windows % stride == 0 {
                trace.push(RunSample {
                    time_s: now_s,
                    active_cores: self.machine.active_cores(),
                    instructions: self.machine.stats().instructions,
                    power_w,
                    junction_c: self.thermal.junction_temp_c(),
                    melt_fraction: self.thermal.melt_fraction(),
                });
                if trace.len() >= self.trace_capacity {
                    // Halve resolution: keep every other sample.
                    let kept: Vec<RunSample> =
                        trace.iter().copied().step_by(2).collect();
                    trace = kept;
                    stride *= 2;
                }
            }
            if report.all_done {
                finished = true;
                break;
            }
        }
        let sprint_end = controller.sprint_end_s().or({
            if controller.state() == SprintState::Sprinting && finished {
                Some(self.machine.time_s())
            } else {
                None
            }
        });
        RunReport {
            completion_s: self.machine.time_s(),
            energy_j: self.machine.stats().dynamic_energy_j,
            instructions: self.machine.stats().instructions,
            sprint_end_s: sprint_end,
            max_junction_c: max_junction,
            events: controller.events().to_vec(),
            finished,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;
    use sprint_archsim::config::MachineConfig;
    use sprint_archsim::program::SyntheticKernel;
    use sprint_thermal::phone::PhoneThermalParams;

    /// A compute-heavy load: `threads` kernels with `accesses` L1-resident
    /// accesses each.
    fn loaded_machine(cores: usize, threads: usize, accesses: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::hpca().with_cores(cores));
        for t in 0..threads as u64 {
            m.spawn(Box::new(SyntheticKernel::new(32, accesses, (t + 1) << 26, 0)));
        }
        m
    }

    /// Thermal model compressed 1000x so tests run in milliseconds of
    /// simulated time.
    fn fast_thermal() -> PhoneThermal {
        PhoneThermalParams::hpca().time_scaled(1000.0).build()
    }

    fn fast_limited_thermal() -> PhoneThermal {
        PhoneThermalParams::limited().time_scaled(1000.0).build()
    }

    #[test]
    fn parallel_sprint_beats_sustained() {
        let work = 20_000;
        let sustained = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let sprint = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(sustained.finished && sprint.finished);
        let speedup = sprint.speedup_over(sustained.completion_s);
        assert!(
            speedup > 8.0,
            "16-core sprint of independent work should approach 16x: {speedup:.2}"
        );
    }

    #[test]
    fn limited_budget_forces_migration_midway() {
        // Large work against the 100x-smaller PCM: the sprint must end
        // early and finish on one core.
        let report = SprintSystem::new(
            loaded_machine(16, 16, 120_000),
            fast_limited_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(report.finished, "run must complete post-sprint");
        let end = report.sprint_end_s.expect("sprint should have ended");
        assert!(
            end < report.completion_s * 0.8,
            "sprint end {end} should precede completion {}",
            report.completion_s
        );
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })));
    }

    #[test]
    fn junction_never_exceeds_tmax_materially() {
        let report = SprintSystem::new(
            loaded_machine(16, 16, 80_000),
            fast_limited_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(
            report.max_junction_c < 70.0 + 2.0,
            "thermal limit respected: {:.1} C",
            report.max_junction_c
        );
    }

    #[test]
    fn dvfs_sprint_is_slower_than_parallel_but_faster_than_sustained() {
        // Sized so even the boosted single-core run fits inside the
        // (compressed) sprint budget — the "sufficient thermal
        // capacitance" regime of Figure 7's full-PCM bars.
        let work = 4_000;
        let base = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let dvfs = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_dvfs(),
        )
        .run();
        let parallel = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        let s_dvfs = dvfs.speedup_over(base.completion_s);
        let s_par = parallel.speedup_over(base.completion_s);
        assert!(
            s_dvfs > 1.5 && s_dvfs < 3.2,
            "DVFS sprint ≈ 2.5x on compute-bound work: {s_dvfs:.2}"
        );
        assert!(s_par > s_dvfs, "parallel {s_par:.2} must beat DVFS {s_dvfs:.2}");
    }

    #[test]
    fn dvfs_costs_much_more_energy() {
        let work = 4_000;
        let base = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let dvfs = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_dvfs(),
        )
        .run();
        let ratio = dvfs.energy_j / base.energy_j;
        assert!(
            ratio > 3.0,
            "quadratic voltage cost should show up: {ratio:.2}"
        );
    }

    #[test]
    fn trace_is_bounded_and_ordered() {
        let report = SprintSystem::new(
            loaded_machine(4, 4, 30_000),
            fast_thermal(),
            SprintConfig::hpca_parallel().with_mode(ExecutionMode::ParallelSprint { cores: 4 }),
        )
        .with_trace_capacity(128)
        .run();
        assert!(report.trace.len() <= 128);
        for w in report.trace.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
            assert!(w[1].instructions >= w[0].instructions);
        }
    }
}
