//! Integration tests for the shared rack power-delivery pool: the
//! power-aware-beats-oblivious claim the `rack_power` figure makes, the
//! idle-recharge path for independently supplied nodes, and the
//! open-arrival latency statistics.

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// Runs the open-arrival study rack under one power policy (same
/// thermal admission for every run).
fn run_power_policy(power: PowerPolicy) -> ClusterReport {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(3, 3).time_scaled(6000.0))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(power)
        .rack_supply(RackSupplyParams::rack(9).time_scaled(6000.0))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            36,
            0.0,
            20e-6,
        ))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    cluster.report()
}

/// The acceptance claim at test scale: on a rack whose feed cannot
/// carry all-node sprinting, power-aware admission completes the
/// open-arrival task set with strictly lower mean latency than
/// power-oblivious admission and zero electrical sprint casualties,
/// while the oblivious rack browns the bus out.
#[test]
fn power_aware_beats_oblivious_with_zero_aborts() {
    let oblivious = run_power_policy(PowerPolicy::Oblivious);
    let aware = run_power_policy(PowerPolicy::rationed_default());

    assert_eq!(oblivious.completed, 36);
    assert_eq!(aware.completed, 36);
    assert!(
        oblivious.supply_aborts > 0,
        "the oblivious rack must sprint into the drained reserve"
    );
    assert_eq!(
        aware.supply_aborts, 0,
        "power-aware admission must never let a sprint brown out"
    );
    assert!(
        aware.mean_latency_s < oblivious.mean_latency_s,
        "rationing must win on mean latency: {:.5} vs {:.5}",
        aware.mean_latency_s,
        oblivious.mean_latency_s
    );
    assert!(
        aware.p95_latency_s < oblivious.p95_latency_s,
        "and on the tail: {:.5} vs {:.5}",
        aware.p95_latency_s,
        oblivious.p95_latency_s
    );
}

/// Configuring a shared feed while telling sessions to ignore their
/// supply would silently disconnect the whole electrical model (no
/// draws, no telemetry, vacuous zero-abort results); the builder
/// rejects the contradiction up front.
#[test]
#[should_panic(expected = "SupplyPolicy::EndSprint")]
fn rack_supply_with_ignore_policy_is_rejected_at_build() {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.supply_policy = sprint_core::config::SupplyPolicy::Ignore;
    let _ = ClusterBuilder::new(GridThermalParams::rack(2, 2))
        .rack_supply(RackSupplyParams::rack(4))
        .config(cfg)
        .build();
}

/// An uncapped shared pool must not perturb the simulation: the same
/// cluster with and without `rack_supply(unlimited)` produces
/// byte-identical outcomes (the pool records telemetry but never
/// constrains anything).
#[test]
fn unlimited_pool_is_behaviour_identical_to_no_pool() {
    let run = |with_pool: bool| {
        let mut b = ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
            .policy(ClusterPolicy::greedy_default())
            .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 8))
            .trace_capacity(0);
        if with_pool {
            b = b.rack_supply(RackSupplyParams::unlimited());
        }
        let mut cluster = b.build();
        assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
        cluster.report()
    };
    let bare = run(false);
    let pooled = run(true);
    assert_eq!(bare.makespan_s.to_bits(), pooled.makespan_s.to_bits());
    assert_eq!(bare.outcomes.len(), pooled.outcomes.len());
    for (a, b) in bare.outcomes.iter().zip(&pooled.outcomes) {
        assert_eq!(a.completed_s.to_bits(), b.completed_s.to_bits());
        assert_eq!(a.node, b.node);
        assert_eq!(a.sprinted, b.sprinted);
    }
    assert_eq!(pooled.supply_aborts, 0);
}

/// Latency statistics under staggered open arrivals: the report's
/// mean/p95/max must agree exactly with figures recomputed from the
/// raw outcomes, and queueing delay must be visible in them.
#[test]
fn latency_stats_cover_staggered_arrivals() {
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::AllSprint)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            7,
            0.0,
            5e-5,
        ))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    assert_eq!(report.completed, 7);

    let mut latencies: Vec<f64> = report.outcomes.iter().map(|o| o.latency_s()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    // Nearest-rank p95 and p99 of 7 samples are both the 7th
    // (ceil(0.95 * 7) = ceil(0.99 * 7) = 7).
    let p95 = latencies[6];
    let p99 = latencies[6];
    let max = latencies[6];
    assert_eq!(report.mean_latency_s.to_bits(), mean.to_bits());
    assert_eq!(report.p95_latency_s.to_bits(), p95.to_bits());
    assert_eq!(report.p99_latency_s.to_bits(), p99.to_bits());
    assert_eq!(report.max_latency_s.to_bits(), max.to_bits());
    assert!(report.p95_latency_s <= report.p99_latency_s);
    assert!(report.p99_latency_s <= report.max_latency_s);
    assert!(
        report.mean_latency_s < report.p95_latency_s,
        "staggered arrivals on two nodes must queue: the tail task \
         waits while earlier ones run"
    );
    // Each latency includes its queueing delay: assigned >= arrival.
    for o in &report.outcomes {
        assert!(o.assigned_s >= o.arrival_s - 1e-12);
        assert!((o.latency_s() - (o.completed_s - o.arrival_s)).abs() < 1e-15);
    }
}

/// With more samples the p95 sits strictly inside the tail: above the
/// mean, at or below the max, and *not* simply the max once n > 20.
#[test]
fn p95_separates_from_max_with_enough_samples() {
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::greedy_default())
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            24,
            0.0,
            2e-5,
        ))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    assert_eq!(report.completed, 24);
    let mut latencies: Vec<f64> = report.outcomes.iter().map(|o| o.latency_s()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Nearest-rank p95 of 24 samples is the 23rd (ceil(0.95 * 24));
    // the p99 is the 24th (ceil(0.99 * 24)), i.e. the max.
    assert_eq!(report.p95_latency_s.to_bits(), latencies[22].to_bits());
    assert_eq!(report.p99_latency_s.to_bits(), latencies[23].to_bits());
    assert_eq!(
        report.p99_latency_s.to_bits(),
        report.max_latency_s.to_bits()
    );
    assert!(report.p95_latency_s <= report.max_latency_s);
    assert!(report.mean_latency_s < report.max_latency_s);
}

/// The empty-outcome contract: every latency statistic (mean,
/// percentiles, max) is NaN — there is nothing to average — while
/// counters and the makespan are zero.
#[test]
fn empty_outcome_latency_stats_are_nan() {
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::AllSprint)
        .build();
    // No tasks: the queue is drained before the first window.
    assert_eq!(cluster.step(), ClusterOutcome::Drained);
    let report = cluster.report();
    assert_eq!(report.completed, 0);
    assert!(report.mean_latency_s.is_nan(), "mean of nothing is NaN");
    assert!(report.p95_latency_s.is_nan(), "p95 of nothing is NaN");
    assert!(report.p99_latency_s.is_nan(), "p99 of nothing is NaN");
    assert!(
        report.max_latency_s.is_nan(),
        "max of nothing is NaN, like every other latency statistic"
    );
    assert_eq!(report.makespan_s, 0.0);

    // Mid-run, before anything completes, the same contract holds.
    let mut running = ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::AllSprint)
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 2))
        .trace_capacity(0)
        .build();
    assert_eq!(running.step(), ClusterOutcome::Running);
    let mid = running.report();
    assert_eq!(mid.completed, 0);
    assert!(mid.mean_latency_s.is_nan());
    assert!(mid.p95_latency_s.is_nan());
    assert!(mid.p99_latency_s.is_nan());
}
