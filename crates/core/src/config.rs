//! Sprint system configuration.

use serde::{Deserialize, Serialize};
use sprint_archsim::dvfs::OperatingPoint;

/// How the chip uses its thermal headroom for a burst (Section 8's three
/// configurations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Conventional operation: one core at nominal frequency, never
    /// exceeding TDP.
    Sustained,
    /// Parallel sprint: activate `cores` nominally-dark cores at nominal
    /// voltage/frequency (power ≈ cores × 1 W).
    ParallelSprint {
        /// Number of cores to sprint with.
        cores: usize,
    },
    /// Single-core voltage/frequency sprint with the same power envelope:
    /// f = headroom^(1/3) (Section 8.4's idealized DVFS).
    DvfsSprint {
        /// Power headroom relative to TDP (16 in the paper).
        headroom: f64,
    },
}

impl ExecutionMode {
    /// Cores active while sprinting in this mode.
    pub fn sprint_cores(&self) -> usize {
        match self {
            ExecutionMode::Sustained => 1,
            ExecutionMode::ParallelSprint { cores } => *cores,
            ExecutionMode::DvfsSprint { .. } => 1,
        }
    }

    /// Operating point used while sprinting.
    pub fn sprint_operating_point(&self) -> OperatingPoint {
        match self {
            ExecutionMode::Sustained => OperatingPoint::nominal(),
            ExecutionMode::ParallelSprint { .. } => OperatingPoint::nominal(),
            ExecutionMode::DvfsSprint { headroom } => {
                OperatingPoint::max_boost_for_power_headroom(*headroom)
            }
        }
    }
}

/// How the controller spends the thermal budget over the sprint — the
/// *sprint pacing* extension (the paper's conclusion hints at budget
/// shifting; pacing was developed in the authors' follow-on work).
///
/// With power linear in active cores, a lower intensity drains the budget
/// more slowly than it gives up throughput: at 16 cores the chip drains
/// `16 - TDP = 15` budget-watts for 16 units of throughput, while at 8
/// cores it drains 7 for 8 — so for tasks that exceed the budget, pacing
/// completes *more total work within the sprint* and shortens the
/// single-core tail.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum PacingPolicy {
    /// The paper's default: sprint at full intensity until the budget is
    /// nearly exhausted, then migrate to one core.
    #[default]
    AllOut,
    /// Sprint at a reduced, fixed core count.
    FixedIntensity {
        /// Cores to sprint with (≤ the mode's sprint cores).
        cores: usize,
    },
    /// Step intensity down as the budget depletes: each stage gives the
    /// spent-fraction threshold at which to drop to the given core count.
    /// Thresholds must be increasing; core counts decreasing.
    StagedDecay {
        /// `(spent_fraction, cores)` stages, checked in order.
        stages: Vec<(f64, usize)>,
    },
}

impl PacingPolicy {
    /// The core count to run right now, given the starting count and the
    /// budget fraction spent.
    pub fn cores_at(&self, start_cores: usize, spent_fraction: f64) -> usize {
        match self {
            PacingPolicy::AllOut => start_cores,
            PacingPolicy::FixedIntensity { cores } => (*cores).min(start_cores).max(1),
            PacingPolicy::StagedDecay { stages } => {
                let mut current = start_cores;
                for &(threshold, cores) in stages {
                    if spent_fraction >= threshold {
                        current = cores.min(start_cores).max(1);
                    }
                }
                current
            }
        }
    }

    /// Validates stage ordering.
    ///
    /// # Panics
    ///
    /// Panics on non-increasing thresholds or non-decreasing core counts.
    pub fn validate(&self) {
        if let PacingPolicy::StagedDecay { stages } = self {
            for w in stages.windows(2) {
                assert!(w[1].0 > w[0].0, "pacing thresholds must increase");
                assert!(w[1].1 < w[0].1, "pacing core counts must decrease");
            }
            for &(t, c) in stages {
                assert!((0.0..1.0).contains(&t), "threshold in [0,1)");
                assert!(c >= 1, "stage needs at least one core");
            }
        }
        if let PacingPolicy::FixedIntensity { cores } = self {
            assert!(*cores >= 1, "at least one core");
        }
    }
}

/// How the controller reacts as the *hottest spot* approaches the
/// thermal limit — the grid-backend extension of Section 7's abort
/// machinery. Spatial backends report the hottest die cell as the
/// junction, so on them this policy gates sprints on local hotspots that
/// lumped models average away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum HotspotPolicy {
    /// No proactive reaction (the paper's behaviour): the sprint runs
    /// full-width until the budget estimator trips or the hardware
    /// failsafe throttles at the limit.
    #[default]
    HardAbort,
    /// Shed sprinting cores progressively as hotspot headroom shrinks:
    /// full width at `start_headroom_k` or more, stepping linearly down
    /// to `min_cores` at zero headroom. Sheds ratchet within a burst —
    /// a core surrendered to the throttle does not come back until
    /// the next burst re-arms the controller — so the core count cannot
    /// oscillate around the threshold.
    ShedCores {
        /// Headroom (Kelvin) at which shedding begins.
        start_headroom_k: f64,
        /// Floor on the sprinting core count.
        min_cores: usize,
    },
}

impl HotspotPolicy {
    /// The most cores this policy allows at `headroom_k` of hotspot
    /// headroom, starting from `start_cores`.
    pub fn max_cores_at(&self, start_cores: usize, headroom_k: f64) -> usize {
        match self {
            HotspotPolicy::HardAbort => start_cores,
            HotspotPolicy::ShedCores {
                start_headroom_k,
                min_cores,
            } => {
                let floor = (*min_cores).min(start_cores).max(1);
                // Also covers degenerate starts (0 or 1 cores): nothing
                // to shed, and no underflow below.
                if headroom_k >= *start_headroom_k || start_cores <= floor {
                    return start_cores;
                }
                let frac = (headroom_k / start_headroom_k).max(0.0);
                floor + ((start_cores - floor) as f64 * frac).floor() as usize
            }
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive shed threshold or a zero core floor.
    pub fn validate(&self) {
        if let HotspotPolicy::ShedCores {
            start_headroom_k,
            min_cores,
        } = self
        {
            assert!(
                start_headroom_k.is_finite() && *start_headroom_k > 0.0,
                "shed threshold must be positive"
            );
            assert!(*min_cores >= 1, "shed floor needs at least one core");
        }
    }
}

/// What the controller does when the sprint budget runs out with work
/// remaining (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortPolicy {
    /// Software migrates all threads to one core and powers the rest down;
    /// the hardware throttle covers only the migration window (default).
    MigrateToSingleCore,
    /// Hardware-only failsafe: throttle frequency by the active core count
    /// and keep all cores running (the paper's last-resort mechanism, as
    /// an ablation).
    ThrottleOnly,
}

/// How the loop reacts when the electrical supply cannot deliver a
/// window's power (Section 6 wired into the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupplyPolicy {
    /// End the sprint: migrate threads to one core, whose draw the supply
    /// can serve (default — the electrical analogue of budget exhaustion).
    EndSprint,
    /// Record nothing and keep sprinting: the supply model is advisory
    /// only (the seed behaviour, useful for thermal-only studies).
    Ignore,
}

/// How the controller estimates remaining sprint capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetEstimator {
    /// Activity-based: integrate dissipated energy since sprint start
    /// against the thermal model's budget (the paper's proposal).
    EnergyAccounting,
    /// Oracle: read the junction temperature directly (ablation baseline).
    OracleTemperature,
}

/// Full sprint-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SprintConfig {
    /// Execution mode for this run.
    pub mode: ExecutionMode,
    /// Pacing policy while sprinting.
    pub pacing: PacingPolicy,
    /// Hotspot reaction while sprinting (meaningful on spatial backends).
    pub hotspot: HotspotPolicy,
    /// Abort policy when capacity runs out.
    pub abort_policy: AbortPolicy,
    /// Budget estimation mechanism.
    pub estimator: BudgetEstimator,
    /// Reaction to an electrical supply limit.
    pub supply_policy: SupplyPolicy,
    /// Fraction of the budget held back as a safety margin before the
    /// controller ends the sprint (0.05 = terminate at 95% spent).
    pub budget_margin: f64,
    /// Core-activation ramp (Section 5: 128 µs keeps the supply within
    /// tolerance), seconds.
    pub activation_ramp_s: f64,
    /// Energy-sampling window (the paper samples every 1000 cycles ≈ 1 µs
    /// at 1 GHz), picoseconds.
    pub sample_window_ps: u64,
    /// Sustainable chip power (TDP) used by the energy-accounting
    /// estimator as the steady drain term, watts.
    pub tdp_w: f64,
    /// Hard time limit for a run, seconds (guards runaway simulations).
    pub max_time_s: f64,
}

impl SprintConfig {
    /// The paper's flagship configuration: sprint with 16 cores, migrate
    /// on exhaustion, energy-based budget estimation, 128 µs ramp.
    pub fn hpca_parallel() -> Self {
        Self {
            mode: ExecutionMode::ParallelSprint { cores: 16 },
            pacing: PacingPolicy::AllOut,
            hotspot: HotspotPolicy::HardAbort,
            abort_policy: AbortPolicy::MigrateToSingleCore,
            estimator: BudgetEstimator::EnergyAccounting,
            supply_policy: SupplyPolicy::EndSprint,
            budget_margin: 0.05,
            activation_ramp_s: 128e-6,
            sample_window_ps: 1_000_000,
            tdp_w: 1.0,
            max_time_s: 10.0,
        }
    }

    /// Sustained single-core baseline.
    pub fn hpca_sustained() -> Self {
        Self {
            mode: ExecutionMode::Sustained,
            ..Self::hpca_parallel()
        }
    }

    /// Idealized DVFS sprint with 16x power headroom.
    pub fn hpca_dvfs() -> Self {
        Self {
            mode: ExecutionMode::DvfsSprint { headroom: 16.0 },
            ..Self::hpca_parallel()
        }
    }

    /// Sets the execution mode (builder style).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-positive windows/limits or a margin outside `[0, 1)`.
    pub fn validate(&self) {
        assert!(self.sample_window_ps > 0, "sample window must be positive");
        assert!(
            (0.0..1.0).contains(&self.budget_margin),
            "budget margin must be in [0, 1)"
        );
        assert!(self.activation_ramp_s >= 0.0, "ramp must be non-negative");
        assert!(self.tdp_w > 0.0, "TDP must be positive");
        assert!(self.max_time_s > 0.0, "time limit must be positive");
        if let ExecutionMode::ParallelSprint { cores } = self.mode {
            assert!(cores >= 1, "sprint needs at least one core");
        }
        if let ExecutionMode::DvfsSprint { headroom } = self.mode {
            assert!(headroom >= 1.0, "headroom must be at least 1x");
        }
        self.pacing.validate();
        self.hotspot.validate();
    }
}

impl Default for SprintConfig {
    fn default() -> Self {
        Self::hpca_parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_config_validates() {
        SprintConfig::hpca_parallel().validate();
        SprintConfig::hpca_sustained().validate();
        SprintConfig::hpca_dvfs().validate();
    }

    #[test]
    fn dvfs_mode_boosts_cube_root() {
        let p = SprintConfig::hpca_dvfs().mode.sprint_operating_point();
        assert!((p.frequency_multiplier - 2.52).abs() < 0.01);
        assert_eq!(SprintConfig::hpca_dvfs().mode.sprint_cores(), 1);
    }

    #[test]
    fn parallel_mode_uses_nominal_point() {
        let mode = ExecutionMode::ParallelSprint { cores: 16 };
        assert_eq!(mode.sprint_cores(), 16);
        assert_eq!(mode.sprint_operating_point().frequency_multiplier, 1.0);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn bad_margin_rejected() {
        let mut c = SprintConfig::hpca_parallel();
        c.budget_margin = 1.5;
        c.validate();
    }

    #[test]
    fn pacing_all_out_keeps_full_intensity() {
        let p = PacingPolicy::AllOut;
        assert_eq!(p.cores_at(16, 0.0), 16);
        assert_eq!(p.cores_at(16, 0.99), 16);
    }

    #[test]
    fn pacing_fixed_caps_cores() {
        let p = PacingPolicy::FixedIntensity { cores: 8 };
        assert_eq!(p.cores_at(16, 0.5), 8);
        assert_eq!(p.cores_at(4, 0.5), 4, "cannot exceed the mode's cores");
    }

    #[test]
    fn pacing_stages_step_down() {
        let p = PacingPolicy::StagedDecay {
            stages: vec![(0.4, 8), (0.75, 4)],
        };
        p.validate();
        assert_eq!(p.cores_at(16, 0.0), 16);
        assert_eq!(p.cores_at(16, 0.39), 16);
        assert_eq!(p.cores_at(16, 0.4), 8);
        assert_eq!(p.cores_at(16, 0.8), 4);
    }

    #[test]
    fn hotspot_hard_abort_never_sheds() {
        let p = HotspotPolicy::HardAbort;
        assert_eq!(p.max_cores_at(16, 0.01), 16);
        assert_eq!(p.max_cores_at(16, -3.0), 16);
    }

    #[test]
    fn hotspot_shed_steps_down_linearly() {
        let p = HotspotPolicy::ShedCores {
            start_headroom_k: 5.0,
            min_cores: 4,
        };
        p.validate();
        assert_eq!(p.max_cores_at(16, 10.0), 16, "full width above threshold");
        assert_eq!(p.max_cores_at(16, 5.0), 16);
        assert_eq!(p.max_cores_at(16, 2.5), 10, "halfway: 4 + 12/2");
        assert_eq!(p.max_cores_at(16, 0.0), 4, "floor at zero headroom");
        assert_eq!(p.max_cores_at(16, -1.0), 4, "floor past the limit");
        assert_eq!(p.max_cores_at(2, 0.0), 2, "floor clamps to start");
    }

    #[test]
    #[should_panic(expected = "shed threshold")]
    fn hotspot_zero_threshold_rejected() {
        HotspotPolicy::ShedCores {
            start_headroom_k: 0.0,
            min_cores: 1,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "thresholds must increase")]
    fn pacing_bad_stage_order_rejected() {
        PacingPolicy::StagedDecay {
            stages: vec![(0.7, 8), (0.4, 4)],
        }
        .validate();
    }
}
