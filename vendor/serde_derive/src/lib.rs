//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — nothing in-tree serializes — and the build
//! environment has no network access to fetch the real crate. These
//! derives accept the same attribute positions and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
