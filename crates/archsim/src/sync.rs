//! Synchronization state: the global barrier, locks, and task queues.
//!
//! These model the runtime constructs the paper's kernels use (OpenMP-style
//! barriers, spin locks with PAUSE, and chunked dynamic scheduling through
//! shared counters).

use serde::{Deserialize, Serialize};

/// The machine-wide sense-reversing barrier over all live threads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BarrierState {
    /// Threads currently waiting (by index).
    waiting: Vec<usize>,
    /// Number of barrier episodes completed.
    episodes: u64,
}

impl BarrierState {
    /// Records `thread` arriving. If arrival completes the barrier (i.e.
    /// `waiting + 1 == live_threads`), returns the set of threads to wake
    /// and clears the barrier.
    pub fn arrive(&mut self, thread: usize, live_threads: usize) -> Option<Vec<usize>> {
        debug_assert!(!self.waiting.contains(&thread), "double arrival");
        if self.waiting.len() + 1 >= live_threads {
            let released = std::mem::take(&mut self.waiting);
            self.episodes += 1;
            Some(released)
        } else {
            self.waiting.push(thread);
            None
        }
    }

    /// Re-checks the release condition after the live-thread count drops
    /// (a thread finished while others waited). Returns threads to wake if
    /// the barrier now completes.
    pub fn recheck(&mut self, live_threads: usize) -> Option<Vec<usize>> {
        if !self.waiting.is_empty() && self.waiting.len() >= live_threads {
            self.episodes += 1;
            Some(std::mem::take(&mut self.waiting))
        } else {
            None
        }
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Threads currently parked at the barrier.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }
}

/// A pool of test-and-set locks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LockPool {
    owners: Vec<Option<usize>>,
    acquisitions: u64,
    contended_attempts: u64,
}

impl LockPool {
    /// Ensures at least `n` locks exist.
    pub fn ensure(&mut self, n: usize) {
        if self.owners.len() < n {
            self.owners.resize(n, None);
        }
    }

    /// Attempts to acquire `lock` for `thread`. Returns true on success.
    pub fn try_acquire(&mut self, lock: u32, thread: usize) -> bool {
        self.ensure(lock as usize + 1);
        let slot = &mut self.owners[lock as usize];
        match slot {
            None => {
                *slot = Some(thread);
                self.acquisitions += 1;
                true
            }
            Some(owner) if *owner == thread => {
                panic!("thread {thread} re-acquiring lock {lock} it already holds")
            }
            Some(_) => {
                self.contended_attempts += 1;
                false
            }
        }
    }

    /// Releases `lock`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held by `thread` (a workload bug).
    pub fn release(&mut self, lock: u32, thread: usize) {
        self.ensure(lock as usize + 1);
        let slot = &mut self.owners[lock as usize];
        assert_eq!(
            *slot,
            Some(thread),
            "thread {thread} releasing lock {lock} it does not hold"
        );
        *slot = None;
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed (contended) acquisition attempts so far.
    pub fn contended_attempts(&self) -> u64 {
        self.contended_attempts
    }
}

/// Shared chunked work queues (an atomic "next chunk" counter per queue).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskQueues {
    queues: Vec<TaskQueue>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaskQueue {
    next: u32,
    limit: u32,
}

impl TaskQueues {
    /// Creates a queue of `tasks` sequential task indices; returns its id.
    pub fn create(&mut self, tasks: u32) -> u32 {
        self.queues.push(TaskQueue {
            next: 0,
            limit: tasks,
        });
        (self.queues.len() - 1) as u32
    }

    /// Pops the next task index, or `None` when exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the queue id was never created.
    pub fn pop(&mut self, queue: u32) -> Option<u32> {
        let q = self
            .queues
            .get_mut(queue as usize)
            .expect("task queue not created");
        if q.next < q.limit {
            let t = q.next;
            q.next += 1;
            Some(t)
        } else {
            None
        }
    }

    /// Remaining tasks in a queue.
    pub fn remaining(&self, queue: u32) -> u32 {
        let q = &self.queues[queue as usize];
        q.limit - q.next
    }

    /// Resets a queue to a new task count (for multi-phase kernels).
    pub fn reset(&mut self, queue: u32, tasks: u32) {
        let q = self
            .queues
            .get_mut(queue as usize)
            .expect("task queue not created");
        q.next = 0;
        q.limit = tasks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = BarrierState::default();
        assert_eq!(b.arrive(0, 3), None);
        assert_eq!(b.arrive(1, 3), None);
        let released = b.arrive(2, 3).expect("last arrival releases");
        assert_eq!(released, vec![0, 1]);
        assert_eq!(b.episodes(), 1);
    }

    #[test]
    fn barrier_recheck_after_thread_exit() {
        let mut b = BarrierState::default();
        assert_eq!(b.arrive(0, 3), None);
        assert_eq!(b.arrive(1, 3), None);
        // Thread 2 finished instead of arriving: live count drops to 2.
        let released = b.recheck(2).expect("barrier must release");
        assert_eq!(released, vec![0, 1]);
    }

    #[test]
    fn single_thread_barrier_is_transparent() {
        let mut b = BarrierState::default();
        assert!(b.arrive(0, 1).is_some());
    }

    #[test]
    fn locks_mutually_exclude() {
        let mut l = LockPool::default();
        assert!(l.try_acquire(0, 1));
        assert!(!l.try_acquire(0, 2));
        l.release(0, 1);
        assert!(l.try_acquire(0, 2));
        assert_eq!(l.acquisitions(), 2);
        assert_eq!(l.contended_attempts(), 1);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_by_non_owner_panics() {
        let mut l = LockPool::default();
        assert!(l.try_acquire(0, 1));
        l.release(0, 2);
    }

    #[test]
    fn task_queue_hands_out_each_task_once() {
        let mut q = TaskQueues::default();
        let id = q.create(3);
        assert_eq!(q.pop(id), Some(0));
        assert_eq!(q.pop(id), Some(1));
        assert_eq!(q.pop(id), Some(2));
        assert_eq!(q.pop(id), None);
        q.reset(id, 1);
        assert_eq!(q.pop(id), Some(0));
    }
}
