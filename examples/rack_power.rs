//! Rack power delivery: power-oblivious vs power-aware admission.
//!
//! The same 4x4-server rack as `rack_sprint`, now fed from a shared
//! PDU/busbar whose provisioned cap cannot carry every node sprinting
//! at once (each node hangs off the bus through a lossy regulator, so
//! the pool pays `demand / η(load)`). An open-arrival trickle of
//! vision-kernel bursts runs under two power policies with the *same*
//! thermal admission:
//!
//! * **power-oblivious** — sprints are granted on thermal headroom
//!   alone: the bus overdraws, the ride-through reserve drains, and
//!   brownouts kill sprints mid-flight (`SupplyLimited`); the victims
//!   crawl home on one core.
//! * **power-aware** — admission books every sprint against the rack
//!   feed and defers tasks the feed cannot carry; the reserve is never
//!   spent on scheduled load and no sprint ever dies electrically.
//!
//! ```text
//! cargo run --release --example rack_power
//! ```

use computational_sprinting::prelude::*;
use sprint_thermal::grid::GridThermalParams;

/// Thermal/electrical time compression (so the example runs in seconds).
const COMPRESS: f64 = 6000.0;
/// Open-arrival task count.
const TASKS: usize = 96;
/// Arrival spacing, seconds of simulated time.
const SPACING_S: f64 = 20e-6;

// This run mirrors `sprint_bench::figs_rack::power_study_cluster`
// (`repro rack_power`) — the example cannot depend on the bench crate,
// so each copy asserts the study's claims independently: retuning one
// without the other fails either this example (CI example-smoke) or
// the figure's own assertions, not silently.
fn run(label: &str, power: PowerPolicy) -> ClusterReport {
    let mut cfg = SprintConfig::hpca_parallel();
    // Same nameplate thermal credit as `rack_sprint`.
    cfg.tdp_w = 8.0;
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(4, 4).time_scaled(COMPRESS))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(power)
        .rack_supply(RackSupplyParams::rack(16).time_scaled(COMPRESS))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            TASKS,
            0.0,
            SPACING_S,
        ))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    println!(
        "{label:15} mean latency {:7.2} ms | p95 {:7.2} ms | max {:7.2} ms | \
         sprints {:2} | supply aborts {:3} | power sheds {:2}",
        report.mean_latency_s * 1e3,
        report.p95_latency_s * 1e3,
        report.max_latency_s * 1e3,
        report.admitted_sprints,
        report.supply_aborts,
        report.power_sheds,
    );
    report
}

fn main() {
    println!(
        "== {TASKS} sobel bursts arriving every {:.0} us on a 4x4 server rack ==",
        SPACING_S * 1e6
    );
    println!("== shared 120 W feed, ~17.7 W regulated draw per sprinting node ==\n");
    let oblivious = run("power-oblivious", PowerPolicy::Oblivious);
    let aware = run("power-aware", PowerPolicy::rationed_default());

    println!();
    println!(
        "the oblivious rack sprints into the shared feed until the reserve empties:\n\
         {} sprints die electrically mid-flight and finish on one core.",
        oblivious.supply_aborts
    );
    println!(
        "power-aware admission books every sprint against the feed and defers the\n\
         rest: zero electrical casualties, mean latency {:.2}x lower ({:.2} vs {:.2} ms).",
        oblivious.mean_latency_s / aware.mean_latency_s,
        aware.mean_latency_s * 1e3,
        oblivious.mean_latency_s * 1e3,
    );
    // The acceptance claims, kept honest by the example-smoke CI job.
    assert_eq!(aware.supply_aborts, 0, "power-aware must never brown out");
    assert!(
        oblivious.supply_aborts > 0,
        "oblivious must pay for blindness"
    );
    assert!(
        aware.mean_latency_s < oblivious.mean_latency_s,
        "rationing must win on mean latency: {:.5} vs {:.5}",
        aware.mean_latency_s,
        oblivious.mean_latency_s
    );
}
