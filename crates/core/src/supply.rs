//! The power-delivery side of the co-simulation loop (Section 6, wired
//! into the simulation).
//!
//! The paper's Section 6 analyzes whether a phone's electrical supply can
//! feed a 16 W sprint at all — conventional Li-ion cells cannot; hybrids
//! with an ultracapacitor can. [`PowerSupply`] brings that analysis into
//! the loop: every sampling window the
//! [`SprintSession`](crate::session::SprintSession) offers the window's
//! power draw to the supply, and a current limit or depleted store ends
//! the sprint exactly like an exhausted thermal budget (the controller
//! migrates threads to one core).
//!
//! Implementations are provided for [`sprint_powersource`]'s
//! [`Battery`], [`Ultracapacitor`] and [`HybridSupply`], for the
//! unconstrained [`IdealSupply`] (the seed behaviour), and for the
//! [`PinLimited`] wrapper that layers a package pin-count ceiling over
//! any inner supply.

use sprint_powersource::battery::{Battery, SupplyError};
use sprint_powersource::hybrid::HybridSupply;
use sprint_powersource::pins::PackagePins;
use sprint_powersource::ultracap::Ultracapacitor;

/// An electrical supply the sprint loop consults each sampling window.
pub trait PowerSupply {
    /// Draws `power_w` for `dt_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns the limiting condition *without drawing* when the demand
    /// exceeds a current limit or the remaining stored energy.
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError>;

    /// Peak power deliverable right now, watts.
    fn available_power_w(&self) -> f64;

    /// Stored energy remaining, joules (`f64::INFINITY` for unlimited
    /// sources).
    fn remaining_energy_j(&self) -> f64;

    /// Recharges during an idle interval of `dt_s` seconds, returning the
    /// energy transferred into the sprint store (joules). Sources without
    /// an inter-sprint recharge path return zero.
    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        let _ = dt_s;
        0.0
    }
}

/// The unconstrained supply: every draw succeeds. This reproduces the
/// seed's behaviour (no electrical model in the loop) and is the default
/// for [`ScenarioBuilder`](crate::session::ScenarioBuilder).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealSupply;

impl PowerSupply for IdealSupply {
    fn draw(&mut self, _power_w: f64, _dt_s: f64) -> Result<(), SupplyError> {
        Ok(())
    }

    fn available_power_w(&self) -> f64 {
        f64::INFINITY
    }

    fn remaining_energy_j(&self) -> f64 {
        f64::INFINITY
    }
}

impl PowerSupply for Battery {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        Battery::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        self.charge_j()
    }
}

impl PowerSupply for Ultracapacitor {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        Ultracapacitor::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        self.stored_j()
    }
}

impl PowerSupply for HybridSupply {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        HybridSupply::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        self.battery.charge_j() + self.sprint_capacity_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.recharge_between_sprints(dt_s)
    }
}

/// Layers a package pin-count ceiling (Section 6's 16 A / ~320-pin
/// analysis) over an inner supply: a draw must fit through the allocated
/// pins *and* be deliverable by the source behind them.
#[derive(Debug, Clone)]
pub struct PinLimited<S> {
    inner: S,
    pins: PackagePins,
    supply_v: f64,
    budget_fraction: f64,
}

impl<S: PowerSupply> PinLimited<S> {
    /// Wraps `inner` behind `pins`, delivering at `supply_v` volts with
    /// `budget_fraction` of the package's pins allocated to power.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive voltage or a fraction outside `(0, 1]`.
    pub fn new(inner: S, pins: PackagePins, supply_v: f64, budget_fraction: f64) -> Self {
        assert!(supply_v > 0.0, "supply voltage must be positive");
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "pin budget fraction must be in (0, 1]"
        );
        Self {
            inner,
            pins,
            supply_v,
            budget_fraction,
        }
    }

    /// The pin-side power ceiling, watts.
    pub fn pin_ceiling_w(&self) -> f64 {
        self.pins.max_power_w(self.supply_v, self.budget_fraction)
    }

    /// The wrapped supply.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PowerSupply> PowerSupply for PinLimited<S> {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        let ceiling = self.pin_ceiling_w();
        if power_w > ceiling {
            return Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: ceiling,
            });
        }
        self.inner.draw(power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.inner.available_power_w().min(self.pin_ceiling_w())
    }

    fn remaining_energy_j(&self) -> f64 {
        self.inner.remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.inner.idle_recharge(dt_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_supply_never_limits() {
        let mut s = IdealSupply;
        assert!(s.draw(1e9, 1e3).is_ok());
        assert_eq!(s.remaining_energy_j(), f64::INFINITY);
    }

    #[test]
    fn phone_battery_rejects_a_sprint_window() {
        let mut b = Battery::phone_li_ion();
        assert!(matches!(
            PowerSupply::draw(&mut b, 16.0, 1e-6),
            Err(SupplyError::CurrentLimit { .. })
        ));
        assert!(PowerSupply::draw(&mut b, 1.0, 1e-6).is_ok());
    }

    #[test]
    fn hybrid_sustains_windows_and_recharges() {
        let mut h = HybridSupply::phone();
        let e0 = h.remaining_energy_j();
        for _ in 0..1000 {
            PowerSupply::draw(&mut h, 16.0, 1e-3).expect("hybrid covers 16 W windows");
        }
        assert!(h.remaining_energy_j() < e0);
        assert!(h.idle_recharge(30.0) > 0.0, "battery refills the cap");
    }

    #[test]
    fn hybrid_window_draws_do_not_count_sprints() {
        let mut h = HybridSupply::phone();
        PowerSupply::draw(&mut h, 16.0, 1e-3).unwrap();
        assert_eq!(h.sprints_served(), 0);
        h.sprint(16.0, 0.1).unwrap();
        assert_eq!(h.sprints_served(), 1);
    }

    #[test]
    fn pin_limit_caps_an_otherwise_strong_source() {
        // A 1 V rail through 30% of an A4-class package: ~79 pairs -> 7.9 W.
        let mut s = PinLimited::new(IdealSupply, PackagePins::apple_a4(), 1.0, 0.3);
        assert!(s.pin_ceiling_w() < 16.0);
        assert!(matches!(
            s.draw(16.0, 1e-6),
            Err(SupplyError::CurrentLimit { .. })
        ));
        assert!(s.draw(s.pin_ceiling_w() * 0.9, 1e-6).is_ok());
    }

    #[test]
    fn pin_limit_passes_inner_errors_through() {
        let mut s = PinLimited::new(
            Battery::phone_li_ion(),
            PackagePins::qualcomm_msm8660(),
            3.7,
            0.5,
        );
        // Pins allow it (plenty at 3.7 V), but the cell's discharge limit
        // does not.
        assert!(matches!(
            s.draw(16.0, 1e-6),
            Err(SupplyError::CurrentLimit { available_w, .. }) if available_w < 11.0
        ));
    }
}
