//! Quickstart: sprint a parallel kernel and compare against sustained
//! single-core execution — the paper's baseline 16-core scenario,
//! composed through `ScenarioBuilder`.
//!
//! Run with: `cargo run --release --example quickstart`

use computational_sprinting::prelude::*;

fn run(mode_label: &str, config: SprintConfig) -> RunReport {
    // The paper's reference kernel suite; sobel at a small input keeps the
    // example fast. Phone thermal model, time-compressed 40x to match the
    // compressed workload scale (see DESIGN.md on time scaling).
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Sobel, InputSize::B, 16))
        .thermal(PhoneThermalParams::hpca().time_scaled(40.0).build())
        .config(config)
        .build();
    session.run_to_completion();
    let report = session.report();
    println!(
        "{mode_label:<22} {:>8.2} ms   {:>7.2} mJ   peak {:>5.1} C",
        report.completion_s * 1e3,
        report.energy_j * 1e3,
        report.max_junction_c
    );
    report
}

fn main() {
    println!("mode                      time        energy      junction");
    let sustained = run("sustained 1-core", SprintConfig::hpca_sustained());
    let dvfs = run("DVFS sprint (2.5x)", SprintConfig::hpca_dvfs());
    let parallel = run("parallel sprint (16c)", SprintConfig::hpca_parallel());

    println!();
    println!(
        "parallel sprint responsiveness gain: {:.1}x",
        parallel.speedup_over(sustained.completion_s)
    );
    println!(
        "DVFS sprint responsiveness gain:     {:.1}x",
        dvfs.speedup_over(sustained.completion_s)
    );
    println!(
        "parallel sprint energy overhead:     {:+.0}%",
        (parallel.energy_j / sustained.energy_j - 1.0) * 100.0
    );
}
