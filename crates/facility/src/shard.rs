//! Worker-thread sharding for rack advancement.
//!
//! A [`ClusterSession`] holds `Rc<RefCell<...>>` shared rack state and
//! is not `Send`, so sessions cannot migrate between threads. Instead,
//! each worker thread *builds* its racks from plain-data [`RackSpec`]s
//! and owns them for the whole run; the main thread drives epochs over
//! `mpsc` channels carrying only plain data (inputs in, telemetry out).
//! Workers step their racks in ascending rack index, but rack order
//! inside an epoch is immaterial: racks share no mutable state between
//! settlement barriers, which is what makes the report independent of
//! the worker count.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use sprint_cluster::{
    ClusterOutcome, ClusterReport, ClusterSession, ClusterTask, EventDrivenCluster,
};
use sprint_thermal::pool::SolverPool;

use crate::facility::RackSpec;

/// One rack's stepping core: the lockstep oracle, or the event-driven
/// core that skips idle nodes between their thermally-relevant ticks.
/// Both expose the identical window-granular protocol the settlement
/// barrier needs, and by the cluster crate's golden-equivalence
/// invariant they produce byte-identical reports — so the facility
/// digest is independent of which driver ran, not just of the worker
/// count.
pub(crate) enum RackDriver {
    /// The lockstep [`ClusterSession`] stepper (the oracle).
    Lockstep(ClusterSession),
    /// The event-heap core over the same session.
    Event(EventDrivenCluster),
}

impl RackDriver {
    fn build(spec: &RackSpec, event_driven: bool) -> Self {
        if event_driven {
            RackDriver::Event(EventDrivenCluster::new(spec.build()))
        } else {
            RackDriver::Lockstep(spec.build())
        }
    }

    fn step(&mut self) -> ClusterOutcome {
        match self {
            RackDriver::Lockstep(s) => s.step(),
            RackDriver::Event(e) => e.step(),
        }
    }

    fn session(&self) -> &ClusterSession {
        match self {
            RackDriver::Lockstep(s) => s,
            RackDriver::Event(e) => e.session(),
        }
    }

    /// Final report. `&mut` because the event core must first settle
    /// its lazy idle-rest ledgers up to the current window.
    fn report(&mut self) -> ClusterReport {
        match self {
            RackDriver::Lockstep(s) => s.report(),
            RackDriver::Event(e) => e.report(),
        }
    }

    /// Pulls every crash-retry task still waiting out its backoff off
    /// this rack, marked migrated, for the facility to re-place.
    fn drain_stranded(&mut self) -> Vec<ClusterTask> {
        match self {
            RackDriver::Lockstep(s) => s.drain_stranded_requeues(),
            RackDriver::Event(e) => e.drain_stranded_requeues(),
        }
    }

    /// Admits a routed task onto this rack as a fresh ready-queue
    /// entry (the event core also arms the wake-up tick).
    fn inject(&mut self, task: ClusterTask) {
        match self {
            RackDriver::Lockstep(s) => {
                s.inject_task(task);
            }
            RackDriver::Event(e) => {
                e.inject_task(task);
            }
        }
    }
}

/// Boundary inputs applied to one rack at the start of an epoch.
/// `None` (and an empty injection list) means "leave the knob where it
/// is" — the facility only touches a rack when a settlement actually
/// moved its value, so an uncoupled facility is bit-for-bit a set of
/// standalone racks.
#[derive(Debug, Clone, Default)]
pub(crate) struct RackInputs {
    /// New inlet-air temperature from the row airflow model, Celsius.
    pub inlet_c: Option<f64>,
    /// New live supply cap from the facility feed tier, watts.
    pub cap_w: Option<f64>,
    /// Stranded crash-retries the requeue router re-placed here,
    /// admitted before the epoch's first window.
    pub inject: Vec<ClusterTask>,
}

/// Plain-data telemetry one rack reports at the settlement barrier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RackEpochStats {
    /// Heat the rack currently injects into its grid, watts.
    pub heat_w: f64,
    /// Tasks arrived but not yet placed on a node.
    pub backlog: usize,
    /// Nodes currently holding a sprint grant.
    pub sprinting: usize,
    /// Fraction of the rack's nodes not quarantined by crashes (1.0
    /// for a healthy rack).
    pub alive_frac: f64,
    /// Whether the rack can make no further progress.
    pub terminal: bool,
}

/// Main-to-worker commands.
pub(crate) enum Command {
    /// Advance every owned rack by up to `windows` sampling windows,
    /// applying each rack's inputs first. `inputs[i]` pairs with the
    /// worker's i-th owned rack (ascending rack index).
    Advance {
        /// Windows to step this epoch.
        windows: u64,
        /// Per-owned-rack boundary inputs.
        inputs: Vec<RackInputs>,
    },
    /// Tear down: reply with every owned rack's final report.
    Finish,
}

/// Worker-to-main replies, tagged with the global rack index.
pub(crate) enum Reply {
    /// End-of-epoch telemetry for one rack, plus any stranded
    /// crash-retries drained off it for cross-rack re-placement
    /// (always empty unless the facility routes requeues).
    Epoch(usize, RackEpochStats, Vec<ClusterTask>),
    /// Final per-rack report and outcome after `Finish`.
    Final(usize, Box<ClusterReport>, ClusterOutcome),
    /// A worker died mid-run: its panic message, re-raised by the
    /// driver. Without this a surviving worker's open channel would
    /// park the settlement barrier's `recv` forever — the run must
    /// fail with the worker's diagnostic, not hang.
    Panic(String),
}

/// The worker loop: builds the owned racks (on the driver the facility
/// selected), then serves epochs until `Finish` (or the command channel
/// closes).
pub(crate) fn worker(
    specs: Vec<(usize, RackSpec)>,
    event_driven: bool,
    route_requeues: bool,
    rx: Receiver<Command>,
    tx: Sender<Reply>,
) {
    let mut racks: Vec<(usize, RackDriver, ClusterOutcome)> = specs
        .into_iter()
        .map(|(rack, spec)| {
            (
                rack,
                RackDriver::build(&spec, event_driven),
                ClusterOutcome::Running,
            )
        })
        .collect();
    // Cross-rack solver fusion: one sweep pool (sized for the widest
    // rack, post-`SPRINT_SOLVER_THREADS` override) services every rack
    // this worker owns, so a multi-threaded shard parks one set of ADI
    // workers instead of one per rack. Byte-identical at any lane
    // count, so the facility digest cannot see the sharing.
    let max_lanes = racks
        .iter()
        .map(|(_, driver, _)| driver.session().rack().with_grid(|g| g.solver_threads()))
        .max()
        .unwrap_or(1);
    if max_lanes > 1 {
        let pool = Arc::new(SolverPool::new(max_lanes));
        for (_, driver, _) in &racks {
            driver.session().rack().share_solver_pool(Arc::clone(&pool));
        }
    }
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Advance { windows, inputs } => {
                for ((rack, driver, outcome), input) in racks.iter_mut().zip(inputs) {
                    if let Some(inlet_c) = input.inlet_c {
                        driver.session().rack().set_inlet_c(inlet_c);
                    }
                    if let Some(cap_w) = input.cap_w {
                        driver
                            .session()
                            .supply()
                            .expect("facility cap settlement requires a rack supply")
                            .set_cap_w(cap_w);
                    }
                    for task in input.inject {
                        driver.inject(task);
                    }
                    for _ in 0..windows {
                        *outcome = driver.step();
                        if outcome.is_terminal() {
                            break;
                        }
                    }
                    // Requeue routing drains *after* the epoch's
                    // windows: anything still waiting out a crash-retry
                    // backoff at the barrier is re-placed by the
                    // settlement instead of retrying in place. Free
                    // (and empty) when nothing is stranded.
                    let stranded = if route_requeues {
                        driver.drain_stranded()
                    } else {
                        Vec::new()
                    };
                    let session = driver.session();
                    let stats = RackEpochStats {
                        heat_w: session.rack_heat_w(),
                        backlog: session.ready_backlog(),
                        sprinting: session.sprinting_count(),
                        alive_frac: session.alive_fraction(),
                        terminal: outcome.is_terminal(),
                    };
                    if tx.send(Reply::Epoch(*rack, stats, stranded)).is_err() {
                        return;
                    }
                }
            }
            Command::Finish => {
                for (rack, driver, outcome) in racks.iter_mut() {
                    let _ = tx.send(Reply::Final(*rack, Box::new(driver.report()), *outcome));
                }
                return;
            }
        }
    }
}
