//! The Section 6 feasibility analysis, as one queryable table.

use serde::{Deserialize, Serialize};

use crate::battery::Battery;
use crate::hybrid::HybridSupply;
use crate::pins::PackagePins;
use crate::ultracap::Ultracapacitor;

/// Verdict for one power-source option against a sprint demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceVerdict {
    /// Option name.
    pub source: String,
    /// Peak power it can deliver, watts.
    pub max_power_w: f64,
    /// Whether it covers the sprint's peak power.
    pub covers_peak: bool,
    /// Whether it covers the sprint's energy.
    pub covers_energy: bool,
    /// Mass, grams.
    pub mass_g: f64,
    /// Largest number of 1 W cores this source alone can sprint with.
    pub max_sprint_cores: u32,
}

/// Evaluates the paper's candidate sources against a sprint of
/// `power_w` × `duration_s` (16 W × 1 s in the paper).
pub fn evaluate_sources(power_w: f64, duration_s: f64) -> Vec<SourceVerdict> {
    let energy = power_w * duration_s;
    let mut out = Vec::new();

    let li_ion = Battery::phone_li_ion();
    out.push(SourceVerdict {
        source: li_ion.name().to_string(),
        max_power_w: li_ion.max_power_w(),
        covers_peak: li_ion.can_supply_w(power_w),
        covers_energy: li_ion.charge_j() >= energy,
        mass_g: li_ion.mass_g,
        max_sprint_cores: li_ion.max_power_w().floor() as u32,
    });

    let li_po = Battery::high_discharge_li_po();
    out.push(SourceVerdict {
        source: li_po.name().to_string(),
        max_power_w: li_po.max_power_w(),
        covers_peak: li_po.can_supply_w(power_w),
        covers_energy: li_po.charge_j() >= energy,
        mass_g: li_po.mass_g,
        max_sprint_cores: li_po.max_power_w().floor() as u32,
    });

    let cap = Ultracapacitor::nesscap_25f();
    out.push(SourceVerdict {
        source: "nesscap-25f-ultracap".to_string(),
        max_power_w: cap.max_power_w(),
        covers_peak: cap.max_power_w() >= power_w,
        covers_energy: cap.usable_j(1.0) >= energy,
        mass_g: cap.mass_g,
        max_sprint_cores: cap
            .max_power_w()
            .min(cap.usable_j(1.0) / duration_s)
            .floor() as u32,
    });

    let hybrid = HybridSupply::phone();
    let hybrid_peak =
        hybrid.battery.max_power_w() - hybrid.system_reserve_w + hybrid.cap.max_power_w();
    out.push(SourceVerdict {
        source: "hybrid-li-ion+ultracap".to_string(),
        max_power_w: hybrid_peak,
        covers_peak: hybrid_peak >= power_w,
        covers_energy: hybrid.sprint_capacity_j() >= energy,
        mass_g: hybrid.battery.mass_g + hybrid.cap.mass_g,
        max_sprint_cores: hybrid_peak
            .min(hybrid.sprint_capacity_j() / duration_s)
            .floor() as u32,
    });
    out
}

/// Pin-delivery feasibility for the same sprint (two package classes).
pub fn evaluate_pins(power_w: f64) -> Vec<(String, u32, f64)> {
    [
        ("apple-a4-531pin", PackagePins::apple_a4()),
        ("qualcomm-msm8660-976pin", PackagePins::qualcomm_msm8660()),
    ]
    .into_iter()
    .map(|(name, pkg)| {
        (
            name.to_string(),
            pkg.pins_needed(power_w, 1.0),
            pkg.pin_fraction(power_w, 1.0),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_verdicts_reproduce() {
        let v = evaluate_sources(16.0, 1.0);
        let find = |n: &str| v.iter().find(|s| s.source.contains(n)).unwrap();
        // Phone Li-ion: limited to fewer than ten 1 W cores.
        let li_ion = find("li-ion");
        assert!(!li_ion.covers_peak);
        assert!(li_ion.max_sprint_cores < 10);
        // High-discharge Li-Po: easily covers it.
        assert!(find("li-po").covers_peak);
        // Ultracap: covers peak and energy.
        let cap = find("ultracap");
        assert!(cap.covers_peak && cap.covers_energy);
        // Hybrid: covers it too.
        let hybrid = find("hybrid");
        assert!(hybrid.covers_peak && hybrid.covers_energy);
        assert!(hybrid.max_sprint_cores >= 16);
    }

    #[test]
    fn pin_analysis_matches_paper() {
        let pins = evaluate_pins(16.0);
        assert_eq!(pins[0].1, 320, "A4-class package needs 320 pins");
        assert!(pins[1].2 < 0.35, "976-pin package absorbs it more easily");
    }
}
