//! The Table 1 workload suite: construction, sizing and metadata.

use serde::{Deserialize, Serialize};
use sprint_archsim::machine::Machine;

use crate::disparity::DisparityWorkload;
use crate::feature::FeatureWorkload;
use crate::kmeans::KmeansWorkload;
use crate::segment::SegmentWorkload;
use crate::sobel::SobelWorkload;
use crate::texture::TextureWorkload;

/// A parallel workload that can be instantiated on a [`Machine`].
pub trait Workload: Send + Sync {
    /// Short kernel name as in Table 1 (e.g. `"sobel"`).
    fn name(&self) -> &'static str;

    /// Spawns `threads` kernel threads (and any task queues) on `machine`.
    fn setup(&self, machine: &mut Machine, threads: usize);

    /// Approximate serial work in abstract units (for reporting only).
    fn work_units(&self) -> u64;
}

/// The six kernels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Edge detection filter; parallelized OpenMP-style over rows.
    Sobel,
    /// SURF-style feature extraction (integral image + Hessian responses +
    /// descriptors), after MEVBench's `feature`.
    Feature,
    /// Partition-based clustering (Lloyd's k-means); OpenMP-style.
    Kmeans,
    /// Stereo image disparity detection (block-matching SAD), after SD-VBS.
    Disparity,
    /// Image composition (multi-layer blend with a serial placement
    /// phase), after SD-VBS's texture synthesis.
    Texture,
    /// Image feature classification (tile labeling with a serial merge),
    /// after SD-VBS's image segmentation.
    Segment,
}

impl WorkloadKind {
    /// All kernels in Table 1 order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Sobel,
        WorkloadKind::Feature,
        WorkloadKind::Kmeans,
        WorkloadKind::Disparity,
        WorkloadKind::Texture,
        WorkloadKind::Segment,
    ];

    /// Kernel name as in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Sobel => "sobel",
            WorkloadKind::Feature => "feature",
            WorkloadKind::Kmeans => "kmeans",
            WorkloadKind::Disparity => "disparity",
            WorkloadKind::Texture => "texture",
            WorkloadKind::Segment => "segment",
        }
    }

    /// Table 1 description.
    pub fn description(&self) -> &'static str {
        match self {
            WorkloadKind::Sobel => "Edge detection filter; parallelized with OpenMP",
            WorkloadKind::Feature => "Feature extraction (SURF-style), after MEVBench",
            WorkloadKind::Kmeans => "Partition based clustering; parallelized with OpenMP",
            WorkloadKind::Disparity => "Stereo image disparity detection, after SD-VBS",
            WorkloadKind::Texture => "Image composition, after SD-VBS",
            WorkloadKind::Segment => "Image feature classification, after SD-VBS",
        }
    }
}

/// Input size classes (Figure 9's A-D bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InputSize {
    /// Smallest input.
    A,
    /// Small input.
    B,
    /// Reference input (used for Figure 7).
    C,
    /// Largest input.
    D,
}

impl InputSize {
    /// All sizes in ascending order.
    pub const ALL: [InputSize; 4] = [InputSize::A, InputSize::B, InputSize::C, InputSize::D];

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            InputSize::A => "A",
            InputSize::B => "B",
            InputSize::C => "C",
            InputSize::D => "D",
        }
    }

    /// Linear scale factor relative to A (1, 2, 4, 8).
    pub fn scale(&self) -> usize {
        match self {
            InputSize::A => 1,
            InputSize::B => 2,
            InputSize::C => 4,
            InputSize::D => 8,
        }
    }
}

/// Builds a workload of the given kind and input size with the default
/// deterministic seed.
pub fn build_workload(kind: WorkloadKind, size: InputSize) -> Box<dyn Workload> {
    match kind {
        WorkloadKind::Sobel => Box::new(SobelWorkload::new(size)),
        WorkloadKind::Feature => Box::new(FeatureWorkload::new(size)),
        WorkloadKind::Kmeans => Box::new(KmeansWorkload::new(size)),
        WorkloadKind::Disparity => Box::new(DisparityWorkload::new(size)),
        WorkloadKind::Texture => Box::new(TextureWorkload::new(size)),
        WorkloadKind::Segment => Box::new(SegmentWorkload::new(size)),
    }
}

/// Builds a machine with `cores` cores and `threads` threads of the given
/// suite workload already spawned — the common first line of every
/// coupled experiment, and the natural argument to
/// `ScenarioBuilder::load` in `sprint_core`.
pub fn loaded_machine(
    kind: WorkloadKind,
    size: InputSize,
    config: sprint_archsim::config::MachineConfig,
    threads: usize,
) -> Machine {
    let workload = build_workload(kind, size);
    let mut machine = Machine::new(config);
    workload.setup(&mut machine, threads);
    machine
}

/// A workload loader closure for `ScenarioBuilder::load` in
/// `sprint_core`: spawns `threads` threads of the given suite kernel on
/// whatever machine the builder constructs.
pub fn suite_loader(
    kind: WorkloadKind,
    size: InputSize,
    threads: usize,
) -> impl FnOnce(&mut Machine) {
    move |machine| build_workload(kind, size).setup(machine, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn sizes_scale_geometrically() {
        assert_eq!(InputSize::ALL.map(|s| s.scale()), [1, 2, 4, 8]);
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in WorkloadKind::ALL {
            let w = build_workload(kind, InputSize::A);
            assert_eq!(w.name(), kind.name());
            assert!(w.work_units() > 0);
        }
    }

    #[test]
    fn loaded_machine_and_loader_agree() {
        use sprint_archsim::config::MachineConfig;
        let a = loaded_machine(
            WorkloadKind::Sobel,
            InputSize::A,
            MachineConfig::hpca().with_cores(4),
            4,
        );
        let mut b = Machine::new(MachineConfig::hpca().with_cores(4));
        suite_loader(WorkloadKind::Sobel, InputSize::A, 4)(&mut b);
        assert_eq!(a.live_threads(), b.live_threads());
        assert!(a.live_threads() > 0);
    }
}
