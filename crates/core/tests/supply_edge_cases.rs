//! Edge-case coverage for the power-delivery path: pin budgets at the
//! boundaries, hybrid draws with an exhausted capacitor, and the
//! ordering of `SupplyLimited` versus the thermal abort when both limits
//! trip in the same sampling window.

use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_archsim::program::SyntheticKernel;
use sprint_core::config::{SprintConfig, SupplyPolicy};
use sprint_core::controller::ControllerEvent;
use sprint_core::session::ScenarioBuilder;
use sprint_core::supply::{IdealSupply, PinLimited, PowerSupply};
use sprint_core::thermal_model::LumpedThermal;
use sprint_powersource::battery::{Battery, SupplyError};
use sprint_powersource::hybrid::HybridSupply;
use sprint_powersource::pins::PackagePins;

fn spawn_threads(machine: &mut Machine, threads: u64, accesses: u64) {
    for t in 0..threads {
        machine.spawn(Box::new(SyntheticKernel::new(
            32,
            accesses,
            (t + 1) << 26,
            0,
        )));
    }
}

/// A zero pin-budget *fraction* is a configuration error, rejected at
/// construction rather than silently producing a supply that can never
/// deliver anything.
#[test]
#[should_panic(expected = "pin budget fraction")]
fn zero_pin_fraction_is_rejected() {
    let _ = PinLimited::new(IdealSupply, PackagePins::apple_a4(), 1.0, 0.0);
}

/// A package so small its pin budget rounds down to zero pairs: the
/// ceiling is exactly zero watts, every positive draw fails with the
/// ceiling in the error, and a zero-watt draw still succeeds.
#[test]
fn zero_pin_ceiling_blocks_every_positive_draw() {
    let tiny = PackagePins {
        total_pins: 1,
        amps_per_pair: 0.1,
    };
    let mut s = PinLimited::new(IdealSupply, tiny, 1.0, 1.0);
    assert_eq!(s.pin_ceiling_w(), 0.0);
    assert_eq!(s.available_power_w(), 0.0);
    match s.draw(1e-6, 1e-6) {
        Err(SupplyError::CurrentLimit { available_w, .. }) => assert_eq!(available_w, 0.0),
        other => panic!("expected a zero-ceiling current limit, got {other:?}"),
    }
    assert!(s.draw(0.0, 1e-6).is_ok(), "a zero draw fits a zero ceiling");
}

/// A session behind a zero-ceiling pin budget still completes: the very
/// first window trips `SupplyLimited` and the run degrades to the
/// sustained single-core path.
#[test]
fn zero_pin_ceiling_session_degrades_but_finishes() {
    let tiny = PackagePins {
        total_pins: 1,
        amps_per_pair: 0.1,
    };
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(|m| spawn_threads(m, 16, 10_000))
        .thermal(
            sprint_thermal::phone::PhoneThermalParams::hpca()
                .time_scaled(1000.0)
                .build(),
        )
        .supply(PinLimited::new(IdealSupply, tiny, 1.0, 1.0))
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    let report = session.report();
    assert!(report.finished);
    let first_limit = report
        .events
        .iter()
        .position(|e| matches!(e, ControllerEvent::SupplyLimited { .. }))
        .expect("zero ceiling must limit the sprint");
    assert!(
        report.events[first_limit..]
            .iter()
            .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })),
        "the supply limit must end the sprint: {:?}",
        report.events
    );
}

/// With the capacitor drained below the demanded excess, a draw the
/// battery share alone covers still succeeds, while a sprint-class draw
/// fails on the empty cap — the battery's health is irrelevant to the
/// peak.
#[test]
fn hybrid_cap_exhausted_but_battery_ok() {
    let mut h = HybridSupply::phone();
    // Drain the capacitor to (almost) the regulator dropout voltage.
    while h.cap.usable_j(h.cap_min_v) > 0.2 {
        h.cap.draw(20.0, 0.05).expect("draining within cap limits");
    }
    let battery_share = h.battery.max_power_w() - h.system_reserve_w;
    assert!(
        battery_share > 1.0,
        "the phone cell covers watts-level load"
    );
    // Battery-only draw: fine.
    PowerSupply::draw(&mut h, battery_share * 0.8, 1e-3)
        .expect("battery share must carry the load with an empty cap");
    // Sprint draw: the excess must come from the cap, which is empty.
    let err = PowerSupply::draw(&mut h, 16.0, 0.5).expect_err("empty cap cannot cover a sprint");
    assert!(
        matches!(
            err,
            SupplyError::Depleted | SupplyError::CurrentLimit { .. }
        ),
        "unexpected error {err:?}"
    );
    // The failed draw must not have mutated state: retrying the
    // battery-share draw still works.
    PowerSupply::draw(&mut h, battery_share * 0.8, 1e-3).expect("state unchanged after rejection");
}

/// When one window trips *both* the electrical and the thermal limit,
/// the session consults the supply first: the event stream shows
/// `SupplyLimited` (and the migration it causes) and never the thermal
/// failsafe, because by the time the controller sees the hot junction
/// the sprint is already over.
#[test]
fn supply_limit_preempts_thermal_abort_in_the_same_window() {
    // A thermal node so small one 16-core window vaults it past Tmax,
    // and a battery that cannot feed 16 cores: both limits trip in the
    // same window (the first full-width one after the ramp).
    let run = |policy: SupplyPolicy| {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.activation_ramp_s = 0.0;
        cfg.supply_policy = policy;
        cfg.max_time_s = 200e-6; // plenty for the events, bounded runtime
        let mut session = ScenarioBuilder::new()
            .machine(MachineConfig::hpca())
            .load(|m| spawn_threads(m, 16, 1_000_000))
            .thermal(LumpedThermal::new(1e-6, 1.0, 25.0, 25.5))
            .supply(Battery::phone_li_ion())
            .config(cfg)
            .trace_capacity(0)
            .build();
        session.run_to_completion();
        session.report()
    };

    let supply_first = run(SupplyPolicy::EndSprint);
    assert!(
        supply_first.max_junction_c >= 25.5,
        "the junction must actually have hit the limit: {:.2}",
        supply_first.max_junction_c
    );
    let events = &supply_first.events;
    let limit_idx = events
        .iter()
        .position(|e| matches!(e, ControllerEvent::SupplyLimited { .. }))
        .expect("the battery must limit the first sprint window");
    assert!(
        matches!(events[limit_idx + 1], ControllerEvent::SprintEnded { .. }),
        "the supply limit migrates immediately: {events:?}"
    );
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, ControllerEvent::FailsafeThrottled { .. })),
        "the supply reaction preempts the thermal failsafe: {events:?}"
    );

    // Control: with the supply advisory-only, the *thermal* failsafe is
    // what reacts to the very same window.
    let thermal_first = run(SupplyPolicy::Ignore);
    assert!(thermal_first
        .events
        .iter()
        .any(|e| matches!(e, ControllerEvent::FailsafeThrottled { .. })));
    assert!(thermal_first
        .events
        .iter()
        .all(|e| !matches!(e, ControllerEvent::SupplyLimited { .. })));
}
