//! The event-driven cluster core: the lockstep semantics, paid only
//! where something happens.
//!
//! The paper's sprint-and-rest regime means most nodes are idle or
//! resting most of the time, yet the lockstep [`ClusterSession::step`]
//! loop touches *every* node *every* sampling window — cost scales
//! with fleet size instead of activity. [`EventDrivenCluster`]
//! restructures the same simulation as a discrete-event scheduler:
//!
//! * **Components** — task arrivals, the admission scheduler, the rack
//!   settlement leader, and each node session — each expose a
//!   `next_tick()`: the next window at which that component has a
//!   thermally- or electrically-relevant instant. Ticks live on a
//!   time-ordered binary heap keyed `(window, component kind, node
//!   index)`, so simultaneous events pop in a deterministic order:
//!   time first, then component kind (arrivals before scheduler before
//!   settlement before nodes — the lockstep phase order), then node
//!   index.
//! * **The settlement component ticks every window.** The per-window
//!   grid integration is bitwise irreducible (the ADI sweeps have no
//!   fixed point, and the peak-junction sample reads every window), so
//!   node 0 — the lockstep leader whose advance settles the shared
//!   grid and supply pool — executes every window. What the event core
//!   elides is everything *around* the physics: per-node rest calls,
//!   the per-window temperature snapshot, and the scheduler passes on
//!   windows where they are provably no-ops.
//! * **Idle nodes sleep.** A node with no task and no pending tick
//!   costs nothing per window. Its per-window `rest` effects on the
//!   *shared* state are already in place (core power zero, recorded
//!   idle draw — both idempotent, written by its retirement tick), and
//!   its *private* rest effects (the idle-clock accumulation, the
//!   per-window supply recharge) are replayed verbatim — same calls,
//!   same order, same floating-point sequence — when the node is next
//!   observed: before any window that may assign it work, and at
//!   terminal/report time. The replay is cache-hot and branch-free, so
//!   a sleeping fleet costs a fraction of the lockstep loop.
//! * **The scheduler ticks only when it could act.** Assignment is a
//!   no-op while the ready queue is empty; the shed passes are no-ops
//!   while no node holds or occupies a sprint slot. The scheduler
//!   component therefore schedules its next tick only while `ready`,
//!   the grant rotation, or a ramping/sprinting node exists — exactly
//!   the conditions under which the lockstep passes can observe or
//!   mutate anything.
//!
//! # The lockstep path is the golden oracle
//!
//! The lockstep stepper remains intact and authoritative: for any
//! configuration, the event-driven run must reproduce the lockstep
//! [`ClusterReport`] **digest byte-for-byte**
//! ([`ClusterReport::digest`]). The equivalence tests in
//! `tests/event_core.rs` (and the facility-level digests across worker
//! thread counts) pin this invariant; seeded event-order fuzzing
//! ([`EventDrivenCluster::with_event_seed`]) additionally shows the
//! report is independent of heap insertion order, hardening the
//! shed-order determinism story.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sprint_core::controller::SprintState;

use crate::cluster::{ClusterOutcome, ClusterReport, ClusterSession};
use crate::queue::ClusterTask;
use crate::rack::RackThermal;
use crate::supply::RackSupply;

/// Component kinds, in tie-break order within one window — the
/// lockstep phase order: faults fire before anything reads a sensor,
/// arrivals feed the scheduler, the scheduler precedes settlement,
/// settlement (node 0, the grid/pool leader) precedes the remaining
/// node sessions. (Kind values order the heap only — they never touch
/// simulated state, so renumbering is digest-neutral.)
const KIND_FAULT: u8 = 0;
const KIND_ARRIVALS: u8 = 1;
const KIND_SCHEDULER: u8 = 2;
const KIND_SETTLEMENT: u8 = 3;
const KIND_NODE: u8 = 4;

/// One scheduled tick: `(window, component kind, node index)`. The
/// tuple's lexicographic order *is* the deterministic event order.
type Tick = (u64, u8, u32);

/// The discrete-event cluster core. Wraps a [`ClusterSession`] and
/// drives it window-accurate but activity-proportional; see the module
/// docs for the component model and the golden-oracle invariant.
pub struct EventDrivenCluster {
    inner: ClusterSession,
    /// Min-heap of pending ticks (`Reverse` flips `BinaryHeap`'s max
    /// order).
    heap: BinaryHeap<Reverse<Tick>>,
    /// Windows fully executed per node. Node 0 is always current; a
    /// sleeping node's deficit is replayed by [`Self::catch_up_all`].
    done: Vec<u64>,
    /// Per-window scratch: nodes with a pending tick this window, in
    /// ascending index order (the heap pops same-window node ticks
    /// sorted, and a node holds at most one).
    due_nodes: Vec<u32>,
    /// Nodes currently holding a task, ascending. Membership is exact
    /// between windows: a task appears only via `assign_ready` (after
    /// which the list is rebuilt) and vanishes only inside the owning
    /// node's own `run_node_window` (observed where it runs). This is
    /// what lets a quiet window cost O(active) instead of O(fleet).
    busy: Vec<u32>,
    /// Push-order fuzz seed: when set, each window's new ticks are
    /// inserted into the heap in a seeded-random order. Tick keys are
    /// unique, so the pop order — and therefore the run — must not
    /// change; the fuzz tests pin that.
    event_seed: Option<u64>,
    /// Per-window scratch for new ticks (reused; no per-step
    /// allocation once warm).
    scratch: Vec<Tick>,
}

impl std::fmt::Debug for EventDrivenCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventDrivenCluster")
            .field("windows", &self.inner.windows)
            .field("heap", &self.heap.len())
            .field("session", &self.inner)
            .finish()
    }
}

impl EventDrivenCluster {
    /// Wraps a (freshly built) lockstep session in the event-driven
    /// core.
    ///
    /// # Panics
    ///
    /// Panics if the session has already been stepped: the event core
    /// must own the run from window 0 to schedule the initial ticks.
    pub fn new(inner: ClusterSession) -> Self {
        assert_eq!(
            inner.windows, 0,
            "the event-driven core must own the run from window 0"
        );
        let nodes = inner.nodes.len();
        let mut this = Self {
            inner,
            heap: BinaryHeap::new(),
            done: vec![0; nodes],
            due_nodes: Vec::new(),
            busy: Vec::new(),
            event_seed: None,
            scratch: Vec::new(),
        };
        this.prime();
        this
    }

    /// [`Self::new`], with each window's heap insertions performed in a
    /// `seed`-derived random order. Pure fuzz instrumentation: tick
    /// keys are unique, so the heap's pop order — and the whole run —
    /// is identical for every seed; the event-order fuzz tests assert
    /// exactly that.
    pub fn with_event_seed(inner: ClusterSession, seed: u64) -> Self {
        let mut this = Self::new(inner);
        // Re-prime so even the initial ticks go through the shuffle.
        this.event_seed = Some(seed);
        this.heap.clear();
        this.prime();
        this
    }

    /// Schedules the initial ticks: the settlement leader at window 0,
    /// every node's first rest at window 0 (recording its idle draw on
    /// the shared pool — the one rest effect later settlements read),
    /// the arrivals component at the first task's window, and the
    /// fault component at the plan's first stamped window.
    fn prime(&mut self) {
        let mut ticks = std::mem::take(&mut self.scratch);
        ticks.push((0, KIND_SETTLEMENT, 0u32));
        for i in 1..self.inner.nodes.len() {
            ticks.push((0, KIND_NODE, i as u32));
        }
        if let Some(w) = self.next_arrival_tick() {
            ticks.push((w, KIND_ARRIVALS, 0));
        }
        if let Some(w) = self.next_fault_tick() {
            ticks.push((w, KIND_FAULT, 0));
        }
        self.push_ticks(&mut ticks);
        self.scratch = ticks;
    }

    /// The fault component's `next_tick()`: the next unapplied plan
    /// event's stamped window. Like arrivals, the component re-arms
    /// itself each time it fires, so the chain visits every stamped
    /// window exactly once.
    fn next_fault_tick(&self) -> Option<u64> {
        let plan = self.inner.fault_plan.as_ref()?;
        plan.events.get(self.inner.next_fault).map(|e| e.window)
    }

    /// The arrivals component's `next_tick()`: the first window whose
    /// lockstep clock reaches the next pending task, i.e. the smallest
    /// `W` with `W * window_s >= arrival_s` — computed against the
    /// exact predicate the arrivals pop uses, so the tick can neither
    /// miss the task nor fire a window early.
    fn next_arrival_tick(&self) -> Option<u64> {
        let arrival = self
            .inner
            .arrival_order
            .get(self.inner.next_arrival)
            .map(|&task| {
                let arrival_s = self.inner.tasks[task].arrival_s;
                let w = self.inner.window_s;
                let mut k = ((arrival_s / w).ceil()).max(0.0) as u64;
                while (k as f64) * w < arrival_s {
                    k += 1;
                }
                while k > 0 && ((k - 1) as f64) * w >= arrival_s {
                    k -= 1;
                }
                k
            });
        // Crash-retry requeues enter the ready queue through the same
        // component (their due is already a window).
        let requeue = self
            .inner
            .requeue
            .get(self.inner.next_requeue)
            .map(|&(due, _, _)| due);
        match (arrival, requeue) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (a, r) => a.or(r),
        }
    }

    /// The scheduler component's `next_tick()` condition: whether the
    /// lockstep scheduler passes could observe or mutate anything next
    /// window. Assignment acts only on a non-empty ready queue; the
    /// shed passes act only on grant-rotation entries or
    /// ramping/sprinting nodes (on anything less they are provably
    /// side-effect-free, including the rotation `retain`).
    fn scheduler_armed(&self) -> bool {
        !self.inner.ready.is_empty()
            || !self.inner.grant_order.is_empty()
            || self.busy.iter().any(|&i| {
                let n = &self.inner.nodes[i as usize];
                n.task.is_some()
                    && matches!(
                        n.session.state(),
                        SprintState::Ramping | SprintState::Sprinting
                    )
            })
    }

    /// Inserts new ticks, draining the buffer; under a fuzz seed the
    /// insertion order is seeded-random first.
    fn push_ticks(&mut self, ticks: &mut Vec<Tick>) {
        if let Some(seed) = self.event_seed {
            // Fisher-Yates off an LCG keyed by seed and the current
            // window, so every window shuffles differently.
            let mut state = seed ^ self.inner.windows.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for i in (1..ticks.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                ticks.swap(i, j);
            }
        }
        for &t in ticks.iter() {
            self.heap.push(Reverse(t));
        }
        ticks.clear();
    }

    /// Replays every sleeping node's outstanding rest windows so all
    /// nodes have executed windows `0..target`. The replay reproduces
    /// the *same* per-window `rest` sequence the lockstep loop would
    /// have made — batched through `rest_many`, whose contract is
    /// bit-identical to the loop — and the shared-state legs of those
    /// windows are pure followers (the settlement leader already
    /// carried the grid and pool past them), so the bit pattern of
    /// every touched float is identical to the lockstep run's. The
    /// batching is what makes sleeping cheap: a follower window costs
    /// a couple of adds instead of two `RefCell` round-trips.
    fn catch_up_all(&mut self, target: u64) {
        for i in 1..self.inner.nodes.len() {
            debug_assert!(self.done[i] <= target);
            if self.done[i] < target {
                debug_assert!(
                    self.inner.nodes[i].task.is_none(),
                    "a busy node can never sleep"
                );
                let deficit = target - self.done[i];
                self.inner.nodes[i]
                    .session
                    .rest_many(self.inner.window_s, deficit);
                self.done[i] = target;
            }
        }
    }

    /// Advances the cluster by one sampling window — same contract and
    /// same outcome sequence as the lockstep [`ClusterSession::step`],
    /// with sleeping nodes' ledgers settled lazily. On a terminal
    /// outcome every node is caught up, so the session state (and its
    /// report) is byte-identical to the lockstep run's.
    pub fn step(&mut self) -> ClusterOutcome {
        if self.inner.drained() {
            self.catch_up_all(self.inner.windows);
            return ClusterOutcome::Drained;
        }
        if self.inner.windows >= self.inner.max_windows {
            self.catch_up_all(self.inner.windows);
            return ClusterOutcome::TimeLimit;
        }
        // Last window's cancellation scratches were consumed through
        // the end of that step (cancel-window rests, retirement ticks);
        // clear them before anything this window can read them.
        self.inner.cancelled_scratch.clear();
        self.inner.cancelled_after_run.clear();
        let w = self.inner.windows;
        // Drain this window's ticks in deterministic (kind, node)
        // order.
        let mut fault_due = false;
        let mut arrivals_due = false;
        let mut scheduler_due = false;
        self.due_nodes.clear();
        while let Some(&Reverse((tw, kind, node))) = self.heap.peek() {
            if tw != w {
                debug_assert!(tw > w, "a tick was scheduled in the past");
                break;
            }
            self.heap.pop();
            match kind {
                KIND_FAULT => fault_due = true,
                KIND_ARRIVALS => arrivals_due = true,
                KIND_SCHEDULER => scheduler_due = true,
                KIND_SETTLEMENT => {}
                _ => {
                    // Same-window node ticks pop in ascending index
                    // order (the heap key ends in the node index), so
                    // the due list is sorted by construction.
                    debug_assert!(self.due_nodes.last().is_none_or(|&p| p < node));
                    self.due_nodes.push(node);
                }
            }
        }
        // Fault phase: apply this window's stamped faults before
        // anything reads a sensor — the lockstep order. The failsafe
        // may preempt a sprint and a crash may free a node, so a fault
        // window always runs the full scheduler phase below (its
        // retain/shed passes are exactly what lockstep runs).
        if fault_due {
            self.inner.apply_faults();
        }
        let now = self.inner.now_s();
        // Scheduler phase — exactly the lockstep passes, run only on
        // windows where they could act (see `scheduler_armed`).
        let scheduling = fault_due || arrivals_due || scheduler_due;
        if scheduling {
            let mut temps = std::mem::take(&mut self.inner.temps_buf);
            self.inner.rack.node_temps_c_into(&mut temps);
            self.inner.temps_buf = temps;
            self.inner.mask_faulted_temps();
            if arrivals_due {
                self.inner.pop_arrivals(now);
                self.inner.pop_requeues();
            }
            if !self.inner.ready.is_empty() {
                // Assignment may start work on any idle node: bring
                // the whole fleet current before the scheduler looks.
                self.catch_up_all(w);
                self.inner.assign_ready(now);
            }
            self.inner.shed_pass(now);
            self.inner.power_shed_pass(now);
        }
        // Node phase, in index order. Node 0 is the settlement leader
        // and executes every window (its advance settles the shared
        // grid and supply pool); other nodes execute when busy or when
        // a tick (their retirement rest) is due.
        let mut ticks = std::mem::take(&mut self.scratch);
        let nodes = self.inner.nodes.len();
        if scheduling {
            // A scheduler window may have assigned tasks anywhere:
            // scan the fleet (the temperature snapshot above already
            // paid O(fleet) this window) and rebuild the busy list.
            self.busy.clear();
            let mut di = 0;
            let mut ci = 0;
            for i in 0..nodes {
                let due = self.due_nodes.get(di) == Some(&(i as u32));
                if due {
                    di += 1;
                }
                // A node that crashed *while busy* this window was
                // current at the window start and must still execute:
                // its first rest zeroes the core power its sprint was
                // injecting, before the next settlement integrates the
                // grid. (It then sleeps like any idle node.)
                let crashed = fault_due && self.inner.crashed_scratch.get(ci) == Some(&(i as u32));
                if crashed {
                    ci += 1;
                }
                // A losing replica cancelled this window by a
                // lower-indexed winner has not had its turn yet: it
                // still executes this window's rest (the lockstep loop
                // reaches it task-less), zeroing the core power its
                // copy was injecting before the next settlement.
                // Entries appear mid-loop (the winner runs first), so
                // this is a membership scan, not a cursor.
                let cancelled = self.inner.cancelled_scratch.contains(&(i as u32));
                let busy = self.inner.nodes[i].task.is_some();
                if i == 0 || busy || due || crashed || cancelled {
                    debug_assert_eq!(self.done[i], w, "an executing node must be current");
                    self.inner.run_node_window(i);
                    self.done[i] = w + 1;
                    // A node that just went idle owes one more real
                    // tick: its first rest zeroes its core power and
                    // records its idle draw on the pool — shared-state
                    // effects the next settlement reads, so they
                    // cannot be deferred.
                    if i > 0 && busy && self.inner.nodes[i].task.is_none() {
                        ticks.push((w + 1, KIND_NODE, i as u32));
                    }
                }
                if self.inner.nodes[i].task.is_some() {
                    self.busy.push(i as u32);
                }
            }
        } else {
            // Quiet window: no assignment was possible, so the busy
            // list is exact — run node 0 plus the busy and due nodes,
            // merged in ascending index order. This is the same
            // execution set (and order) the full scan would pick:
            // every skipped node is idle with no pending tick.
            debug_assert_eq!(self.done[0], w, "the leader must be current");
            let busy0 = self.inner.nodes[0].task.is_some();
            debug_assert_eq!(busy0, self.busy.first() == Some(&0));
            self.inner.run_node_window(0);
            self.done[0] = w + 1;
            let mut retired = busy0 && self.inner.nodes[0].task.is_none();
            let mut bi = usize::from(busy0);
            let mut di = 0;
            while bi < self.busy.len() || di < self.due_nodes.len() {
                let nb = self.busy.get(bi).copied().unwrap_or(u32::MAX);
                let nd = self.due_nodes.get(di).copied().unwrap_or(u32::MAX);
                // Disjoint on a quiet window (a due node is resting),
                // but take both cursors on a tie anyway.
                let i = nb.min(nd) as usize;
                bi += usize::from(nb <= nd);
                di += usize::from(nd <= nb);
                debug_assert_eq!(self.done[i], w, "an executing node must be current");
                let busy = self.inner.nodes[i].task.is_some();
                // A busy-list entry whose task vanished mid-window is
                // a loser a winner cancelled moments ago — its rest
                // below is exactly the lockstep behaviour; anything
                // else is a genuine desync.
                debug_assert!(
                    busy == (nb <= nd)
                        || self.inner.cancelled_scratch.contains(&(i as u32))
                        || self.inner.cancelled_after_run.contains(&(i as u32)),
                    "busy list out of sync"
                );
                self.inner.run_node_window(i);
                self.done[i] = w + 1;
                if busy && self.inner.nodes[i].task.is_none() {
                    ticks.push((w + 1, KIND_NODE, i as u32));
                    retired = true;
                }
            }
            if retired {
                let fleet = &self.inner.nodes;
                self.busy.retain(|&i| fleet[i as usize].task.is_some());
            }
        }
        // Cancellation epilogue: a loser cancelled *after* it had
        // already run this window (lower index than its winner) is
        // still on the busy list and owes a retirement rest next
        // window — the rest lockstep gives it at `w + 1`, which zeroes
        // its core power and records its idle draw before that
        // window's settlement. Losers cancelled *before* their turn
        // already rested this window through the cancelled-scratch
        // path and sleep like any other idle node.
        if !self.inner.cancelled_after_run.is_empty() {
            let fleet = &self.inner.nodes;
            self.busy.retain(|&i| fleet[i as usize].task.is_some());
            for &j in &self.inner.cancelled_after_run {
                ticks.push((w + 1, KIND_NODE, j));
            }
        }
        self.inner.windows = w + 1;
        let junction = self.inner.rack.junction_temp_c();
        if junction > self.inner.peak_junction_c {
            self.inner.peak_junction_c = junction;
        }
        // Schedule next window's ticks.
        if self.inner.drained() {
            ticks.clear();
            self.scratch = ticks;
            self.catch_up_all(self.inner.windows);
            return ClusterOutcome::Drained;
        }
        ticks.push((w + 1, KIND_SETTLEMENT, 0));
        if self.scheduler_armed() {
            ticks.push((w + 1, KIND_SCHEDULER, 0));
        }
        // A fault window may have scheduled a crash-retry requeue,
        // which arrives through the arrivals component: re-arm it on
        // fault windows too (a duplicate arrivals tick is harmless —
        // a spurious scheduler phase replays exactly the lockstep
        // window).
        if arrivals_due || fault_due {
            if let Some(aw) = self.next_arrival_tick() {
                ticks.push((aw.max(w + 1), KIND_ARRIVALS, 0));
            }
        }
        if fault_due {
            if let Some(fw) = self.next_fault_tick() {
                ticks.push((fw.max(w + 1), KIND_FAULT, 0));
            }
        }
        self.push_ticks(&mut ticks);
        self.scratch = ticks;
        ClusterOutcome::Running
    }

    /// Steps until the queue drains or the time limit trips.
    pub fn run_to_completion(&mut self) -> ClusterOutcome {
        loop {
            let outcome = self.step();
            if outcome.is_terminal() {
                return outcome;
            }
        }
    }

    /// Builds the cluster summary for the run so far. Takes `&mut
    /// self` because sleeping nodes' rest ledgers are settled first —
    /// the report is byte-identical to the lockstep run's at the same
    /// window count.
    pub fn report(&mut self) -> ClusterReport {
        self.catch_up_all(self.inner.windows);
        self.inner.report()
    }

    /// Settles every sleeping node and hands back the inner session,
    /// indistinguishable from a lockstep session stepped to the same
    /// window.
    pub fn into_session(mut self) -> ClusterSession {
        self.catch_up_all(self.inner.windows);
        self.inner
    }

    /// The wrapped session (read-only; sleeping nodes may be behind on
    /// their private rest ledgers until the next catch-up point).
    pub fn session(&self) -> &ClusterSession {
        &self.inner
    }

    /// [`ClusterSession::drain_stranded_requeues`], event-aware: any
    /// arrivals ticks already armed for the drained entries' due
    /// windows become no-ops (a spurious scheduler phase replays
    /// exactly the lockstep window, which runs its scheduler every
    /// window anyway), so draining between steps preserves the
    /// golden-oracle digest equivalence.
    pub fn drain_stranded_requeues(&mut self) -> Vec<ClusterTask> {
        self.inner.drain_stranded_requeues()
    }

    /// [`ClusterSession::inject_task`], event-aware: arms a scheduler
    /// tick at the current window so the admission pass observes the
    /// new ready entry immediately — without it a fully-sleeping fleet
    /// (e.g. a rack that had drained before the facility routed a
    /// stranded task here) would never wake to run the task.
    pub fn inject_task(&mut self, task: ClusterTask) -> usize {
        let id = self.inner.inject_task(task);
        let mut ticks = std::mem::take(&mut self.scratch);
        ticks.push((self.inner.windows, KIND_SCHEDULER, 0));
        self.push_ticks(&mut ticks);
        self.scratch = ticks;
        id
    }

    /// Sampling windows stepped so far.
    pub fn windows(&self) -> u64 {
        self.inner.windows
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// True once every submitted task has been resolved (completed,
    /// or failed after exhausting its crash retries).
    pub fn drained(&self) -> bool {
        self.inner.drained()
    }

    /// The shared rack.
    pub fn rack(&self) -> &RackThermal {
        self.inner.rack()
    }

    /// The shared electrical pool, when the cluster runs on one.
    pub fn supply(&self) -> Option<&RackSupply> {
        self.inner.supply()
    }

    /// Total heat the rack currently injects into its grid, watts.
    pub fn rack_heat_w(&self) -> f64 {
        self.inner.rack_heat_w()
    }

    /// Tasks arrived but not yet placed on a node.
    pub fn ready_backlog(&self) -> usize {
        self.inner.ready_backlog()
    }

    /// Nodes currently holding a sprint grant.
    pub fn sprinting_count(&self) -> usize {
        self.inner.sprinting_count()
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.inner.completed()
    }
}
