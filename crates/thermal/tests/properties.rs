//! Property-based tests for the thermal crate's core invariants.

use proptest::prelude::*;
use sprint_thermal::circuit::ThermalNetwork;
use sprint_thermal::node::{PhaseChange, StorageNode};
use sprint_thermal::phone::PhoneThermalParams;
use sprint_thermal::solver::TransientSolver;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Energy conservation: injected power equals stored plus absorbed
    /// energy for arbitrary RC ladders and power levels.
    #[test]
    fn energy_conserved_in_random_ladders(
        caps in prop::collection::vec(0.05f64..5.0, 1..5),
        resistances in prop::collection::vec(0.5f64..50.0, 1..5),
        power in 0.0f64..20.0,
        duration in 0.1f64..5.0,
    ) {
        let mut net = ThermalNetwork::new();
        let mut prev = None;
        let mut first = None;
        for (i, c) in caps.iter().enumerate() {
            let id = net.add_storage(StorageNode::sensible_only(format!("n{i}"), *c, 25.0));
            if let Some(p) = prev {
                let r = resistances[(i - 1) % resistances.len()];
                net.connect(p, id, r);
            } else {
                first = Some(id);
            }
            prev = Some(id);
        }
        let amb = net.add_boundary("amb", 25.0);
        net.connect(prev.unwrap(), amb, resistances[0]);
        net.set_power(first.unwrap(), power);

        let mut solver = TransientSolver::new(net);
        let e0 = solver.network().total_stored_enthalpy_j();
        solver.advance(duration);
        let stored = solver.network().total_stored_enthalpy_j() - e0;
        let absorbed = solver.network().boundary_absorbed_j();
        let injected = power * duration;
        prop_assert!(
            (stored + absorbed - injected).abs() <= 1e-6 * injected.max(1.0),
            "stored {stored} + absorbed {absorbed} != injected {injected}"
        );
    }

    /// Temperatures never overshoot the driving extremes: with a single
    /// source P at the head of a ladder, every node stays within
    /// [ambient, ambient + P * R_eq_head] at all times.
    #[test]
    fn no_overshoot_beyond_steady_state(
        cap in 0.05f64..2.0,
        r1 in 0.5f64..20.0,
        r2 in 0.5f64..20.0,
        power in 0.1f64..10.0,
    ) {
        let mut net = ThermalNetwork::new();
        let a = net.add_storage(StorageNode::sensible_only("a", cap, 25.0));
        let b = net.add_storage(StorageNode::sensible_only("b", cap * 2.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(a, b, r1);
        net.connect(b, amb, r2);
        net.set_power(a, power);
        let tmax = 25.0 + power * (r1 + r2);
        let mut solver = TransientSolver::new(net);
        for _ in 0..50 {
            solver.advance(0.2);
            let ta = solver.network().temperature_c(a);
            let tb = solver.network().temperature_c(b);
            prop_assert!(ta <= tmax + 1e-6 && ta >= 25.0 - 1e-6, "ta {ta} out of range");
            prop_assert!(tb <= tmax + 1e-6 && tb >= 25.0 - 1e-6, "tb {tb} out of range");
            prop_assert!(ta >= tb - 1e-6, "heat must flow downhill: {ta} < {tb}");
        }
    }

    /// Melt fraction is always within [0, 1] and monotone while heating at
    /// constant positive net power.
    #[test]
    fn melt_fraction_monotone_under_heating(
        latent in 0.5f64..20.0,
        cap in 0.01f64..0.5,
        power in 2.0f64..30.0,
    ) {
        let mut net = ThermalNetwork::new();
        let pcm = net.add_storage(StorageNode::with_phase_change(
            "pcm",
            cap,
            PhaseChange {
                melt_temp_c: 60.0,
                latent_heat_j: latent,
                liquid_heat_capacity_j_per_k: cap,
            },
            25.0,
        ));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(pcm, amb, 100.0); // weak leak: net heating stays positive
        net.set_power(pcm, power);
        let mut solver = TransientSolver::new(net);
        let mut last = 0.0;
        for _ in 0..200 {
            solver.advance(latent / power / 50.0);
            let f = solver.network().melt_fraction(pcm);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f + 1e-12 >= last, "melt fraction decreased: {f} < {last}");
            last = f;
        }
    }

    /// TDP scales inversely with added series resistance: a more resistive
    /// package always sustains less power.
    #[test]
    fn tdp_monotone_in_package_resistance(extra in 0.0f64..50.0) {
        let base = PhoneThermalParams::hpca().build().tdp_w();
        let mut p = PhoneThermalParams::hpca();
        p.r_pcm_case_k_per_w += extra;
        let modified = p.build().tdp_w();
        prop_assert!(modified <= base + 1e-9);
    }

    /// Time scaling by k compresses simulated sprint duration by ~k while
    /// preserving TDP exactly.
    #[test]
    fn time_scaling_invariants(k in 2.0f64..50.0) {
        let a = PhoneThermalParams::hpca();
        let b = PhoneThermalParams::hpca().time_scaled(k);
        let pa = a.build();
        let pb = b.build();
        prop_assert!((pa.tdp_w() - pb.tdp_w()).abs() < 1e-9);
        prop_assert!((pa.max_sprint_power_w() - pb.max_sprint_power_w()).abs() < 1e-9);
        prop_assert!(
            (pa.sprint_energy_budget_j() / pb.sprint_energy_budget_j() - k).abs() < 0.05 * k
        );
    }
}
