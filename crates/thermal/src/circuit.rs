//! Thermal-equivalent circuit networks (Figure 3 of the paper).
//!
//! Heat flow is modelled as current in an electrical-equivalent circuit:
//! temperature is voltage, power is current, thermal resistance (K/W) is
//! resistance and heat capacity (J/K) is capacitance to the reference.
//! Storage nodes hold enthalpy; boundary nodes (the ambient) hold a fixed
//! temperature and absorb whatever flows into them.

use serde::{Deserialize, Serialize};

use crate::node::StorageNode;

/// Identifier of a node within a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node in the network.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Node {
    Storage(StorageNode),
    Boundary { name: String, temp_c: f64 },
}

impl Node {
    pub(crate) fn temperature_c(&self) -> f64 {
        match self {
            Node::Storage(s) => s.temperature_c(),
            Node::Boundary { temp_c, .. } => *temp_c,
        }
    }

    pub(crate) fn name(&self) -> &str {
        match self {
            Node::Storage(s) => s.name(),
            Node::Boundary { name, .. } => name,
        }
    }
}

/// A thermal resistance connecting two nodes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct Edge {
    pub a: usize,
    pub b: usize,
    /// Thermal resistance in K/W.
    pub resistance_k_per_w: f64,
}

/// A lumped thermal RC network with power injection.
///
/// # Examples
///
/// ```
/// use sprint_thermal::circuit::ThermalNetwork;
/// use sprint_thermal::node::StorageNode;
///
/// let mut net = ThermalNetwork::new();
/// let junction = net.add_storage(StorageNode::sensible_only("junction", 0.02, 25.0));
/// let ambient = net.add_boundary("ambient", 25.0);
/// net.connect(junction, ambient, 35.0); // 35 K/W to ambient
/// net.set_power(junction, 1.0); // dissipate 1 W
/// let t = net.steady_state();
/// assert!((t[junction.index()] - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ThermalNetwork {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    /// Power injected at each node, watts.
    pub(crate) power_w: Vec<f64>,
    /// Cumulative energy absorbed by boundary nodes, joules (bookkeeping for
    /// conservation checks).
    pub(crate) boundary_absorbed_j: f64,
}

impl ThermalNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a heat-storing node, returning its id.
    pub fn add_storage(&mut self, node: StorageNode) -> NodeId {
        self.nodes.push(Node::Storage(node));
        self.power_w.push(0.0);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a fixed-temperature boundary node (e.g. the ambient).
    pub fn add_boundary(&mut self, name: impl Into<String>, temp_c: f64) -> NodeId {
        self.nodes.push(Node::Boundary {
            name: name.into(),
            temp_c,
        });
        self.power_w.push(0.0);
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a thermal resistance in K/W.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not strictly positive or the ids are
    /// equal or out of range.
    pub fn connect(&mut self, a: NodeId, b: NodeId, resistance_k_per_w: f64) {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "node id out of range"
        );
        assert_ne!(a, b, "cannot connect a node to itself");
        assert!(
            resistance_k_per_w.is_finite() && resistance_k_per_w > 0.0,
            "thermal resistance must be positive"
        );
        self.edges.push(Edge {
            a: a.0,
            b: b.0,
            resistance_k_per_w,
        });
    }

    /// Sets the power (W) injected at a node. Overwrites any previous value.
    ///
    /// # Panics
    ///
    /// Panics on boundary nodes — injecting power into a fixed-temperature
    /// node silently disappears, which is almost always a modelling bug.
    pub fn set_power(&mut self, node: NodeId, watts: f64) {
        assert!(
            matches!(self.nodes[node.0], Node::Storage(_)),
            "cannot inject power into a boundary node"
        );
        assert!(watts.is_finite(), "power must be finite");
        self.power_w[node.0] = watts;
    }

    /// Power currently injected at a node, watts.
    pub fn power(&self, node: NodeId) -> f64 {
        self.power_w[node.0]
    }

    /// Number of nodes (storage + boundary).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Temperature of a node in Celsius.
    pub fn temperature_c(&self, node: NodeId) -> f64 {
        self.nodes[node.0].temperature_c()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.nodes[node.0].name()
    }

    /// Melt fraction of a node (zero for non-PCM nodes).
    pub fn melt_fraction(&self, node: NodeId) -> f64 {
        match &self.nodes[node.0] {
            Node::Storage(s) => s.melt_fraction(),
            Node::Boundary { .. } => 0.0,
        }
    }

    /// Mutable access to a storage node (e.g. to reset its temperature).
    ///
    /// # Panics
    ///
    /// Panics if the node is a boundary node.
    pub fn storage_mut(&mut self, node: NodeId) -> &mut StorageNode {
        match &mut self.nodes[node.0] {
            Node::Storage(s) => s,
            Node::Boundary { .. } => panic!("node is a boundary, not storage"),
        }
    }

    /// Shared access to a storage node.
    ///
    /// # Panics
    ///
    /// Panics if the node is a boundary node.
    pub fn storage(&self, node: NodeId) -> &StorageNode {
        match &self.nodes[node.0] {
            Node::Storage(s) => s,
            Node::Boundary { .. } => panic!("node is a boundary, not storage"),
        }
    }

    /// Total enthalpy of all storage nodes, joules. Together with
    /// [`Self::boundary_absorbed_j`] this lets callers verify energy
    /// conservation across a simulation.
    pub fn total_stored_enthalpy_j(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Storage(s) => Some(s.enthalpy_j()),
                Node::Boundary { .. } => None,
            })
            .sum()
    }

    /// Cumulative energy (J) absorbed by boundary nodes since construction.
    pub fn boundary_absorbed_j(&self) -> f64 {
        self.boundary_absorbed_j
    }

    /// Net heat flow (W) into each node from edges plus injected power,
    /// evaluated at the current temperatures.
    pub(crate) fn net_flows(&self, flows: &mut [f64]) {
        for (i, f) in flows.iter_mut().enumerate() {
            *f = self.power_w[i];
        }
        for e in &self.edges {
            let ta = self.nodes[e.a].temperature_c();
            let tb = self.nodes[e.b].temperature_c();
            let q = (ta - tb) / e.resistance_k_per_w; // W from a to b
            flows[e.a] -= q;
            flows[e.b] += q;
        }
    }

    /// Solves for the steady-state temperatures with the current power
    /// injection, returning one temperature per node (boundary nodes keep
    /// their fixed temperature). The network state is not modified.
    ///
    /// # Panics
    ///
    /// Panics if the network has no boundary node reachable from some
    /// storage node (the system would be singular: temperatures diverge).
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.nodes.len();
        // Unknowns: storage node temperatures. Boundary temps are knowns.
        let mut index = vec![usize::MAX; n];
        let mut unknowns = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node, Node::Storage(_)) {
                index[i] = unknowns;
                unknowns += 1;
            }
        }
        let mut a = vec![0.0f64; unknowns * unknowns];
        let mut b = vec![0.0f64; unknowns];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Storage(_) = node {
                b[index[i]] += self.power_w[i];
            }
        }
        for e in &self.edges {
            let g = 1.0 / e.resistance_k_per_w;
            for (x, y) in [(e.a, e.b), (e.b, e.a)] {
                if index[x] != usize::MAX {
                    let r = index[x];
                    a[r * unknowns + r] += g;
                    if index[y] != usize::MAX {
                        a[r * unknowns + index[y]] -= g;
                    } else {
                        b[r] += g * self.nodes[y].temperature_c();
                    }
                }
            }
        }
        let t = solve_dense(&mut a, &mut b, unknowns);
        let mut out = Vec::with_capacity(n);
        for (i, node) in self.nodes.iter().enumerate() {
            if index[i] == usize::MAX {
                out.push(node.temperature_c());
            } else {
                out.push(t[index[i]]);
            }
        }
        out
    }

    /// Thermal resistance (K/W) from `from` to the set of boundary nodes:
    /// inject 1 W at `from` (only), solve steady state, and report the
    /// temperature rise above the (power-weighted) boundary temperature.
    ///
    /// For a single ambient this is the equivalent resistance `R_eq` that
    /// determines TDP via `TDP = (Tlimit - Tambient) / R_eq`.
    pub fn equivalent_resistance_to_ambient(&self, from: NodeId) -> f64 {
        let mut probe = self.clone();
        for p in probe.power_w.iter_mut() {
            *p = 0.0;
        }
        probe.set_power(from, 1.0);
        let t = probe.steady_state();
        // Reference: minimum boundary temperature (single-ambient networks
        // have exactly one).
        let ambient = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Boundary { temp_c, .. } => Some(*temp_c),
                Node::Storage(_) => None,
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            ambient.is_finite(),
            "network has no boundary node; equivalent resistance undefined"
        );
        t[from.0] - ambient
    }
}

/// Solves the dense linear system `A x = b` in place via Gaussian
/// elimination with partial pivoting. `a` is row-major `n x n`.
///
/// # Panics
///
/// Panics if the matrix is singular to working precision.
pub(crate) fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        assert!(
            best > 1e-300,
            "singular thermal system (unreachable boundary?)"
        );
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let d = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::StorageNode;

    #[test]
    fn steady_state_single_resistor() {
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(j, amb, 10.0);
        net.set_power(j, 2.0);
        let t = net.steady_state();
        assert!((t[j.index()] - 45.0).abs() < 1e-9);
        assert!((t[amb.index()] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_two_hop_chain() {
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let c = net.add_storage(StorageNode::sensible_only("c", 1.0, 25.0));
        let amb = net.add_boundary("amb", 20.0);
        net.connect(j, c, 5.0);
        net.connect(c, amb, 15.0);
        net.set_power(j, 1.0);
        let t = net.steady_state();
        assert!((t[c.index()] - 35.0).abs() < 1e-9);
        assert!((t[j.index()] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_parallel_paths() {
        // Two parallel 20 K/W paths = 10 K/W equivalent.
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(j, amb, 20.0);
        net.connect(j, amb, 20.0);
        net.set_power(j, 1.0);
        let t = net.steady_state();
        assert!((t[j.index()] - 35.0).abs() < 1e-9);
        assert!((net.equivalent_resistance_to_ambient(j) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn equivalent_resistance_ignores_existing_power() {
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(j, amb, 33.0);
        net.set_power(j, 5.0);
        assert!((net.equivalent_resistance_to_ambient(j) - 33.0).abs() < 1e-9);
    }

    #[test]
    fn net_flows_balance_between_nodes() {
        let mut net = ThermalNetwork::new();
        let a = net.add_storage(StorageNode::sensible_only("a", 1.0, 50.0));
        let b = net.add_storage(StorageNode::sensible_only("b", 1.0, 30.0));
        net.connect(a, b, 4.0);
        let mut flows = vec![0.0; 2];
        net.net_flows(&mut flows);
        // 20 K across 4 K/W = 5 W from a to b.
        assert!((flows[a.index()] + 5.0).abs() < 1e-12);
        assert!((flows[b.index()] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "boundary node")]
    fn power_into_boundary_rejected() {
        let mut net = ThermalNetwork::new();
        let _j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.set_power(amb, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", 1.0, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(j, amb, 0.0);
    }
}
