//! Grid-backend figure: lumped vs HotSpot-style grid sprinting, and the
//! hotspot-aware core-count throttle vs the paper's hard abort.
//!
//! The lumped phone model sees one junction temperature, so a 16 W
//! sprint rides the PCM melt plateau comfortably below the 70 C limit
//! until the energy budget runs out. The grid backend maps per-core
//! power onto the floorplan: active cores form a hotspot several
//! degrees above the die mean, the hottest cell reaches the limit while
//! the average is still fine, and a hard-aborting controller loses most
//! of the sprint. Shedding cores as the hotspot approaches the limit
//! (`HotspotPolicy::ShedCores`) keeps a narrower sprint alive for the
//! rest of the budget instead.

use sprint_core::config::{HotspotPolicy, SprintConfig};
use sprint_core::controller::ControllerEvent;
use sprint_core::session::ScenarioBuilder;
use sprint_thermal::grid::GridThermalParams;
use sprint_thermal::phone::PhoneThermalParams;
use sprint_workloads::suite::{suite_loader, InputSize, WorkloadKind};

use crate::output::{Csv, TextTable};

/// Thermal time compression for the grid figure (the grid's hotspot
/// dynamics are fast, so a deeper compression than the harness default
/// keeps the lumped budget in play too).
pub const GRID_COMPRESS: f64 = 600.0;

struct Row {
    label: &'static str,
    sprint_end_ms: f64,
    completion_ms: f64,
    max_junction_c: f64,
    peak_gradient_k: f64,
    sheds: usize,
}

fn run_grid(label: &'static str, hotspot: HotspotPolicy) -> Row {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.hotspot = hotspot;
    let mut session = ScenarioBuilder::new()
        .load(suite_loader(WorkloadKind::Sobel, InputSize::C, 16))
        .thermal(
            GridThermalParams::hpca_like()
                .time_scaled(GRID_COMPRESS)
                .build(),
        )
        .config(cfg)
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    let report = session.report();
    Row {
        label,
        sprint_end_ms: report.sprint_end_s.unwrap_or(report.completion_s) * 1e3,
        completion_ms: report.completion_s * 1e3,
        max_junction_c: report.max_junction_c,
        peak_gradient_k: session.thermal().peak_hotspot_gradient_k(),
        sheds: report
            .events
            .iter()
            .filter(|e| matches!(e, ControllerEvent::HotspotShed { .. }))
            .count(),
    }
}

fn run_lumped(label: &'static str) -> Row {
    let mut session = ScenarioBuilder::new()
        .load(suite_loader(WorkloadKind::Sobel, InputSize::C, 16))
        .thermal(
            PhoneThermalParams::hpca()
                .time_scaled(GRID_COMPRESS)
                .build(),
        )
        .config(SprintConfig::hpca_parallel())
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    let report = session.report();
    Row {
        label,
        sprint_end_ms: report.sprint_end_s.unwrap_or(report.completion_s) * 1e3,
        completion_ms: report.completion_s * 1e3,
        max_junction_c: report.max_junction_c,
        peak_gradient_k: 0.0, // a lumped model cannot represent a gradient
        sheds: 0,
    }
}

/// The grid figure: three runs of the same 16-thread sobel burst.
pub fn fig_grid() -> String {
    let rows = [
        run_lumped("lumped-hard-abort"),
        run_grid("grid-hard-abort", HotspotPolicy::HardAbort),
        run_grid(
            "grid-shed-cores",
            HotspotPolicy::ShedCores {
                start_headroom_k: 3.0,
                min_cores: 4,
            },
        ),
    ];
    let mut out =
        String::from("Grid backend — hotspot-gated sprinting (16 W burst, 4x4 core floorplan)\n");
    let mut table = TextTable::new();
    table.row(&[
        &"backend/policy",
        &"sprint end ms",
        &"completion ms",
        &"max junction C",
        &"peak gradient K",
        &"sheds",
    ]);
    let mut csv = Csv::new(
        "fig_grid",
        &[
            "config",
            "sprint_end_ms",
            "completion_ms",
            "max_junction_c",
            "peak_gradient_k",
            "shed_events",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.label,
            &format!("{:.2}", r.sprint_end_ms),
            &format!("{:.2}", r.completion_ms),
            &format!("{:.1}", r.max_junction_c),
            &format!("{:.1}", r.peak_gradient_k),
            &r.sheds,
        ]);
        csv.row(&[
            &r.label,
            &format!("{:.3}", r.sprint_end_ms),
            &format!("{:.3}", r.completion_ms),
            &format!("{:.2}", r.max_junction_c),
            &format!("{:.2}", r.peak_gradient_k),
            &r.sheds,
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "the grid's hotspot ends a hard-abort sprint {:.1}x earlier than the lumped\n\
         model believes possible; shedding cores instead stretches the sprint {:.1}x\n\
         and finishes the task {:.1}x sooner than the hard abort.\n",
        rows[0].sprint_end_ms / rows[1].sprint_end_ms,
        rows[2].sprint_end_ms / rows[1].sprint_end_ms,
        rows[1].completion_ms / rows[2].completion_ms,
    ));
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_policy_outlasts_hard_abort() {
        let abort = run_grid("abort", HotspotPolicy::HardAbort);
        let shed = run_grid(
            "shed",
            HotspotPolicy::ShedCores {
                start_headroom_k: 3.0,
                min_cores: 4,
            },
        );
        assert!(
            shed.sprint_end_ms > abort.sprint_end_ms * 1.5,
            "shedding must extend the sprint: {:.2} vs {:.2} ms",
            shed.sprint_end_ms,
            abort.sprint_end_ms
        );
        assert!(shed.sheds >= 1, "the throttle must actually shed");
        assert!(
            abort.peak_gradient_k > 3.0,
            "the grid must show a multi-degree gradient, got {:.2}",
            abort.peak_gradient_k
        );
    }
}
