//! The evaluation workload suite of *Computational Sprinting* (Table 1).
//!
//! Six vision/image-analysis kernels "inspired by camera-based search",
//! re-implemented from their algorithm descriptions (SD-VBS / MEVBench
//! lineage) as *trace-emitting programs* for [`sprint_archsim`]: each
//! kernel computes natively on deterministic synthetic inputs (so control
//! flow, convergence and feature counts are data-dependent) while emitting
//! the corresponding instruction/address stream at cache-line granularity.
//!
//! | Kernel | Parallel structure | Scaling behaviour (paper) |
//! |---|---|---|
//! | [`sobel`] | rows, OpenMP-style | near-linear to 64 cores |
//! | [`feature`] | phases + task queue | memory-bandwidth limited |
//! | [`kmeans`] | points + reduction | near-linear to 64 cores |
//! | [`disparity`] | rows x disparities | memory-bandwidth limited |
//! | [`texture`] | rows + serial seam pass | parallelism limited |
//! | [`segment`] | tiles + serial merge | parallelism limited (~6.6x) |
//!
//! # Quick start
//!
//! ```
//! use sprint_archsim::{Machine, MachineConfig};
//! use sprint_workloads::suite::{build_workload, InputSize, WorkloadKind};
//!
//! let workload = build_workload(WorkloadKind::Sobel, InputSize::A);
//! let mut machine = Machine::new(MachineConfig::hpca().with_cores(4));
//! workload.setup(&mut machine, 4);
//! while !machine.all_done() {
//!     machine.run_window(1_000_000);
//! }
//! println!("done in {:.3} ms", machine.time_s() * 1e3);
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod disparity;
pub mod emit;
pub mod feature;
pub mod kmeans;
pub mod partition;
pub mod segment;
pub mod sobel;
pub mod suite;
pub mod texture;
pub mod traffic;

pub use suite::{build_workload, loaded_machine, suite_loader, InputSize, Workload, WorkloadKind};
