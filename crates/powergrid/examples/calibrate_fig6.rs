//! Calibration helper: prints the Figure 6 headline numbers.

use sprint_powergrid::activation::{ActivationExperiment, ActivationSchedule};

fn main() {
    for (name, schedule, horizon) in [
        ("abrupt", ActivationSchedule::Simultaneous, 40e-6),
        (
            "ramp 1.28us",
            ActivationSchedule::LinearRamp { total_s: 1.28e-6 },
            40e-6,
        ),
        (
            "ramp 128us",
            ActivationSchedule::LinearRamp { total_s: 128e-6 },
            300e-6,
        ),
    ] {
        let mut exp = ActivationExperiment::hpca(schedule);
        exp.horizon_s = horizon;
        let r = exp.run().unwrap();
        println!(
            "{name:12} min={:.4} V ({:.2}% nominal) settle_v={:.4} V droop={:.1} mV settle_t={:.2} us violated={}",
            r.report.min_v,
            100.0 * r.report.min_fraction_of_nominal(),
            r.report.settle_v,
            r.report.droop_v() * 1e3,
            r.report.settle_time_s * 1e6,
            r.report.violated
        );
    }
}
