//! Seeded open-arrival traffic for cluster- and facility-scale studies.
//!
//! The rack and facility experiments need arrival streams that look like
//! datacenter front-end load rather than a fixed batch: a *diurnal* rate
//! curve (request rate swings over the day), *heavy-tailed* service
//! demand (most requests are small, a few are 8x the work), and *bursty
//! fan-in* (a scatter-gather tier dumping a correlated clump of requests
//! on one rack at once). This module generates such streams
//! deterministically from a single `u64` seed, so every study — and the
//! golden tests that pin them — replays the exact same trace on every
//! run and every thread count.
//!
//! # Model
//!
//! Arrivals are the superposition of two seeded processes:
//!
//! 1. **Base traffic**: a non-homogeneous Poisson process sampled by
//!    thinning, with sinusoidal rate
//!    `rate(t) = base_rate_hz * (1 + diurnal_amplitude * sin(2π (t /
//!    diurnal_period_s + diurnal_phase)))`.
//! 2. **Bursts**: a homogeneous Poisson process of burst *events* at
//!    [`burst_rate_hz`]; each event drops [`burst_size`] extra arrivals
//!    spread uniformly over the following [`burst_span_s`] — the fan-in
//!    clump.
//!
//! Each arrival independently draws an [`InputSize`] from the
//! heavy-tailed [`size_weights`] distribution (sizes A/B/C/D carry
//! 1/2/4/8x the serial work). The stream is truncated to exactly
//! [`tasks`] arrivals, sorted by arrival time.
//!
//! Determinism: the base and burst processes use two independent
//! generators derived from the seed, so each stream is a fixed function
//! of `(seed, params)` regardless of how many arrivals the other
//! contributes, and the final stable sort breaks (measure-zero) time
//! ties by generation order.
//!
//! [`burst_rate_hz`]: TrafficParams::burst_rate_hz
//! [`burst_size`]: TrafficParams::burst_size
//! [`burst_span_s`]: TrafficParams::burst_span_s
//! [`size_weights`]: TrafficParams::size_weights
//! [`tasks`]: TrafficParams::tasks

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::suite::{InputSize, WorkloadKind};

/// One generated arrival: a kernel invocation hitting the queue at
/// `arrival_s`. Plain data — the cluster/facility layers map it onto
/// their own task types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time, seconds from the start of the stream.
    pub arrival_s: f64,
    /// Which Table 1 kernel the request runs.
    pub kind: WorkloadKind,
    /// Input size class (the heavy-tailed work multiplier).
    pub size: InputSize,
    /// Threads the request asks for.
    pub threads: usize,
    /// True when the arrival came from a fan-in burst rather than the
    /// diurnal base process.
    pub burst: bool,
}

/// Parameters of the seeded traffic generator. See the module docs for
/// the process model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficParams {
    /// Seed for the whole stream; same seed + same params = same trace.
    pub seed: u64,
    /// Exact number of arrivals to emit.
    pub tasks: usize,
    /// Mean rate of the base process, Hz (before diurnal modulation).
    pub base_rate_hz: f64,
    /// Relative swing of the diurnal curve in `[0, 1)`: 0 is a flat
    /// Poisson stream, 0.5 swings between 0.5x and 1.5x the base rate.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal curve, seconds (a simulated "day").
    pub diurnal_period_s: f64,
    /// Phase offset of the diurnal curve, in fractions of a period.
    pub diurnal_phase: f64,
    /// Rate of fan-in burst events, Hz (0 disables bursts).
    pub burst_rate_hz: f64,
    /// Extra arrivals each burst event injects.
    pub burst_size: usize,
    /// Window after the event over which its arrivals spread, seconds.
    pub burst_span_s: f64,
    /// Unnormalised draw weights for sizes A/B/C/D — the heavy tail.
    pub size_weights: [f64; 4],
    /// Kernel every request runs (the studies sweep load, not kernel).
    pub kind: WorkloadKind,
    /// Threads per request.
    pub threads: usize,
}

impl TrafficParams {
    /// A web-serving-like default: almost all requests are size A with
    /// a thin heavy tail of B/C/D, a +/-40% diurnal swing, and
    /// occasional 8-wide fan-in bursts. `base_rate_hz` is left for the
    /// caller — it is the load knob every study sweeps.
    pub fn frontend(seed: u64, tasks: usize, base_rate_hz: f64) -> Self {
        Self {
            seed,
            tasks,
            base_rate_hz,
            diurnal_amplitude: 0.4,
            diurnal_period_s: 0.2,
            diurnal_phase: 0.75,
            burst_rate_hz: base_rate_hz / 64.0,
            burst_size: 8,
            burst_span_s: 100e-6,
            size_weights: [0.96, 0.03, 0.009, 0.001],
            kind: WorkloadKind::Sobel,
            threads: 16,
        }
    }

    /// The instantaneous base-process rate at time `t`, Hz.
    pub fn rate_hz(&self, t_s: f64) -> f64 {
        let phase = std::f64::consts::TAU * (t_s / self.diurnal_period_s + self.diurnal_phase);
        self.base_rate_hz * (1.0 + self.diurnal_amplitude * phase.sin())
    }

    /// Mean total arrival rate (base plus bursts), Hz — the sizing
    /// figure capacity planning compares against rack throughput.
    pub fn mean_rate_hz(&self) -> f64 {
        self.base_rate_hz + self.burst_rate_hz * self.burst_size as f64
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive base rate or task count, an amplitude
    /// outside `[0, 1)`, a non-positive diurnal period, a negative
    /// burst rate or span, or size weights that are negative or all
    /// zero.
    pub fn validate(&self) {
        assert!(self.tasks > 0, "traffic must emit at least one arrival");
        assert!(
            self.base_rate_hz > 0.0 && self.base_rate_hz.is_finite(),
            "base rate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1): the thinned rate may not go negative"
        );
        assert!(
            self.diurnal_period_s > 0.0,
            "diurnal period must be positive"
        );
        assert!(
            self.burst_rate_hz >= 0.0 && self.burst_span_s >= 0.0,
            "burst rate and span must be non-negative"
        );
        assert!(
            self.size_weights.iter().all(|&w| w >= 0.0)
                && self.size_weights.iter().sum::<f64>() > 0.0,
            "size weights must be non-negative and not all zero"
        );
        assert!(
            self.threads > 0,
            "requests must ask for at least one thread"
        );
    }

    /// Generates the arrival stream: exactly [`tasks`](Self::tasks)
    /// arrivals in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`validate`](Self::validate).
    pub fn generate(&self) -> Vec<Arrival> {
        self.validate();
        // Independent generators per process: the base stream is a
        // fixed function of the seed no matter how many arrivals the
        // burst process contributes, and vice versa.
        let mut base_rng = StdRng::seed_from_u64(self.seed);
        let mut burst_rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);

        // Base NHPP by thinning at the envelope rate.
        let lambda_max = self.base_rate_hz * (1.0 + self.diurnal_amplitude);
        let mut base = Vec::with_capacity(self.tasks);
        let mut t = 0.0f64;
        while base.len() < self.tasks {
            t += exp_sample(&mut base_rng, lambda_max);
            if base_rng.gen_range(0.0..1.0) * lambda_max <= self.rate_hz(t) {
                let size = draw_size(&mut base_rng, &self.size_weights);
                base.push(self.arrival(t, size, false));
            }
        }
        let horizon_s = t;

        // Burst events over the same horizon.
        let mut arrivals = base;
        if self.burst_rate_hz > 0.0 && self.burst_size > 0 {
            let mut event_t = 0.0f64;
            loop {
                event_t += exp_sample(&mut burst_rng, self.burst_rate_hz);
                if event_t > horizon_s {
                    break;
                }
                for _ in 0..self.burst_size {
                    let offset = if self.burst_span_s > 0.0 {
                        burst_rng.gen_range(0.0..self.burst_span_s)
                    } else {
                        0.0
                    };
                    let size = draw_size(&mut burst_rng, &self.size_weights);
                    arrivals.push(self.arrival(event_t + offset, size, true));
                }
            }
        }

        // Stable sort keeps generation order on (measure-zero) ties.
        arrivals.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        arrivals.truncate(self.tasks);
        arrivals
    }

    fn arrival(&self, t_s: f64, size: InputSize, burst: bool) -> Arrival {
        Arrival {
            arrival_s: t_s,
            kind: self.kind,
            size,
            threads: self.threads,
            burst,
        }
    }
}

/// One exponential inter-arrival gap at `rate_hz`, via inversion.
fn exp_sample(rng: &mut StdRng, rate_hz: f64) -> f64 {
    // gen_range(0.0..1.0) never returns 1.0, so ln(1 - u) is finite.
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate_hz
}

/// Draws an input size from the unnormalised weight table.
fn draw_size(rng: &mut StdRng, weights: &[f64; 4]) -> InputSize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (size, &w) in InputSize::ALL.iter().zip(weights) {
        if u < w {
            return *size;
        }
        u -= w;
    }
    InputSize::D
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_sorted_sized_and_exact() {
        let params = TrafficParams::frontend(11, 500, 20_000.0);
        let stream = params.generate();
        assert_eq!(stream.len(), 500);
        for pair in stream.windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        assert!(stream.iter().all(|a| a.arrival_s > 0.0));
        // The heavy tail is present but thin.
        let small = stream.iter().filter(|a| a.size == InputSize::A).count();
        assert!(small > 400 && small < 500, "A-share off: {small}/500");
        assert!(stream.iter().any(|a| a.burst), "bursts must appear");
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let params = TrafficParams::frontend(7, 200, 10_000.0);
        let a = params.generate();
        let b = params.generate();
        assert_eq!(a, b);
        let mut other = params.clone();
        other.seed = 8;
        assert_ne!(a, other.generate());
    }

    #[test]
    fn flat_stream_has_no_bursts_when_disabled() {
        let mut params = TrafficParams::frontend(3, 300, 10_000.0);
        params.burst_rate_hz = 0.0;
        params.diurnal_amplitude = 0.0;
        let stream = params.generate();
        assert_eq!(stream.len(), 300);
        assert!(stream.iter().all(|a| !a.burst));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn full_swing_amplitude_is_rejected() {
        let mut params = TrafficParams::frontend(1, 10, 1_000.0);
        params.diurnal_amplitude = 1.0;
        params.validate();
    }
}
