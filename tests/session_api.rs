//! Integration tests for the steppable, backend-generic session API:
//! equivalence with the one-shot compat path, and the three composed
//! scenarios the redesign exists to express — the paper's single 16-core
//! sprint, repeated bursts with rest pacing, and an electrically-limited
//! sprint that aborts through the `PowerSupply` trait.

use computational_sprinting::prelude::*;

fn fast_thermal(limited: bool) -> PhoneThermal {
    let p = if limited {
        PhoneThermalParams::limited()
    } else {
        PhoneThermalParams::hpca()
    };
    p.time_scaled(15.0).build()
}

/// Scenario 1 (paper baseline): a single 16-core sprint driven window by
/// window through `step()` produces the *identical* report to the
/// original consuming `SprintSystem::run()`.
#[test]
fn stepped_session_equals_one_shot_run() {
    for (kind, limited) in [
        (WorkloadKind::Sobel, false),
        (WorkloadKind::Feature, false),
        (WorkloadKind::Disparity, true),
    ] {
        let one_shot = SprintSystem::new(
            loaded_machine(kind, InputSize::A, MachineConfig::hpca(), 16),
            fast_thermal(limited),
            SprintConfig::hpca_parallel(),
        )
        .run();

        let mut session = ScenarioBuilder::new()
            .machine(MachineConfig::hpca())
            .load(suite_loader(kind, InputSize::A, 16))
            .thermal(fast_thermal(limited))
            .config(SprintConfig::hpca_parallel())
            .build();
        let mut steps = 0u64;
        while session.step() == StepOutcome::Running {
            steps += 1;
        }
        let stepped = session.report();

        assert!(steps > 0);
        assert_eq!(stepped.completion_s, one_shot.completion_s, "{kind:?}");
        assert_eq!(stepped.energy_j, one_shot.energy_j, "{kind:?}");
        assert_eq!(stepped.instructions, one_shot.instructions, "{kind:?}");
        assert_eq!(stepped.sprint_end_s, one_shot.sprint_end_s, "{kind:?}");
        assert_eq!(stepped.max_junction_c, one_shot.max_junction_c, "{kind:?}");
        assert_eq!(stepped.finished, one_shot.finished, "{kind:?}");
        assert_eq!(stepped.events, one_shot.events, "{kind:?}");
        assert_eq!(stepped.trace, one_shot.trace, "{kind:?}");
    }
}

/// Scenario 2: repeated bursts with rest pacing on one persistent
/// session. Back-to-back bursts see a depleted budget and run slower;
/// after a long rest the PCM refreezes and full-speed sprinting returns.
#[test]
fn repeated_bursts_recover_with_rest() {
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .thermal(fast_thermal(true))
        .config(SprintConfig::hpca_parallel())
        .trace_capacity(0)
        .build();

    let run_burst = |session: &mut SprintSession, rest_s: f64| -> (f64, usize) {
        session.rest(rest_s);
        suite_loader(WorkloadKind::Disparity, InputSize::A, 16)(session.machine_mut());
        session.begin_burst();
        let t0 = session.now_s();
        let e0 = session.events().len();
        assert_eq!(session.run_to_completion(), StepOutcome::Finished);
        (session.now_s() - t0, session.events().len() - e0)
    };

    // Burst 0 warms the caches and spends most of the sprint budget.
    let (cold, _) = run_burst(&mut session, 0.0);
    // A back-to-back burst finds a depleted budget: the sprint truncates
    // and most of the task crawls on one core.
    let (back_to_back, _) = run_burst(&mut session, 0.0);
    // After a long rest (≈ 15 s at real scale) the PCM refreezes and the
    // full sprint returns.
    let (rested, _) = run_burst(&mut session, 1.0);
    assert!(
        back_to_back > cold * 2.0,
        "a burst against a hot package must be much slower: {back_to_back:.5} vs {cold:.5}"
    );
    assert!(
        rested < back_to_back * 0.5,
        "rest must restore sprint capacity: {rested:.5} vs {back_to_back:.5}"
    );
    // The truncated burst must show the budget-exhaustion migration.
    assert!(session
        .events()
        .iter()
        .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })));
    // Session time includes the rests; the machine only ran while stepping.
    assert!(session.now_s() > session.machine().time_s());
}

/// Scenario 3: a current-limited supply ends the sprint through the
/// `PowerSupply` trait — the phone Li-ion cell cannot feed 16 cores
/// (Section 6), so the run degrades to sustained single-core pace.
#[test]
fn current_limited_supply_terminates_sprint() {
    let report_with = |supply_limited: bool| -> RunReport {
        let builder = ScenarioBuilder::new()
            .machine(MachineConfig::hpca())
            .load(suite_loader(WorkloadKind::Sobel, InputSize::A, 16))
            .thermal(fast_thermal(false))
            .config(SprintConfig::hpca_parallel())
            .trace_capacity(0);
        if supply_limited {
            let mut s = builder.supply(Battery::phone_li_ion()).build();
            s.run_to_completion();
            s.report()
        } else {
            let mut s = builder.build();
            s.run_to_completion();
            s.report()
        }
    };
    let unconstrained = report_with(false);
    let starved = report_with(true);

    assert!(unconstrained.finished && starved.finished);
    assert!(
        starved
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::SupplyLimited { .. })),
        "the battery's current limit must end the sprint: {:?}",
        starved.events
    );
    let end = starved
        .sprint_end_s
        .expect("sprint must have been cut short");
    assert!(end < starved.completion_s * 0.5);
    assert!(
        starved.completion_s > unconstrained.completion_s * 2.0,
        "losing the sprint must cost real time: {:.5} vs {:.5}",
        starved.completion_s,
        unconstrained.completion_s
    );
}

/// The hybrid battery + ultracapacitor supply carries the same sprint the
/// bare cell cannot — Section 6's feasibility argument inside the loop.
#[test]
fn hybrid_supply_carries_the_sprint() {
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Sobel, InputSize::A, 16))
        .thermal(fast_thermal(false))
        .supply(HybridSupply::phone())
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    let report = session.report();
    assert!(report.finished);
    assert!(report
        .events
        .iter()
        .all(|e| !matches!(e, ControllerEvent::SupplyLimited { .. })));
}

/// A pin-count ceiling (Section 6's 320-pin analysis) clamps a sprint even
/// when the source behind the pins is unlimited.
#[test]
fn pin_budget_clamps_an_unlimited_source() {
    // 30% of an A4-class package at 1 V: ~7.9 W — under the 16 W sprint.
    let pins = PinLimited::new(IdealSupply, PackagePins::apple_a4(), 1.0, 0.3);
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Sobel, InputSize::A, 16))
        .thermal(fast_thermal(false))
        .supply(pins)
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    assert!(session
        .events()
        .iter()
        .any(|e| matches!(e, ControllerEvent::SupplyLimited { .. })));
}

/// Backend equivalence: a 1x1-cell-per-layer `GridThermal` is the same
/// RC chain as the (board-less) phone package, so both must track the
/// same junction trajectory through a full sprint-and-rest trace —
/// heat-up, melt plateau, refreeze and the sustained tail.
#[test]
fn one_cell_grid_tracks_the_lumped_phone() {
    let mut phone_params = PhoneThermalParams::hpca();
    phone_params.board_path = None;
    let mut phone = phone_params.clone().build();
    let mut grid = GridThermalParams::phone_equivalent(&phone_params).build();

    let mut worst = 0.0f64;
    let mut worst_melt = 0.0f64;
    // 16 W sprint past the melt plateau, a long rest that refreezes the
    // PCM, then a sustained 1 W tail.
    for (power, duration) in [(16.0, 1.2), (0.0, 30.0), (1.0, 10.0)] {
        phone.set_chip_power_w(power);
        grid.set_chip_power_w(power);
        let steps = (duration / 0.05) as usize;
        for _ in 0..steps {
            phone.advance(0.05);
            grid.advance(0.05);
            worst = worst.max((phone.junction_temp_c() - grid.junction_temp_c()).abs());
            worst_melt = worst_melt.max((phone.melt_fraction() - grid.melt_fraction()).abs());
        }
    }
    assert!(
        worst < 0.5,
        "1x1 grid junction must track the lumped phone within 0.5 K, worst {worst:.3} K"
    );
    assert!(
        worst_melt < 0.05,
        "melt fractions must agree, worst gap {worst_melt:.4}"
    );
    // The scalar properties the controller consumes agree too.
    assert!(
        (phone.tdp_w() - (60.0 - 25.0) / grid.params().series_resistance_k_per_w()).abs() < 0.05
    );
    assert!((phone.sprint_energy_budget_j() - grid.sprint_energy_budget_j()).abs() < 1.5);
}

/// The hotspot story end-to-end: on the grid backend the same sprint
/// either hard-aborts when the hottest cell trips the failsafe, or —
/// with the core-count throttle — sheds width and keeps sprinting
/// longer. A lumped backend cannot see the difference at all.
#[test]
fn grid_session_shed_policy_outlasts_hard_abort() {
    let run = |policy: HotspotPolicy| {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.hotspot = policy;
        let mut session = ScenarioBuilder::new()
            .machine(MachineConfig::hpca())
            .load(suite_loader(WorkloadKind::Sobel, InputSize::C, 16))
            .thermal(GridThermalParams::hpca_like().time_scaled(600.0).build())
            .config(cfg)
            .trace_capacity(0)
            .build();
        session.run_to_completion();
        let gradient = session.thermal().peak_hotspot_gradient_k();
        (session.report(), gradient)
    };

    let (abort, abort_gradient) = run(HotspotPolicy::HardAbort);
    let (shed, _) = run(HotspotPolicy::ShedCores {
        start_headroom_k: 3.0,
        min_cores: 4,
    });
    assert!(abort.finished && shed.finished);
    assert!(
        abort_gradient > 3.0,
        "the floorplan must produce a multi-degree gradient: {abort_gradient:.2} K"
    );
    let abort_end = abort.sprint_end_s.expect("the hotspot must end the sprint");
    let shed_end = shed.sprint_end_s.unwrap_or(shed.completion_s);
    assert!(
        shed_end > abort_end * 1.2,
        "shedding must extend the sprint: {shed_end:.6} vs {abort_end:.6}"
    );
    assert!(
        shed.events
            .iter()
            .any(|e| matches!(e, ControllerEvent::HotspotShed { .. })),
        "the throttle must have shed cores: {:?}",
        shed.events
    );
    assert!(
        shed.completion_s < abort.completion_s,
        "a longer (narrower) sprint must finish the task sooner: {:.6} vs {:.6}",
        shed.completion_s,
        abort.completion_s
    );
}

/// The session is generic over the thermal backend: the same scenario
/// composes against the non-phone `LumpedThermal` server node.
#[test]
fn session_runs_on_a_non_phone_backend() {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 100.0;
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Kmeans, InputSize::A, 16))
        .thermal(LumpedThermal::server_heatsink())
        .config(cfg)
        .trace_capacity(0)
        .build();
    assert_eq!(session.run_to_completion(), StepOutcome::Finished);
    let report = session.report();
    assert!(report.finished);
    assert!(report.max_junction_c <= 85.0);
}

/// Solver plumbing end-to-end: the same hotspot-gated sprint session on
/// the ADI grid backend reproduces the explicit backend's controller
/// decisions — sprint end, shed count and peak junction — because the
/// two solvers agree to well under the controller's decision margins.
#[test]
fn adi_grid_session_matches_explicit_grid_session() {
    let run = |solver: GridSolver| {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.hotspot = HotspotPolicy::ShedCores {
            start_headroom_k: 3.0,
            min_cores: 4,
        };
        let mut session = ScenarioBuilder::new()
            .machine(MachineConfig::hpca())
            .load(suite_loader(WorkloadKind::Sobel, InputSize::C, 16))
            .thermal(
                GridThermalParams::hpca_like()
                    .with_solver(solver)
                    .time_scaled(600.0)
                    .build(),
            )
            .config(cfg)
            .trace_capacity(0)
            .build();
        session.run_to_completion();
        session.report()
    };
    let explicit = run(GridSolver::Explicit);
    let adi = run(GridSolver::Adi);
    assert!(explicit.finished && adi.finished);
    let ex_end = explicit.sprint_end_s.unwrap_or(explicit.completion_s);
    let adi_end = adi.sprint_end_s.unwrap_or(adi.completion_s);
    assert!(
        (ex_end - adi_end).abs() <= 0.05 * ex_end.max(adi_end),
        "sprint ends must agree within 5%: explicit {ex_end:.6} vs adi {adi_end:.6}"
    );
    assert!(
        (explicit.max_junction_c - adi.max_junction_c).abs() < 0.25,
        "peak junctions must agree: {:.3} vs {:.3}",
        explicit.max_junction_c,
        adi.max_junction_c
    );
    let sheds = |r: &RunReport| {
        r.events
            .iter()
            .filter(|e| matches!(e, ControllerEvent::HotspotShed { .. }))
            .count()
    };
    assert_eq!(
        sheds(&explicit),
        sheds(&adi),
        "the throttle must shed the same number of times on either solver"
    );
}
