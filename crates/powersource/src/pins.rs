//! Package pin-count feasibility (Section 6).
//!
//! Delivering 16 A peaks over the chip pins: at ~100 mA per power/ground
//! pin pair, 16 A at 1 V needs ~320 pins — a significant fraction of a
//! mobile package's pin budget. Higher supply voltages with on-chip
//! regulation reduce the requirement.

use serde::{Deserialize, Serialize};

/// A package pin budget model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackagePins {
    /// Total pins on the package.
    pub total_pins: u32,
    /// Peak current per power/ground pin *pair*, amps.
    pub amps_per_pair: f64,
}

impl PackagePins {
    /// Apple A4-class package: 531 pins, 0.5 mm pitch.
    pub fn apple_a4() -> Self {
        Self {
            total_pins: 531,
            amps_per_pair: 0.1,
        }
    }

    /// Qualcomm MSM8660-class package: 976 pins, 0.4 mm pitch.
    pub fn qualcomm_msm8660() -> Self {
        Self {
            total_pins: 976,
            amps_per_pair: 0.1,
        }
    }

    /// Pins (power + ground) needed to deliver `power_w` at `supply_v`.
    pub fn pins_needed(&self, power_w: f64, supply_v: f64) -> u32 {
        assert!(supply_v > 0.0, "supply voltage must be positive");
        let amps = power_w / supply_v;
        let pairs = (amps / self.amps_per_pair).ceil() as u32;
        pairs * 2
    }

    /// Fraction of the package's pins consumed by power delivery.
    pub fn pin_fraction(&self, power_w: f64, supply_v: f64) -> f64 {
        f64::from(self.pins_needed(power_w, supply_v)) / f64::from(self.total_pins)
    }

    /// True when power delivery fits within `budget_fraction` of the pins.
    pub fn feasible(&self, power_w: f64, supply_v: f64, budget_fraction: f64) -> bool {
        self.pin_fraction(power_w, supply_v) <= budget_fraction
    }

    /// Maximum power deliverable at `supply_v` through `budget_fraction`
    /// of the package's pins, watts — the pin-side ceiling a sprint must
    /// respect regardless of how strong the source behind it is.
    pub fn max_power_w(&self, supply_v: f64, budget_fraction: f64) -> f64 {
        assert!(supply_v > 0.0, "supply voltage must be positive");
        let pairs = (f64::from(self.total_pins) * budget_fraction / 2.0).floor();
        pairs * self.amps_per_pair * supply_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_320_pins() {
        // 16 A at 1 V with 100 mA pairs -> 160 pairs -> 320 pins.
        let p = PackagePins::apple_a4();
        assert_eq!(p.pins_needed(16.0, 1.0), 320);
    }

    #[test]
    fn higher_voltage_cuts_pins() {
        let p = PackagePins::apple_a4();
        // On-chip regulation from 3.3 V: 16 W needs ~4.85 A -> 49 pairs.
        assert!(p.pins_needed(16.0, 3.3) < 100);
    }

    #[test]
    fn sixteen_watt_sprint_strains_a4_package() {
        let p = PackagePins::apple_a4();
        assert!(
            p.pin_fraction(16.0, 1.0) > 0.5,
            "320 of 531 pins is a heavy fraction"
        );
        assert!(!p.feasible(16.0, 1.0, 0.3));
        assert!(PackagePins::qualcomm_msm8660().feasible(16.0, 1.0, 0.35));
    }
}
