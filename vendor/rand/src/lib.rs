//! Offline stand-in for `rand`, covering the slice of the API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for synthetic-input generation and, critically, *deterministic
//! and stable*: the workload golden traces in
//! `crates/workloads/tests/trace_regression.rs` pin its output. The stream
//! intentionally does not match upstream `StdRng` (ChaCha12); if the real
//! crate is ever swapped back in, regenerate the golden tables.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).gen_range(0u64..1_000_000) != c.gen_range(0u64..1_000_000)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w: i16 = rng.gen_range(-6..=6);
            assert!((-6..=6).contains(&w));
            let f: f32 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let b: u8 = rng.gen_range(0..=255);
            let _ = b;
        }
    }

    #[test]
    fn full_u8_range_reaches_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 256];
        for _ in 0..100_000 {
            seen[rng.gen_range(0u8..=255) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
