//! Heterogeneous-fleet figure: competitive duplication with
//! same-window loser cancellation vs bounded retry-in-place on a
//! degraded big/little rack (`repro hetero`).
//!
//! The rack is genuinely heterogeneous — two 16-core nodes with
//! heavier nameplate shares and thermal footprints interleaved with
//! two 8-core nodes on lighter ones, placed under
//! [`Placement::CheapestHeadroom`] — and genuinely degraded: a seeded
//! crash plan kills two nodes mid-task, exactly the regime PR 8's
//! fault layer left open ("tasks stranded by node crashes retry on the
//! *same* rack until the budget runs out"). Three policies drain the
//! same open-arrival stream:
//!
//! * **retry-in-place** ([`ClusterPolicy::greedy_default`]) — the
//!   incumbent: a crash victim re-enqueues after its backoff and
//!   reruns from scratch, paying the full backoff + rerun latency;
//! * **duplicate** (`CompetitiveDuplicate` with `cancel_losers:
//!   false`) — every task runs two copies on distinct nodes, so a
//!   crash that claims one copy costs nothing — but the losing copy of
//!   every *healthy* task also runs to completion, burning the shared
//!   feed for work that is discarded;
//! * **duplicate + cancel** (`cancel_losers: true`) — the same crash
//!   immunity, but the losing replica is preempted through the
//!   machine-level cancel API the very window the winner commits, so
//!   the duplication hedge stops paying for dead work.
//!
//! The figure of merit is the p99 latency against the *feed draw*
//! (total dynamic energy across the rack): duplication must beat
//! retry-in-place on the tail, and cancellation must claw back most of
//! duplication's extra draw — the quantified duplication-vs-power
//! trade the ROADMAP asks for, under the rationed rack feed.

use std::time::Instant;

use sprint_archsim::config::MachineConfig;
use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultEvent, FaultKind, FaultPlan, FaultResponse};
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

use crate::output::{Csv, TextTable};

/// Thermal/electrical time compression (the cluster test fixtures').
pub const HETERO_COMPRESS: f64 = 3000.0;
/// Open-arrival tasks for the full-scale figure.
pub const HETERO_TASKS: usize = 16;
/// Arrival spacing, seconds — sparse enough that duplication's second
/// copy rides idle capacity instead of queueing behind live work (the
/// regime where duplication is a latency hedge, not a throughput tax).
pub const HETERO_SPACING_S: f64 = 800e-6;
/// Run horizon, seconds — generous: a crash victim must be able to
/// wait out its retry backoff, rerun from scratch and still finish.
pub const HETERO_MAX_TIME_S: f64 = 0.03;
/// Crash-retry budget and backoff (sampling windows) for every policy.
/// The backoff is about half a service time: a retried victim loses
/// its progress, waits, then reruns from scratch.
pub const HETERO_RETRIES: (u32, u64) = (3, 512);

/// The mixed fleet: 16-core nodes with heavier nameplate shares and
/// thermal footprints alternating with lighter 8-core ones.
pub fn hetero_specs() -> Vec<NodeSpec> {
    let big = MachineConfig::hpca();
    let little = MachineConfig::hpca().with_cores(8);
    vec![
        NodeSpec::standard(big.clone())
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little.clone())
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
        NodeSpec::standard(big)
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little)
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
    ]
}

/// The degradation: one big and one little node crash while the early
/// arrivals run on them, leaving a big/little survivor pair — the rack
/// stays heterogeneous all the way through the drain, so duplicate
/// copies keep racing at genuinely different speeds. Every policy
/// faces the identical plan.
pub fn crash_plan() -> FaultPlan {
    let ev = |window: u64, node: u32| FaultEvent {
        window,
        node,
        kind: FaultKind::NodeCrash,
    };
    FaultPlan::new(vec![ev(700, 0), ev(3100, 1)])
        .with_retries(HETERO_RETRIES.0, HETERO_RETRIES.1)
        .with_response(FaultResponse::Aware)
}

/// One degraded heterogeneous rack under `policy`; everything else —
/// fleet, placement, supply, crash plan, arrivals — is held fixed, so
/// any latency or energy difference is the policy's doing.
pub fn degraded_cluster(policy: ClusterPolicy, tasks: usize) -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(HETERO_COMPRESS))
        .policy(policy)
        .rack_supply(RackSupplyParams::rack(4).time_scaled(HETERO_COMPRESS))
        .config(cfg)
        .node_specs(hetero_specs())
        .placement(Placement::CheapestHeadroom)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            tasks,
            0.0,
            HETERO_SPACING_S,
        ))
        .fault_plan(crash_plan())
        .max_time_s(HETERO_MAX_TIME_S)
        .build()
}

/// One policy's run on the degraded rack.
pub struct HeteroRow {
    /// Policy label.
    pub label: &'static str,
    /// Cluster report (event-driven core; digest-pinned to lockstep by
    /// this module's tests).
    pub report: ClusterReport,
    /// Total dynamic energy across the rack, joules — the feed draw
    /// the duplication trade is priced in.
    pub energy_j: f64,
    /// Wall-clock for the run, seconds.
    pub wall_s: f64,
}

/// Runs one policy point on the event-driven core and prices its feed
/// draw. Every point must finish every task (the crash plan is a
/// detour, not a task sink) and conserve arrivals.
pub fn run_hetero_point(label: &'static str, policy: ClusterPolicy, tasks: usize) -> HeteroRow {
    let mut cluster = EventDrivenCluster::new(degraded_cluster(policy, tasks));
    let start = Instant::now();
    let outcome = cluster.run_to_completion();
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome,
        ClusterOutcome::Drained,
        "{label}: the degraded rack must still drain within the horizon"
    );
    let report = cluster.report();
    assert!(report.task_conservation_holds(), "{label}: a task was lost");
    assert_eq!(report.completed, tasks, "{label}: no task may go missing");
    assert!(report.node_crashes > 0, "{label}: the crash plan never bit");
    let energy_j = report.node_reports.iter().map(|r| r.energy_j).sum();
    HeteroRow {
        label,
        report,
        energy_j,
        wall_s,
    }
}

/// The three-policy comparison at explicit scale. Returns the rows
/// (retry, duplicate, duplicate+cancel — in that order) and the
/// rendered figure.
pub fn fig_hetero_at(tasks: usize) -> (Vec<HeteroRow>, String) {
    let rows = vec![
        run_hetero_point("retry-in-place", ClusterPolicy::greedy_default(), tasks),
        run_hetero_point(
            "duplicate",
            ClusterPolicy::CompetitiveDuplicate {
                copies: 2,
                admit_headroom_k: 15.0,
                cancel_losers: false,
            },
            tasks,
        ),
        run_hetero_point(
            "duplicate+cancel",
            ClusterPolicy::competitive_default(),
            tasks,
        ),
    ];
    let mut out = format!(
        "Heterogeneous degraded rack — 2 big + 2 little servers, {tasks} open-arrival \
         tasks, one big and one little node crash mid-task, cheapest-headroom placement\n",
    );
    let mut table = TextTable::new();
    table.row(&[
        &"policy",
        &"p99 ms",
        &"mean ms",
        &"max ms",
        &"requeues",
        &"cancelled",
        &"feed J",
        &"J/task",
    ]);
    let mut csv = Csv::new(
        "fig_hetero",
        &[
            "policy",
            "tasks",
            "completed",
            "mean_latency_ms",
            "p95_latency_ms",
            "p99_latency_ms",
            "max_latency_ms",
            "requeues",
            "cancelled_copies",
            "node_crashes",
            "quarantined_nodes",
            "energy_j",
            "energy_j_per_task",
            "wall_s",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.label,
            &format!("{:.3}", r.report.p99_latency_s * 1e3),
            &format!("{:.3}", r.report.mean_latency_s * 1e3),
            &format!("{:.3}", r.report.max_latency_s * 1e3),
            &r.report.requeues,
            &r.report.cancelled_copies,
            &format!("{:.3}", r.energy_j),
            &format!("{:.4}", r.energy_j / tasks as f64),
        ]);
        csv.row(&[
            &r.label,
            &tasks,
            &r.report.completed,
            &format!("{:.4}", r.report.mean_latency_s * 1e3),
            &format!("{:.4}", r.report.p95_latency_s * 1e3),
            &format!("{:.4}", r.report.p99_latency_s * 1e3),
            &format!("{:.4}", r.report.max_latency_s * 1e3),
            &r.report.requeues,
            &r.report.cancelled_copies,
            &r.report.node_crashes,
            &r.report.quarantined_nodes,
            &format!("{:.4}", r.energy_j),
            &format!("{:.5}", r.energy_j / tasks as f64),
            &format!("{:.2}", r.wall_s),
        ]);
    }
    out.push_str(&table.render());
    let (retry, dup, cancel) = (&rows[0], &rows[1], &rows[2]);
    // The fixture must exercise the machinery it claims to compare:
    // retry-in-place must actually pay a crash retry, and the
    // cancellation path must actually fire.
    assert!(
        retry.report.requeues > 0,
        "the crash plan never caught a running single-copy task"
    );
    assert!(
        cancel.report.cancelled_copies > 0,
        "the loser-cancellation path never fired"
    );
    // The headline claim, asserted so the figure cannot print a stale
    // narrative: duplication under faults beats bounded retry-in-place
    // on the tail, with and without cancellation.
    for d in [dup, cancel] {
        assert!(
            d.report.p99_latency_s < retry.report.p99_latency_s,
            "{} lost the p99 to retry-in-place: {:.5} s vs {:.5} s",
            d.label,
            d.report.p99_latency_s,
            retry.report.p99_latency_s,
        );
    }
    // And the trade must be priced honestly: duplication draws more
    // feed than retry (two copies of healthy work are not free), and
    // cancellation reclaims part of that premium.
    assert!(
        dup.energy_j > retry.energy_j,
        "duplication cannot draw less feed than single-copy retry"
    );
    assert!(
        cancel.energy_j < dup.energy_j,
        "cancelling losers must reclaim feed draw vs letting them run"
    );
    out.push_str(&format!(
        "on the degraded rack a crash victim pays backoff + rerun under retry-in-place\n\
         (p99 {:.3} ms); with a second copy on another node the tail never sees the\n\
         crash ({:.3} ms, {:.1}x better) at {:+.1}% feed draw. same-window loser\n\
         cancellation keeps the immunity and returns {:.1}% of the duplication premium\n\
         ({:.3} ms p99 at {:+.1}% draw, {} losers preempted the window their winner\n\
         committed).\n",
        retry.report.p99_latency_s * 1e3,
        dup.report.p99_latency_s * 1e3,
        retry.report.p99_latency_s / dup.report.p99_latency_s,
        (dup.energy_j / retry.energy_j - 1.0) * 100.0,
        (dup.energy_j - cancel.energy_j) / (dup.energy_j - retry.energy_j) * 100.0,
        cancel.report.p99_latency_s * 1e3,
        (cancel.energy_j / retry.energy_j - 1.0) * 100.0,
        cancel.report.cancelled_copies,
    ));
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    (rows, out)
}

/// The heterogeneous-fleet figure (`repro hetero`): the full 16-task
/// comparison, or an 8-task reduced one under `--quick`.
pub fn fig_hetero(quick: bool) -> String {
    if quick {
        fig_hetero_at(8).1
    } else {
        fig_hetero_at(HETERO_TASKS).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline ordering in miniature, plus the golden-oracle
    /// cross-check on the exact study configuration: the event-driven
    /// report the figure prints is byte-identical to the lockstep
    /// stepper's under duplication, cancellation and the crash plan.
    #[test]
    fn reduced_hetero_study_orders_and_matches_lockstep() {
        let (rows, _) = fig_hetero_at(8);
        assert_eq!(rows.len(), 3);
        // fig_hetero_at already asserted the p99 and feed-draw
        // ordering; pin the oracle equivalence for the winning policy.
        let mut lockstep = degraded_cluster(ClusterPolicy::competitive_default(), 8);
        lockstep.run_to_completion();
        assert_eq!(
            lockstep.report().digest(),
            rows[2].report.digest(),
            "the study's event-driven report diverged from the lockstep oracle"
        );
    }
}
