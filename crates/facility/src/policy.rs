//! The facility-level sprint-admission tier: how the building's feed
//! is divided among racks each settlement epoch.

use serde::{Deserialize, Serialize};

/// How the facility feed is rationed across racks. This tier sits
/// *above* each rack's local admission — it only moves the rack's live
/// supply cap; the rack's own
/// [`PowerPolicy`](sprint_cluster::PowerPolicy) then enforces the share
/// it was dealt, window by window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FacilityPolicy {
    /// Facility-oblivious baseline. Without a facility cap every rack
    /// keeps the cap its supply was commissioned with, forever. With a
    /// [`facility_cap_w`](crate::FacilityBuilder::facility_cap_w) set,
    /// each rack is pinned at the static equal split `facility_cap / N`
    /// (clamped at its nameplate) — the share a cap-respecting but
    /// coordination-free facility would install at commissioning time,
    /// and never moved again regardless of demand.
    PerRack,
    /// Global sprint rationing: every settlement epoch the facility cap
    /// is re-divided across racks by *demand* (queue backlog plus
    /// sprinting population, plus one so an idle rack still holds a
    /// share). Every rack keeps a guaranteed `floor_w`; the flex pool
    /// above the floors is dealt in whole `slot_w` quanta by highest
    /// averages, then the sub-slot residue is waterfilled
    /// proportionally, with every share clamped at the rack's PDU
    /// nameplate. Headroom flows to whichever racks are bursting or
    /// riding their diurnal peak — the same watts serve every rack's
    /// peak because the peaks do not coincide.
    GlobalRationed {
        /// Guaranteed minimum cap per rack, watts — size it at the
        /// rack's worst-case *sustained* draw, so a starved rack keeps
        /// serving (slowly) while it waits for headroom.
        floor_w: f64,
        /// Quantum of the flex pool, watts — size it at the rack
        /// [`PowerPolicy`](sprint_cluster::PowerPolicy)'s per-sprint
        /// booking, so each dealt quantum buys exactly one admissible
        /// sprint. Watts split proportionally would strand below every
        /// rack's admission threshold exactly when the facility is
        /// tight; whole slots concentrate where the backlog is.
        slot_w: f64,
    },
}

impl FacilityPolicy {
    /// Validates the policy against the facility shape.
    ///
    /// # Panics
    ///
    /// Panics when rationing with a non-positive floor or slot, a floor
    /// above some rack's nameplate, or a facility cap that cannot cover
    /// every rack's floor.
    pub fn validate(&self, facility_cap_w: f64, nameplate_w: &[f64]) {
        if let Err(msg) = self.check(facility_cap_w, nameplate_w) {
            panic!("{msg}");
        }
    }

    /// The checked core of [`validate`](Self::validate): the same
    /// diagnostics as values instead of panics, for
    /// [`FacilityBuilder::try_build`](crate::FacilityBuilder::try_build).
    pub(crate) fn check(&self, facility_cap_w: f64, nameplate_w: &[f64]) -> Result<(), String> {
        if let FacilityPolicy::GlobalRationed { floor_w, slot_w } = self {
            if !(floor_w.is_finite() && *floor_w > 0.0) {
                return Err("rationing floor must be positive".into());
            }
            if !(slot_w.is_finite() && *slot_w > 0.0) {
                return Err("rationing slot must be positive".into());
            }
            for (rack, &np) in nameplate_w.iter().enumerate() {
                if *floor_w > np {
                    return Err(format!(
                        "rationing floor {floor_w} W exceeds rack {rack}'s {np} W nameplate"
                    ));
                }
            }
            if facility_cap_w < *floor_w * nameplate_w.len() as f64 {
                return Err(format!(
                    "facility cap {facility_cap_w} W cannot cover {} racks at the {floor_w} W floor",
                    nameplate_w.len()
                ));
            }
        }
        Ok(())
    }

    /// Settles one epoch: the per-rack cap vector, or `None` when this
    /// policy never intervenes ([`PerRack`](Self::PerRack) without a
    /// facility cap). `demand` is each rack's backlog + sprinting count
    /// from the previous epoch's telemetry (zeros before the first
    /// epoch: the initial division is an equal split).
    ///
    /// The division is deterministic and runs in two passes. First the
    /// flex pool above the floors is dealt in whole [`slot_w`] quanta
    /// by highest averages (each quantum goes to the rack with the most
    /// `demand + 1` per quantum already held, ties to the lowest rack
    /// index, nameplate permitting) — sprint admission is quantized at
    /// the per-sprint booking, so only a share that crosses a slot
    /// boundary buys anything. The sub-slot residue is then waterfilled
    /// in proportion to `demand + 1`, re-dividing any share above a
    /// rack's nameplate among the unclamped racks (at most one pass per
    /// rack, always in rack index order) — at a generous cap the
    /// residue walks every rack up to its nameplate, so the tier
    /// converges with the oblivious split when the feed stops binding.
    ///
    /// [`slot_w`]: Self::GlobalRationed::slot_w
    pub(crate) fn settle(
        &self,
        facility_cap_w: f64,
        nameplate_w: &[f64],
        demand: &[usize],
    ) -> Option<Vec<f64>> {
        let FacilityPolicy::GlobalRationed { floor_w, slot_w } = self else {
            // The oblivious baseline under a finite facility cap: the
            // static equal split, recomputed to the same value every
            // epoch (the change-gate upstream sends it exactly once).
            if facility_cap_w.is_finite() {
                let share = facility_cap_w / nameplate_w.len() as f64;
                return Some(nameplate_w.iter().map(|&np| share.min(np)).collect());
            }
            return None;
        };
        let n = nameplate_w.len();
        let mut caps = vec![*floor_w; n];
        let mut left = facility_cap_w - *floor_w * n as f64;
        // Pass 1: whole sprint slots by highest averages (d'Hondt).
        let mut quanta = vec![0usize; n];
        while left >= *slot_w {
            let mut best: Option<usize> = None;
            let mut best_avg = 0.0;
            for r in 0..n {
                if caps[r] + *slot_w > nameplate_w[r] + 1e-9 {
                    continue;
                }
                let avg = (demand[r] as f64 + 1.0) / (quanta[r] as f64 + 1.0);
                if best.is_none() || avg > best_avg {
                    best = Some(r);
                    best_avg = avg;
                }
            }
            let Some(r) = best else { break };
            caps[r] += *slot_w;
            quanta[r] += 1;
            left -= *slot_w;
        }
        // Pass 2: waterfill the sub-slot residue.
        let mut open: Vec<usize> = (0..n).collect();
        while left > 1e-9 && !open.is_empty() {
            let weight = |r: usize| demand[r] as f64 + 1.0;
            let total: f64 = open.iter().map(|&r| weight(r)).sum();
            let mut next_open = Vec::with_capacity(open.len());
            let mut granted = 0.0;
            for &r in &open {
                let share = left * weight(r) / total;
                let room = nameplate_w[r] - caps[r];
                if share >= room {
                    caps[r] = nameplate_w[r];
                    granted += room;
                } else {
                    caps[r] += share;
                    granted += share;
                    next_open.push(r);
                }
            }
            left -= granted;
            if next_open.len() == open.len() {
                // Nobody clamped: the budget is fully distributed (up
                // to rounding residue).
                break;
            }
            open = next_open;
        }
        Some(caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rack_without_a_cap_never_intervenes() {
        assert_eq!(
            FacilityPolicy::PerRack.settle(f64::INFINITY, &[50.0, 50.0], &[9, 0]),
            None
        );
    }

    #[test]
    fn per_rack_under_a_cap_is_a_static_demand_blind_split() {
        let caps = FacilityPolicy::PerRack
            .settle(80.0, &[50.0, 50.0, 30.0], &[9, 0, 0])
            .unwrap();
        // An equal 26.67 W share regardless of demand, nameplate-clamped.
        assert!((caps[0] - 80.0 / 3.0).abs() < 1e-9);
        assert_eq!(caps[0].to_bits(), caps[1].to_bits());
        assert!((caps[2] - 80.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_facility_splits_equally() {
        // Equal weights deal the four 18 W slots round-robin and the
        // residue waterfills evenly: the idle division is still the
        // equal split.
        let caps = FacilityPolicy::GlobalRationed {
            floor_w: 10.0,
            slot_w: 18.0,
        }
        .settle(100.0, &[80.0, 80.0], &[0, 0])
        .unwrap();
        assert!((caps[0] - 50.0).abs() < 1e-9);
        assert!((caps[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn burst_demand_wins_whole_slots() {
        // A 110 W cap over four 20 W floors leaves 30 W of flex. Split
        // proportionally (the old waterfill) no rack would clear the
        // 38 W a sprint admission needs — the watts strand exactly when
        // the facility is tight. Dealt in slots, the single whole 18 W
        // quantum lands on the bursting rack, pushing it (and only it)
        // across the admission threshold.
        let policy = FacilityPolicy::GlobalRationed {
            floor_w: 20.0,
            slot_w: 18.0,
        };
        let caps = policy
            .settle(110.0, &[120.0, 120.0, 120.0, 120.0], &[0, 10, 0, 0])
            .unwrap();
        assert!(caps[1] >= 38.0, "the bursting rack holds a whole slot");
        for (r, &cap) in caps.iter().enumerate() {
            if r != 1 {
                assert!(cap < 38.0, "rack {r} must not strand slot watts");
            }
        }
        let total: f64 = caps.iter().sum();
        assert!(total <= 110.0 + 1e-9, "never exceeds the facility cap");
    }

    #[test]
    fn nameplate_clamps_slot_dealing() {
        // Rack 0's 30 W nameplate cannot hold a slot above its floor:
        // both slots go to rack 1 and the residue waterfill tops rack 0
        // out at exactly its nameplate.
        let caps = FacilityPolicy::GlobalRationed {
            floor_w: 10.0,
            slot_w: 18.0,
        }
        .settle(90.0, &[30.0, 80.0], &[5, 5])
        .unwrap();
        assert!((caps[0] - 30.0).abs() < 1e-9, "clamped at nameplate");
        assert!((caps[1] - 60.0).abs() < 1e-9, "absorbs the surplus");
    }

    #[test]
    fn at_nameplate_cap_every_rack_gets_its_nameplate() {
        // When the feed carries every nameplate at once the tier stops
        // binding: whatever the demand skew, the residue waterfill
        // walks every rack to its nameplate — bit-exactly the caps the
        // oblivious split would pin, so the figure's generous-cap point
        // converges.
        let caps = FacilityPolicy::GlobalRationed {
            floor_w: 20.0,
            slot_w: 18.0,
        }
        .settle(240.0, &[120.0, 120.0], &[3, 9])
        .unwrap();
        assert_eq!(caps[0].to_bits(), 120.0f64.to_bits());
        assert_eq!(caps[1].to_bits(), 120.0f64.to_bits());
    }

    #[test]
    fn settlement_is_deterministic() {
        let policy = FacilityPolicy::GlobalRationed {
            floor_w: 5.0,
            slot_w: 16.0,
        };
        let nameplates = [40.0, 55.0, 70.0, 25.0];
        let demand = [3, 0, 11, 2];
        let a = policy.settle(120.0, &nameplates, &demand).unwrap();
        let b = policy.settle(120.0, &nameplates, &demand).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn cap_below_total_floor_is_rejected() {
        FacilityPolicy::GlobalRationed {
            floor_w: 30.0,
            slot_w: 18.0,
        }
        .validate(50.0, &[40.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "slot must be positive")]
    fn zero_slot_is_rejected() {
        FacilityPolicy::GlobalRationed {
            floor_w: 10.0,
            slot_w: 0.0,
        }
        .validate(100.0, &[40.0, 40.0]);
    }
}
