//! The smart-phone thermal model of Figure 3.
//!
//! Topology (Figure 3(c)/(d)): chip power is injected at the die junction;
//! heat flows through the thermal interface material into the PCM block,
//! onward through the package into the case, and from the case to the
//! ambient by passive convection. A secondary path conducts from the
//! junction through the PCB/board to the ambient, as in the
//! physically-validated phone model the paper bases its parameters on.
//!
//! Default parameters are chosen so the analyses of Sections 3-4 fall out:
//! sustained (TDP) power ≈ 1 W with the junction just below the PCM melting
//! point, a 16 W sprint that plateaus at the melting point for ≈ 1 s with
//! 150 mg of PCM (Figure 4(a)), and a post-sprint cooldown that returns the
//! junction close to ambient after ≈ 24 s (Figure 4(b)).

use serde::{Deserialize, Serialize};

use crate::circuit::{NodeId, ThermalNetwork};
use crate::material::Material;
use crate::node::StorageNode;
use crate::solver::TransientSolver;

/// Parameters of the secondary junction→board→ambient path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardPath {
    /// Junction to board resistance, K/W.
    pub r_junction_board_k_per_w: f64,
    /// Board heat capacity, J/K.
    pub board_capacity_j_per_k: f64,
    /// Board to ambient resistance, K/W.
    pub r_board_ambient_k_per_w: f64,
}

impl Default for BoardPath {
    fn default() -> Self {
        Self {
            r_junction_board_k_per_w: 50.0,
            board_capacity_j_per_k: 20.0,
            r_board_ambient_k_per_w: 150.0,
        }
    }
}

/// Complete parameter set for the phone thermal network.
///
/// # Examples
///
/// ```
/// use sprint_thermal::phone::PhoneThermalParams;
///
/// let phone = PhoneThermalParams::hpca().build();
/// // Sustained power with the junction held just below the PCM melting
/// // point is ~1 W: the paper's nominal single-core budget.
/// let tdp = phone.tdp_w();
/// assert!((0.9..1.2).contains(&tdp), "tdp = {tdp}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneThermalParams {
    /// Ambient temperature, Celsius.
    pub ambient_c: f64,
    /// Maximum safe junction temperature, Celsius (70 C in the paper's
    /// simulations).
    pub t_max_c: f64,
    /// Die junction (die + TIM lump) heat capacity, J/K.
    pub junction_capacity_j_per_k: f64,
    /// Junction to PCM resistance (TIM + spreading mesh), K/W. Determines
    /// the maximum sprint power (marker 2 in Figure 3(d)).
    pub r_junction_pcm_k_per_w: f64,
    /// PCM block mass in grams. Zero disables the PCM (Figure 3(a)/(b)).
    pub pcm_mass_g: f64,
    /// PCM material (melting point, latent heat, specific heat).
    pub pcm_material: Material,
    /// PCM to case (package) resistance, K/W.
    pub r_pcm_case_k_per_w: f64,
    /// Case heat capacity, J/K.
    pub case_capacity_j_per_k: f64,
    /// Case to ambient (passive convection) resistance, K/W.
    pub r_case_ambient_k_per_w: f64,
    /// Optional secondary board path.
    pub board_path: Option<BoardPath>,
}

impl PhoneThermalParams {
    /// The paper's fully-provisioned design point: 150 mg of the reference
    /// PCM (≈ 15-16 J of latent capacity, enough for a 16 W, ~1 s sprint).
    pub fn hpca() -> Self {
        Self {
            ambient_c: 25.0,
            t_max_c: 70.0,
            junction_capacity_j_per_k: 0.01,
            r_junction_pcm_k_per_w: 0.25,
            pcm_mass_g: 0.14,
            pcm_material: Material::reference_pcm(),
            // The case is the phone chassis: a large, well-convecting mass.
            // Cooling (and sustained power) is dominated by the PCM-to-case
            // resistance, matching Figure 3's marker 3 discussion.
            r_pcm_case_k_per_w: 38.0,
            case_capacity_j_per_k: 50.0,
            r_case_ambient_k_per_w: 1.0,
            board_path: Some(BoardPath::default()),
        }
    }

    /// The paper's artificially-limited design point: PCM reduced 100x
    /// (1.5 mg) "to measure the effect of limited sprint duration with
    /// tractable simulation times" (Section 8.3).
    pub fn limited() -> Self {
        let mut p = Self::hpca();
        p.pcm_mass_g /= 100.0;
        p
    }

    /// A conventional (PCM-free) package: Figure 3(a)/(b).
    pub fn without_pcm() -> Self {
        let mut p = Self::hpca();
        p.pcm_mass_g = 0.0;
        p
    }

    /// Sets the PCM mass in grams (builder style).
    pub fn with_pcm_mass_g(mut self, mass_g: f64) -> Self {
        assert!(
            mass_g >= 0.0 && mass_g.is_finite(),
            "mass must be non-negative"
        );
        self.pcm_mass_g = mass_g;
        self
    }

    /// Compresses every thermal time constant by `factor` by dividing all
    /// heat capacities (and the PCM mass) by it. Steady-state temperatures,
    /// TDP and maximum sprint power are unchanged; sprint duration and
    /// cooldown shrink by exactly `factor`.
    ///
    /// The paper uses the same trick (its 1.5 mg configuration) to keep
    /// many-core simulations tractable; we expose it as a first-class knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn time_scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        self.junction_capacity_j_per_k /= factor;
        self.pcm_mass_g /= factor;
        self.case_capacity_j_per_k /= factor;
        if let Some(bp) = &mut self.board_path {
            bp.board_capacity_j_per_k /= factor;
        }
        self
    }

    /// PCM melting temperature for these parameters, or the max junction
    /// temperature when no PCM is configured.
    pub fn sustain_limit_c(&self) -> f64 {
        if self.pcm_mass_g > 0.0 {
            self.pcm_material.melting_point_c().unwrap_or(self.t_max_c)
        } else {
            self.t_max_c
        }
    }

    /// Builds the thermal network and wraps it in a [`PhoneThermal`] ready
    /// for transient simulation, with all nodes at ambient temperature.
    pub fn build(self) -> PhoneThermal {
        let mut net = ThermalNetwork::new();
        let junction = net.add_storage(StorageNode::sensible_only(
            "junction",
            self.junction_capacity_j_per_k,
            self.ambient_c,
        ));
        let case = net.add_storage(StorageNode::sensible_only(
            "case",
            self.case_capacity_j_per_k,
            self.ambient_c,
        ));
        let ambient = net.add_boundary("ambient", self.ambient_c);
        let pcm = if self.pcm_mass_g > 0.0 {
            // Materials without a phase transition (copper/aluminum heat
            // storage, Section 4.1) become sensible-only blocks in the same
            // package position.
            let node = if self.pcm_material.melting_point_c().is_some()
                && self.pcm_material.latent_heat_j_per_g() > 0.0
            {
                StorageNode::from_material(
                    "pcm",
                    &self.pcm_material,
                    self.pcm_mass_g,
                    self.ambient_c,
                )
            } else {
                StorageNode::sensible_only(
                    "heat-block",
                    self.pcm_material
                        .block_heat_capacity_j_per_k(self.pcm_mass_g),
                    self.ambient_c,
                )
            };
            let pcm = net.add_storage(node);
            net.connect(junction, pcm, self.r_junction_pcm_k_per_w);
            net.connect(pcm, case, self.r_pcm_case_k_per_w);
            Some(pcm)
        } else {
            net.connect(
                junction,
                case,
                self.r_junction_pcm_k_per_w + self.r_pcm_case_k_per_w,
            );
            None
        };
        net.connect(case, ambient, self.r_case_ambient_k_per_w);
        let board = self.board_path.as_ref().map(|bp| {
            let board = net.add_storage(StorageNode::sensible_only(
                "board",
                bp.board_capacity_j_per_k,
                self.ambient_c,
            ));
            net.connect(junction, board, bp.r_junction_board_k_per_w);
            net.connect(board, ambient, bp.r_board_ambient_k_per_w);
            board
        });
        PhoneThermal {
            solver: TransientSolver::new(net),
            junction,
            pcm,
            case,
            board,
            ambient,
            params: self,
        }
    }
}

impl Default for PhoneThermalParams {
    fn default() -> Self {
        Self::hpca()
    }
}

/// A phone thermal model ready for transient co-simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhoneThermal {
    solver: TransientSolver,
    junction: NodeId,
    pcm: Option<NodeId>,
    case: NodeId,
    board: Option<NodeId>,
    ambient: NodeId,
    params: PhoneThermalParams,
}

impl PhoneThermal {
    /// The parameters this model was built from.
    pub fn params(&self) -> &PhoneThermalParams {
        &self.params
    }

    /// Die junction node id.
    pub fn junction(&self) -> NodeId {
        self.junction
    }

    /// PCM node id, when a PCM is present.
    pub fn pcm(&self) -> Option<NodeId> {
        self.pcm
    }

    /// Case node id.
    pub fn case(&self) -> NodeId {
        self.case
    }

    /// Ambient boundary node id.
    pub fn ambient_node(&self) -> NodeId {
        self.ambient
    }

    /// The underlying network.
    pub fn network(&self) -> &ThermalNetwork {
        self.solver.network()
    }

    /// Sets the instantaneous chip power dissipation in watts.
    pub fn set_chip_power_w(&mut self, watts: f64) {
        let j = self.junction;
        self.solver.network_mut().set_power(j, watts);
    }

    /// Advances the model by `dt_s` seconds.
    pub fn advance(&mut self, dt_s: f64) {
        self.solver.advance(dt_s);
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.solver.time_s()
    }

    /// Junction temperature, Celsius.
    pub fn junction_temp_c(&self) -> f64 {
        self.solver.network().temperature_c(self.junction)
    }

    /// PCM temperature (junction temperature when no PCM is modelled).
    pub fn pcm_temp_c(&self) -> f64 {
        match self.pcm {
            Some(p) => self.solver.network().temperature_c(p),
            None => self.junction_temp_c(),
        }
    }

    /// PCM melt fraction in `[0, 1]` (zero when no PCM is modelled).
    pub fn melt_fraction(&self) -> f64 {
        match self.pcm {
            Some(p) => self.solver.network().melt_fraction(p),
            None => 0.0,
        }
    }

    /// Ambient temperature these parameters assume, Celsius.
    pub fn ambient_c(&self) -> f64 {
        self.params.ambient_c
    }

    /// Maximum safe junction temperature, Celsius.
    pub fn t_max_c(&self) -> f64 {
        self.params.t_max_c
    }

    /// True once the junction has reached the maximum safe temperature.
    pub fn at_thermal_limit(&self) -> bool {
        self.junction_temp_c() >= self.params.t_max_c - 1e-9
    }

    /// Remaining headroom before the junction hits `t_max_c`, in Kelvin.
    pub fn headroom_k(&self) -> f64 {
        self.params.t_max_c - self.junction_temp_c()
    }

    /// Equivalent junction-to-ambient thermal resistance, K/W.
    pub fn r_junction_ambient_k_per_w(&self) -> f64 {
        self.solver
            .network()
            .equivalent_resistance_to_ambient(self.junction)
    }

    /// Sustainable power (TDP): the steady-state power that holds the
    /// junction exactly at the sustain limit (the PCM melting point when a
    /// PCM is present, else `t_max_c`).
    pub fn tdp_w(&self) -> f64 {
        let limit = self.params.sustain_limit_c();
        (limit - self.params.ambient_c) / self.r_junction_ambient_k_per_w()
    }

    /// Maximum sprint power (W): bounded by the resistance into the PCM
    /// (paper Figure 3 marker 2): during the melt plateau the junction sits
    /// at `Tmelt + P * R_junction_pcm`, which must stay below `t_max_c`.
    /// Without a PCM the bound equals the TDP (no sprinting headroom beyond
    /// transient junction capacitance).
    pub fn max_sprint_power_w(&self) -> f64 {
        let has_melt = self.params.pcm_material.melting_point_c().is_some()
            && self.params.pcm_material.latent_heat_j_per_g() > 0.0;
        if self.pcm.is_some() && has_melt {
            let melt = self.params.sustain_limit_c();
            (self.params.t_max_c - melt) / self.params.r_junction_pcm_k_per_w
        } else {
            self.tdp_w()
        }
    }

    /// Total sprint energy budget in joules starting from the current
    /// state: remaining latent heat plus the sensible headroom of the
    /// junction+PCM lump up to `t_max_c`. This is the "16 joules" quantity
    /// of Section 4.
    pub fn sprint_energy_budget_j(&self) -> f64 {
        let mut budget = 0.0;
        if let Some(p) = self.pcm {
            let node = self.solver.network().storage(p);
            if let Some(pc) = node.phase_change() {
                budget += pc.latent_heat_j * (1.0 - node.melt_fraction());
                // Sensible headroom of the PCM up to Tmax.
                let t = node.temperature_c();
                if t < pc.melt_temp_c {
                    budget += (pc.melt_temp_c - t) * node.sensible_capacity_j_per_k();
                    budget +=
                        (self.params.t_max_c - pc.melt_temp_c) * pc.liquid_heat_capacity_j_per_k;
                } else {
                    budget += (self.params.t_max_c - t).max(0.0) * pc.liquid_heat_capacity_j_per_k;
                }
            } else {
                // Solid heat-storage block (Section 4.1): sensible only.
                budget += (self.params.t_max_c - node.temperature_c()).max(0.0)
                    * node.sensible_capacity_j_per_k();
            }
        }
        budget += self.headroom_k().max(0.0) * self.params.junction_capacity_j_per_k;
        budget
    }

    /// Resets every storage node to the ambient temperature (fully frozen).
    pub fn reset_to_ambient(&mut self) {
        let ambient = self.params.ambient_c;
        let net = self.solver.network_mut();
        for id in [Some(self.junction), self.pcm, Some(self.case), self.board]
            .into_iter()
            .flatten()
        {
            net.storage_mut(id).set_temperature(ambient);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdp_is_about_one_watt() {
        let phone = PhoneThermalParams::hpca().build();
        let tdp = phone.tdp_w();
        assert!(
            (0.9..1.2).contains(&tdp),
            "TDP {tdp:.3} W outside [0.9, 1.2]"
        );
    }

    #[test]
    fn max_sprint_power_covers_16w() {
        let phone = PhoneThermalParams::hpca().build();
        assert!(
            phone.max_sprint_power_w() >= 16.0,
            "max sprint power {:.1} W must cover the 16 W design point",
            phone.max_sprint_power_w()
        );
    }

    #[test]
    fn sprint_energy_budget_is_about_16_joules() {
        let phone = PhoneThermalParams::hpca().build();
        let e = phone.sprint_energy_budget_j();
        assert!(
            (14.0..19.0).contains(&e),
            "sprint budget {e:.1} J should be ≈ 16 J"
        );
    }

    #[test]
    fn limited_config_has_one_percent_budget() {
        let full = PhoneThermalParams::hpca().build().sprint_energy_budget_j();
        let limited = PhoneThermalParams::limited()
            .build()
            .sprint_energy_budget_j();
        // Latent dominates, so the ratio should be close to 100x.
        assert!(
            limited < full / 20.0,
            "limited budget {limited:.3} J not ≪ full {full:.1} J"
        );
    }

    #[test]
    fn sustained_operation_stays_below_melting_point() {
        let mut phone = PhoneThermalParams::hpca().build();
        phone.set_chip_power_w(1.0);
        phone.advance(400.0);
        let t = phone.junction_temp_c();
        assert!(
            t < 60.0 + 1e-6,
            "sustained 1 W junction temperature {t:.1} C must stay below 60 C"
        );
        assert!(
            t > 50.0,
            "sustained 1 W should warm the junction well above ambient"
        );
        assert!(phone.melt_fraction() < 1e-9);
    }

    #[test]
    fn time_scaling_preserves_steady_state() {
        let base = PhoneThermalParams::hpca().build();
        let scaled = PhoneThermalParams::hpca().time_scaled(50.0).build();
        assert!((base.tdp_w() - scaled.tdp_w()).abs() < 1e-9);
        assert!((base.max_sprint_power_w() - scaled.max_sprint_power_w()).abs() < 1e-9);
    }

    #[test]
    fn time_scaling_compresses_sprint_duration() {
        let mut full = PhoneThermalParams::hpca().build();
        let mut scaled = PhoneThermalParams::hpca().time_scaled(10.0).build();
        for p in [&mut full, &mut scaled] {
            p.set_chip_power_w(16.0);
        }
        let mut t_full = 0.0;
        while !full.at_thermal_limit() && t_full < 10.0 {
            full.advance(0.005);
            t_full += 0.005;
        }
        let mut t_scaled = 0.0;
        while !scaled.at_thermal_limit() && t_scaled < 10.0 {
            scaled.advance(0.0005);
            t_scaled += 0.0005;
        }
        let ratio = t_full / t_scaled;
        assert!(
            (7.0..13.0).contains(&ratio),
            "expected ~10x compression, got {ratio:.1} ({t_full:.3}s vs {t_scaled:.4}s)"
        );
    }

    #[test]
    fn no_pcm_variant_has_no_melt_state() {
        let mut phone = PhoneThermalParams::without_pcm().build();
        phone.set_chip_power_w(16.0);
        phone.advance(0.5);
        assert_eq!(phone.melt_fraction(), 0.0);
        assert!(phone.pcm().is_none());
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut phone = PhoneThermalParams::hpca().build();
        phone.set_chip_power_w(16.0);
        phone.advance(0.8);
        assert!(phone.junction_temp_c() > 40.0);
        phone.reset_to_ambient();
        assert!((phone.junction_temp_c() - 25.0).abs() < 1e-9);
        assert_eq!(phone.melt_fraction(), 0.0);
    }
}
