//! Responsiveness and energy metrics (the quantities plotted in
//! Figures 7-11).

use serde::{Deserialize, Serialize};

/// Speedup/energy comparison of one configuration against the single-core
/// non-sprinting baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Label of the configuration (e.g. "parallel-150mg").
    pub label: String,
    /// Baseline completion time, seconds.
    pub baseline_s: f64,
    /// This configuration's completion time, seconds.
    pub time_s: f64,
    /// Baseline dynamic energy, joules.
    pub baseline_energy_j: f64,
    /// This configuration's dynamic energy, joules.
    pub energy_j: f64,
}

impl Comparison {
    /// Responsiveness improvement (the paper's "normalized speedup").
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.time_s
    }

    /// Dynamic energy normalized to the baseline (Figure 11's y-axis).
    pub fn normalized_energy(&self) -> f64 {
        self.energy_j / self.baseline_energy_j
    }
}

/// Geometric mean of speedups — the paper quotes the arithmetic average
/// ("average parallel speedup of 10.2x"); both are provided.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(time_s: f64, energy: f64) -> Comparison {
        Comparison {
            label: "x".into(),
            baseline_s: 10.0,
            time_s,
            baseline_energy_j: 2.0,
            energy_j: energy,
        }
    }

    #[test]
    fn speedup_and_energy_ratios() {
        let c = cmp(1.0, 2.2);
        assert!((c.speedup() - 10.0).abs() < 1e-12);
        assert!((c.normalized_energy() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[1.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_mean_rejected() {
        let _ = geometric_mean(&[]);
    }
}
