//! HotSpot-style multi-layer grid thermal backend.
//!
//! Where [`crate::phone`] lumps the whole package into a handful of RC
//! nodes, [`GridThermal`] discretizes each package layer (die, PCM,
//! spreader, ...) into an `nx x ny` cell grid. Per-core power from a
//! [`Floorplan`](crate::floorplan::Floorplan) is injected into the die
//! cells it overlaps, conducts laterally within layers and vertically
//! between them, and finally convects from the last layer to the
//! ambient. The payoff is *where* heat accumulates: active cores form
//! hotspots several degrees above the die average, so the hottest cell —
//! not the mean — is what gates a sprint.
//!
//! Cells store enthalpy (the same enthalpy method as [`crate::node`]),
//! so a PCM layer exhibits an exact per-cell melting plateau and energy
//! conservation holds to floating-point roundoff. Integration is
//! explicit with automatic sub-stepping: the step size is bounded by a
//! fraction of the smallest cell RC constant, computed once at build
//! time (layer structure cannot change afterwards). Every arithmetic
//! operation is plain `f64` add/mul — no transcendentals — so traces
//! are bit-reproducible across platforms, which the golden-trace test
//! relies on.

use serde::{Deserialize, Serialize};

use crate::floorplan::Floorplan;
use crate::phone::PhoneThermalParams;

/// Phase-change parameters of a grid layer (totals for the whole layer;
/// distributed over cells by area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPhase {
    /// Melting temperature, Celsius.
    pub melt_temp_c: f64,
    /// Total latent heat of the layer, joules.
    pub latent_heat_j: f64,
    /// Total sensible capacity of the liquid phase, J/K.
    pub liquid_capacity_j_per_k: f64,
}

/// One package layer of the grid stack, top (die) downwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridLayer {
    /// Layer name (used in accessors and error messages).
    pub name: String,
    /// Total (solid-phase) sensible heat capacity of the layer, J/K.
    pub capacity_j_per_k: f64,
    /// Lateral sheet resistance, K/W per square (`1 / (k * thickness)`).
    /// `f64::INFINITY` disables lateral conduction in this layer.
    pub lateral_r_square_k_per_w: f64,
    /// Interface resistance from this layer to the next, K/W across the
    /// whole die area (ignored for the last layer, which couples to the
    /// ambient through the sink resistance instead).
    pub r_to_next_k_per_w: f64,
    /// Optional phase change (a PCM layer).
    pub phase_change: Option<LayerPhase>,
}

impl GridLayer {
    /// A sensible-only layer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity or resistances.
    pub fn sensible(
        name: impl Into<String>,
        capacity_j_per_k: f64,
        lateral_r_square_k_per_w: f64,
        r_to_next_k_per_w: f64,
    ) -> Self {
        let layer = Self {
            name: name.into(),
            capacity_j_per_k,
            lateral_r_square_k_per_w,
            r_to_next_k_per_w,
            phase_change: None,
        };
        layer.validate();
        layer
    }

    /// A phase-change layer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacities, latent heat or resistances.
    pub fn pcm(
        name: impl Into<String>,
        capacity_j_per_k: f64,
        lateral_r_square_k_per_w: f64,
        r_to_next_k_per_w: f64,
        phase: LayerPhase,
    ) -> Self {
        let layer = Self {
            name: name.into(),
            capacity_j_per_k,
            lateral_r_square_k_per_w,
            r_to_next_k_per_w,
            phase_change: Some(phase),
        };
        layer.validate();
        layer
    }

    fn validate(&self) {
        assert!(
            self.capacity_j_per_k.is_finite() && self.capacity_j_per_k > 0.0,
            "layer capacity must be positive"
        );
        assert!(
            self.lateral_r_square_k_per_w > 0.0,
            "lateral resistance must be positive (INFINITY to disable)"
        );
        assert!(
            self.r_to_next_k_per_w.is_finite() && self.r_to_next_k_per_w > 0.0,
            "interface resistance must be positive"
        );
        if let Some(pc) = &self.phase_change {
            assert!(pc.latent_heat_j > 0.0, "latent heat must be positive");
            assert!(
                pc.liquid_capacity_j_per_k > 0.0,
                "liquid capacity must be positive"
            );
        }
    }
}

/// Full parameter set for a [`GridThermal`] backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridThermalParams {
    /// Ambient temperature, Celsius.
    pub ambient_c: f64,
    /// Maximum safe cell temperature, Celsius.
    pub t_max_c: f64,
    /// Grid cells along the die width.
    pub nx: usize,
    /// Grid cells along the die height.
    pub ny: usize,
    /// Core placement (power injection map for the die layer).
    pub floorplan: Floorplan,
    /// Package layers, die first. The die layer (index 0) receives the
    /// chip power; the last layer couples to ambient.
    pub layers: Vec<GridLayer>,
    /// Convection resistance from the last layer to ambient, K/W across
    /// the whole area.
    pub r_sink_ambient_k_per_w: f64,
    /// Sub-step bound as a fraction of the smallest cell RC constant.
    pub stability_fraction: f64,
}

impl GridThermalParams {
    /// A grid re-provisioning of the paper's phone package: the same
    /// junction/PCM/case capacities and series resistances as
    /// [`PhoneThermalParams::hpca`] (without the secondary board path),
    /// but with the die split into cells over a 4x4 core floorplan. TDP
    /// and sprint budget are near the lumped design's; what changes is
    /// that active cores form hotspots ~5-10 C above the die mean, so
    /// the hottest cell hits the 70 C limit during a 16 W sprint even
    /// though the *average* junction stays comfortably below it.
    ///
    /// Hotspot timescales at 1 W/core (uncompressed): 16 active cores
    /// reach the limit in ~0.75 s — well before the lumped package's
    /// ~1.1 s budget — while 8 cores last ~1.3 s and 4 cores ~3 s, so a
    /// core-count throttle genuinely stretches the sprint.
    pub fn hpca_like() -> Self {
        Self {
            ambient_c: 25.0,
            t_max_c: 70.0,
            nx: 8,
            ny: 8,
            floorplan: Floorplan::regular_array(4, 4, 0.72, 0.8),
            layers: vec![
                // Die: the junction lump of the phone model, now spatial.
                // Lateral sheet resistance ~= 1/(k_si * t_die).
                GridLayer::sensible("die", 0.01, 8.0, 0.35),
                // PCM: metal-foam-infiltrated composite (the paper's
                // Section 4.4 encapsulation), so lateral conduction
                // redistributes a hot core's heat into neighbouring
                // still-frozen PCM; the interface to the case remains
                // the dominant cooling resistance.
                GridLayer::pcm(
                    "pcm",
                    0.042,
                    300.0,
                    38.0,
                    LayerPhase {
                        melt_temp_c: 60.0,
                        latent_heat_j: 14.0,
                        liquid_capacity_j_per_k: 0.042,
                    },
                ),
                // Spreader/case: copper-class lateral spreading.
                GridLayer::sensible("spreader", 50.0, 2.0, 1.0),
            ],
            r_sink_ambient_k_per_w: 1.0,
            stability_fraction: 0.2,
        }
    }

    /// A 1x1-cell-per-layer grid equivalent of a (board-less) phone
    /// package: die = junction lump, PCM block, spreader = case, with
    /// the same capacities and series resistances. Used to validate the
    /// grid solver against the lumped reference — both must track the
    /// same junction trajectory. The secondary board path (if present in
    /// `phone`) is not modelled; compare against a `board_path: None`
    /// build.
    ///
    /// # Panics
    ///
    /// Panics if `phone` has no PCM (the grid stack expects the
    /// three-layer chain) or a PCM material without a melting point.
    pub fn phone_equivalent(phone: &PhoneThermalParams) -> Self {
        assert!(
            phone.pcm_mass_g > 0.0,
            "phone_equivalent needs the PCM layer"
        );
        let melt = phone
            .pcm_material
            .melting_point_c()
            .expect("PCM material must have a melting point");
        let sensible = phone
            .pcm_material
            .block_heat_capacity_j_per_k(phone.pcm_mass_g);
        let latent = phone.pcm_material.block_latent_heat_j(phone.pcm_mass_g);
        Self {
            ambient_c: phone.ambient_c,
            t_max_c: phone.t_max_c,
            nx: 1,
            ny: 1,
            floorplan: Floorplan::full_die(),
            layers: vec![
                GridLayer::sensible(
                    "die",
                    phone.junction_capacity_j_per_k,
                    f64::INFINITY,
                    phone.r_junction_pcm_k_per_w,
                ),
                GridLayer::pcm(
                    "pcm",
                    sensible,
                    f64::INFINITY,
                    phone.r_pcm_case_k_per_w,
                    LayerPhase {
                        melt_temp_c: melt,
                        latent_heat_j: latent,
                        liquid_capacity_j_per_k: sensible,
                    },
                ),
                GridLayer::sensible("spreader", phone.case_capacity_j_per_k, f64::INFINITY, 1.0),
            ],
            r_sink_ambient_k_per_w: phone.r_case_ambient_k_per_w,
            // Tight sub-steps: this configuration exists to be compared
            // against the exactly-integrated lumped reference.
            stability_fraction: 0.05,
        }
    }

    /// Sets the grid resolution (builder style).
    pub fn with_grid(mut self, nx: usize, ny: usize) -> Self {
        self.nx = nx;
        self.ny = ny;
        self
    }

    /// Swaps the floorplan (builder style).
    pub fn with_floorplan(mut self, floorplan: Floorplan) -> Self {
        self.floorplan = floorplan;
        self
    }

    /// Compresses every thermal time constant by `factor` by dividing
    /// all heat capacities and latent heats by it — the same simulation
    /// trick as [`PhoneThermalParams::time_scaled`]. Steady-state
    /// temperatures and TDP are unchanged; transients shrink by exactly
    /// `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is strictly positive and finite.
    pub fn time_scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        for layer in &mut self.layers {
            layer.capacity_j_per_k /= factor;
            if let Some(pc) = &mut layer.phase_change {
                pc.latent_heat_j /= factor;
                pc.liquid_capacity_j_per_k /= factor;
            }
        }
        self
    }

    /// Validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid/stack/floorplan, a limit at or below
    /// ambient, an ambient at or above a PCM melting point, or a
    /// stability fraction outside `(0, 0.5]`.
    pub fn validate(&self) {
        assert!(self.nx >= 1 && self.ny >= 1, "grid needs at least one cell");
        assert!(!self.layers.is_empty(), "stack needs at least one layer");
        assert!(
            self.floorplan.core_count() >= 1,
            "floorplan needs at least one core"
        );
        assert!(self.t_max_c > self.ambient_c, "limit must exceed ambient");
        assert!(
            self.r_sink_ambient_k_per_w.is_finite() && self.r_sink_ambient_k_per_w > 0.0,
            "sink resistance must be positive"
        );
        assert!(
            self.stability_fraction > 0.0 && self.stability_fraction <= 0.5,
            "stability fraction must be in (0, 0.5]"
        );
        for layer in &self.layers {
            layer.validate();
            if let Some(pc) = &layer.phase_change {
                assert!(
                    self.ambient_c < pc.melt_temp_c,
                    "ambient must be below the PCM melting point"
                );
            }
        }
    }

    /// Equivalent junction-to-ambient series resistance of the stack
    /// (valid for uniform power: interface resistances plus sink), K/W.
    pub fn series_resistance_k_per_w(&self) -> f64 {
        let interfaces: f64 = self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.r_to_next_k_per_w)
            .sum();
        interfaces + self.r_sink_ambient_k_per_w
    }

    /// Builds the backend with every cell at ambient temperature.
    pub fn build(self) -> GridThermal {
        GridThermal::new(self)
    }
}

/// A conductance edge between two cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct GridEdge {
    a: u32,
    b: u32,
    g_w_per_k: f64,
}

/// Per-cell phase-change bookkeeping (copied from the owning layer with
/// per-cell totals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CellPhase {
    melt_temp_c: f64,
    latent_heat_j: f64,
    liquid_capacity_j_per_k: f64,
}

/// The grid thermal backend. See the module docs for the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridThermal {
    params: GridThermalParams,
    cells_per_layer: usize,
    /// Enthalpy per cell (J, relative to 0 C), layer-major.
    enthalpy_j: Vec<f64>,
    /// Solid-phase sensible capacity per cell, J/K.
    capacity_j_per_k: Vec<f64>,
    /// Phase change per cell (PCM layers only).
    phase: Vec<Option<CellPhase>>,
    /// Power injected per cell, W (die layer only).
    power_w: Vec<f64>,
    /// Conduction edges (lateral + vertical).
    edges: Vec<GridEdge>,
    /// Convection edges from last-layer cells to ambient.
    sink: Vec<(u32, f64)>,
    /// Per-core (cell, weight) lists on the die layer.
    core_cells: Vec<Vec<(usize, f64)>>,
    chip_power_w: f64,
    active_cores: usize,
    sub_step_s: f64,
    time_s: f64,
    boundary_absorbed_j: f64,
    peak_hotspot_gradient_k: f64,
    /// Peak temperature seen per core (max over its cells), Celsius.
    peak_core_temps_c: Vec<f64>,
    scratch_temps: Vec<f64>,
    scratch_flows: Vec<f64>,
}

impl GridThermal {
    /// Builds the grid from validated parameters, all cells at ambient.
    pub fn new(params: GridThermalParams) -> Self {
        params.validate();
        let (nx, ny) = (params.nx, params.ny);
        let cells = nx * ny;
        let n = cells * params.layers.len();
        let mut capacity = Vec::with_capacity(n);
        let mut phase = Vec::with_capacity(n);
        for layer in &params.layers {
            let c_cell = layer.capacity_j_per_k / cells as f64;
            let p_cell = layer.phase_change.map(|pc| CellPhase {
                melt_temp_c: pc.melt_temp_c,
                latent_heat_j: pc.latent_heat_j / cells as f64,
                liquid_capacity_j_per_k: pc.liquid_capacity_j_per_k / cells as f64,
            });
            for _ in 0..cells {
                capacity.push(c_cell);
                phase.push(p_cell);
            }
        }
        let mut edges = Vec::new();
        let dx = params.floorplan.die_w() / nx as f64;
        let dy = params.floorplan.die_h() / ny as f64;
        for (li, layer) in params.layers.iter().enumerate() {
            let base = li * cells;
            if layer.lateral_r_square_k_per_w.is_finite() {
                // Sheet resistance per square: an x-neighbour pair spans
                // dx of length over dy of width, so R = r_sq * dx / dy.
                let g_x = dy / (layer.lateral_r_square_k_per_w * dx);
                let g_y = dx / (layer.lateral_r_square_k_per_w * dy);
                for y in 0..ny {
                    for x in 0..nx {
                        let i = (base + y * nx + x) as u32;
                        if x + 1 < nx {
                            edges.push(GridEdge {
                                a: i,
                                b: i + 1,
                                g_w_per_k: g_x,
                            });
                        }
                        if y + 1 < ny {
                            edges.push(GridEdge {
                                a: i,
                                b: i + nx as u32,
                                g_w_per_k: g_y,
                            });
                        }
                    }
                }
            }
            if li + 1 < params.layers.len() {
                let g_v = 1.0 / (layer.r_to_next_k_per_w * cells as f64);
                for c in 0..cells {
                    edges.push(GridEdge {
                        a: (base + c) as u32,
                        b: (base + cells + c) as u32,
                        g_w_per_k: g_v,
                    });
                }
            }
        }
        let sink_base = (params.layers.len() - 1) * cells;
        let g_sink = 1.0 / (params.r_sink_ambient_k_per_w * cells as f64);
        let sink: Vec<(u32, f64)> = (0..cells)
            .map(|c| ((sink_base + c) as u32, g_sink))
            .collect();

        // Stability bound: smallest C / G_total over cells, computed once
        // (the structure is fixed; the solid capacity is the conservative
        // choice for PCM cells, whose effective capacity only grows
        // during melt).
        let mut g_total = vec![0.0f64; n];
        for e in &edges {
            g_total[e.a as usize] += e.g_w_per_k;
            g_total[e.b as usize] += e.g_w_per_k;
        }
        for &(i, g) in &sink {
            g_total[i as usize] += g;
        }
        let mut min_tau = f64::INFINITY;
        for i in 0..n {
            let c = match &phase[i] {
                Some(pc) => capacity[i].min(pc.liquid_capacity_j_per_k),
                None => capacity[i],
            };
            if g_total[i] > 0.0 {
                min_tau = min_tau.min(c / g_total[i]);
            }
        }
        let sub_step_s = if min_tau.is_finite() {
            params.stability_fraction * min_tau
        } else {
            f64::MAX
        };

        let core_cells: Vec<Vec<(usize, f64)>> = (0..params.floorplan.core_count())
            .map(|c| params.floorplan.cell_weights(c, nx, ny))
            .collect();
        let cores = core_cells.len();
        let ambient = params.ambient_c;
        let mut grid = Self {
            cells_per_layer: cells,
            enthalpy_j: vec![0.0; n],
            capacity_j_per_k: capacity,
            phase,
            power_w: vec![0.0; n],
            edges,
            sink,
            core_cells,
            chip_power_w: 0.0,
            active_cores: cores,
            sub_step_s,
            time_s: 0.0,
            boundary_absorbed_j: 0.0,
            peak_hotspot_gradient_k: 0.0,
            peak_core_temps_c: vec![ambient; cores],
            scratch_temps: vec![0.0; n],
            scratch_flows: vec![0.0; n],
            params,
        };
        grid.reset_to_ambient();
        grid
    }

    /// The parameters this backend was built from.
    pub fn params(&self) -> &GridThermalParams {
        &self.params
    }

    /// Cells per layer (`nx * ny`).
    pub fn cells_per_layer(&self) -> usize {
        self.cells_per_layer
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.params.layers.len()
    }

    /// The automatic sub-step bound, seconds.
    pub fn sub_step_s(&self) -> f64 {
        self.sub_step_s
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Sets the total chip power; it is split evenly across the active
    /// cores and rasterized onto the die cells each core overlaps.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite power.
    pub fn set_chip_power_w(&mut self, watts: f64) {
        assert!(watts.is_finite(), "power must be finite");
        self.chip_power_w = watts;
        self.apply_power_map();
    }

    /// Sets how many cores the chip power is spread over (clamped to
    /// `[1, core_count]`); the first `n` floorplan cores are active.
    pub fn set_active_cores(&mut self, n: usize) {
        let n = n.clamp(1, self.core_cells.len());
        if n != self.active_cores {
            self.active_cores = n;
            self.apply_power_map();
        }
    }

    /// Active core count the power map assumes.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Total chip power currently injected, watts.
    pub fn chip_power_w(&self) -> f64 {
        self.chip_power_w
    }

    fn apply_power_map(&mut self) {
        for p in self.power_w[..self.cells_per_layer].iter_mut() {
            *p = 0.0;
        }
        let per_core = self.chip_power_w / self.active_cores as f64;
        for core in &self.core_cells[..self.active_cores] {
            for &(cell, weight) in core {
                self.power_w[cell] += per_core * weight;
            }
        }
    }

    fn cell_temp(&self, i: usize) -> f64 {
        cell_temp_of(self.enthalpy_j[i], self.capacity_j_per_k[i], &self.phase[i])
    }

    /// Temperature of cell `(x, y)` in layer `layer`, Celsius.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn cell_temp_c(&self, layer: usize, x: usize, y: usize) -> f64 {
        assert!(layer < self.layer_count() && x < self.params.nx && y < self.params.ny);
        self.cell_temp(layer * self.cells_per_layer + y * self.params.nx + x)
    }

    /// Hottest die-layer cell, Celsius — the hotspot the sprint
    /// controller must respect.
    pub fn junction_temp_c(&self) -> f64 {
        (0..self.cells_per_layer)
            .map(|i| self.cell_temp(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean die-layer temperature, Celsius — what a lumped model would
    /// report.
    pub fn mean_die_temp_c(&self) -> f64 {
        let sum: f64 = (0..self.cells_per_layer).map(|i| self.cell_temp(i)).sum();
        sum / self.cells_per_layer as f64
    }

    /// Spread between the hottest and coolest die cell right now, Kelvin.
    pub fn hotspot_gradient_k(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.cells_per_layer {
            let t = self.cell_temp(i);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        hi - lo
    }

    /// Largest die-cell spread observed over the whole run, Kelvin.
    pub fn peak_hotspot_gradient_k(&self) -> f64 {
        self.peak_hotspot_gradient_k
    }

    /// Hottest cell under core `core`'s footprint, Celsius.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index.
    pub fn core_temp_c(&self, core: usize) -> f64 {
        self.core_cells[core]
            .iter()
            .map(|&(cell, _)| self.cell_temp(cell))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Current per-core hotspot temperatures, Celsius.
    pub fn core_temps_c(&self) -> Vec<f64> {
        (0..self.core_cells.len())
            .map(|c| self.core_temp_c(c))
            .collect()
    }

    /// Peak per-core hotspot temperatures over the whole run, Celsius.
    pub fn peak_core_temps_c(&self) -> &[f64] {
        &self.peak_core_temps_c
    }

    /// Overall melt fraction: melted latent heat over total latent heat
    /// across all PCM cells (zero without a PCM layer).
    pub fn melt_fraction(&self) -> f64 {
        let mut melted = 0.0;
        let mut total = 0.0;
        for (i, phase) in self.phase.iter().enumerate() {
            if let Some(pc) = phase {
                let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                melted += (self.enthalpy_j[i] - h0).clamp(0.0, pc.latent_heat_j);
                total += pc.latent_heat_j;
            }
        }
        if total > 0.0 {
            melted / total
        } else {
            0.0
        }
    }

    /// Ambient temperature, Celsius.
    pub fn ambient_c(&self) -> f64 {
        self.params.ambient_c
    }

    /// Maximum safe cell temperature, Celsius.
    pub fn t_max_c(&self) -> f64 {
        self.params.t_max_c
    }

    /// Headroom of the hottest cell below the limit, Kelvin.
    pub fn headroom_k(&self) -> f64 {
        self.params.t_max_c - self.junction_temp_c()
    }

    /// True once the hottest cell has reached the limit.
    pub fn at_thermal_limit(&self) -> bool {
        self.junction_temp_c() >= self.params.t_max_c - 1e-9
    }

    /// Sprint energy budget from the current state, joules: remaining
    /// latent heat plus the sensible headroom of the die and PCM layers
    /// up to the limit (the grid analogue of the phone model's
    /// "16 joules").
    pub fn sprint_energy_budget_j(&self) -> f64 {
        let t_max = self.params.t_max_c;
        let mut budget = 0.0;
        // Die and phase-change cells only: the bulk of sensible layers
        // further down (spreaders, heatsinks) would dwarf the fast
        // storage that actually buffers a sprint.
        for i in 0..self.enthalpy_j.len() {
            if i >= self.cells_per_layer && self.phase[i].is_none() {
                continue;
            }
            let t = self.cell_temp(i);
            match &self.phase[i] {
                Some(pc) => {
                    let h0 = pc.melt_temp_c * self.capacity_j_per_k[i];
                    budget +=
                        (pc.latent_heat_j - (self.enthalpy_j[i] - h0)).clamp(0.0, pc.latent_heat_j);
                    if t < pc.melt_temp_c {
                        budget += (pc.melt_temp_c - t) * self.capacity_j_per_k[i];
                        budget += (t_max - pc.melt_temp_c) * pc.liquid_capacity_j_per_k;
                    } else {
                        budget += (t_max - t).max(0.0) * pc.liquid_capacity_j_per_k;
                    }
                }
                None => budget += (t_max - t).max(0.0) * self.capacity_j_per_k[i],
            }
        }
        budget
    }

    /// Total enthalpy stored in all cells, joules (for conservation
    /// checks together with [`Self::boundary_absorbed_j`]).
    pub fn total_stored_enthalpy_j(&self) -> f64 {
        self.enthalpy_j.iter().sum()
    }

    /// Cumulative energy absorbed by the ambient since construction,
    /// joules.
    pub fn boundary_absorbed_j(&self) -> f64 {
        self.boundary_absorbed_j
    }

    /// Resets every cell to ambient (PCM fully frozen) and clears the
    /// peak trackers.
    pub fn reset_to_ambient(&mut self) {
        let ambient = self.params.ambient_c;
        for i in 0..self.enthalpy_j.len() {
            // Ambient is below any melting point (validated), so the
            // solid branch applies.
            self.enthalpy_j[i] = ambient * self.capacity_j_per_k[i];
        }
        self.peak_hotspot_gradient_k = 0.0;
        for t in &mut self.peak_core_temps_c {
            *t = ambient;
        }
    }

    /// Advances the grid by `dt_s` seconds, sub-stepping for stability.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or not finite.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "dt must be finite and non-negative"
        );
        if dt_s > 0.0 {
            let steps = (dt_s / self.sub_step_s).ceil().max(1.0) as u64;
            let sub = dt_s / steps as f64;
            for _ in 0..steps {
                self.step_once(sub);
            }
            self.time_s += dt_s;
        }
        self.track_peaks();
    }

    /// One explicit sub-step: per-edge transfers are antisymmetric, so
    /// total enthalpy (cells + ambient bookkeeping) is conserved exactly.
    fn step_once(&mut self, dt: f64) {
        let n = self.enthalpy_j.len();
        for i in 0..n {
            self.scratch_temps[i] =
                cell_temp_of(self.enthalpy_j[i], self.capacity_j_per_k[i], &self.phase[i]);
            self.scratch_flows[i] = self.power_w[i];
        }
        for e in &self.edges {
            let q =
                (self.scratch_temps[e.a as usize] - self.scratch_temps[e.b as usize]) * e.g_w_per_k;
            self.scratch_flows[e.a as usize] -= q;
            self.scratch_flows[e.b as usize] += q;
        }
        let ambient = self.params.ambient_c;
        for &(i, g) in &self.sink {
            let q = (self.scratch_temps[i as usize] - ambient) * g;
            self.scratch_flows[i as usize] -= q;
            self.boundary_absorbed_j += q * dt;
        }
        for i in 0..n {
            self.enthalpy_j[i] += self.scratch_flows[i] * dt;
        }
    }

    fn track_peaks(&mut self) {
        self.peak_hotspot_gradient_k = self.peak_hotspot_gradient_k.max(self.hotspot_gradient_k());
        for core in 0..self.core_cells.len() {
            let t = self.core_temp_c(core);
            if t > self.peak_core_temps_c[core] {
                self.peak_core_temps_c[core] = t;
            }
        }
    }
}

/// Piecewise temperature-of-enthalpy (the enthalpy method), matching
/// [`crate::node::StorageNode`] with a 0 C reference.
fn cell_temp_of(enthalpy_j: f64, solid_capacity_j_per_k: f64, phase: &Option<CellPhase>) -> f64 {
    match phase {
        None => enthalpy_j / solid_capacity_j_per_k,
        Some(pc) => {
            let h0 = pc.melt_temp_c * solid_capacity_j_per_k;
            if enthalpy_j <= h0 {
                enthalpy_j / solid_capacity_j_per_k
            } else if enthalpy_j <= h0 + pc.latent_heat_j {
                pc.melt_temp_c
            } else {
                pc.melt_temp_c + (enthalpy_j - h0 - pc.latent_heat_j) / pc.liquid_capacity_j_per_k
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient_everywhere() {
        let g = GridThermalParams::hpca_like().build();
        for layer in 0..g.layer_count() {
            for y in 0..g.params().ny {
                for x in 0..g.params().nx {
                    assert!((g.cell_temp_c(layer, x, y) - 25.0).abs() < 1e-9);
                }
            }
        }
        assert_eq!(g.melt_fraction(), 0.0);
        assert_eq!(g.hotspot_gradient_k(), 0.0);
    }

    #[test]
    fn uniform_power_reaches_the_series_steady_state() {
        // Full-die core, lateral disabled by symmetry anyway: the grid
        // must settle at ambient + P * (sum of series resistances).
        let mut params = GridThermalParams::hpca_like().with_floorplan(Floorplan::full_die());
        params.layers = vec![
            GridLayer::sensible("die", 0.2, 10.0, 1.0),
            GridLayer::sensible("mid", 0.5, 10.0, 2.0),
            GridLayer::sensible("sink", 1.0, 10.0, 1.0),
        ];
        params.r_sink_ambient_k_per_w = 3.0;
        params.nx = 3;
        params.ny = 3;
        let mut g = params.build();
        g.set_chip_power_w(2.0);
        g.advance(200.0);
        let expected = 25.0 + 2.0 * (1.0 + 2.0 + 3.0);
        let got = g.junction_temp_c();
        assert!(
            (got - expected).abs() < 0.05,
            "expected {expected}, got {got}"
        );
        // Uniform power: no gradient.
        assert!(g.hotspot_gradient_k() < 1e-6);
    }

    #[test]
    fn concentrated_cores_form_a_hotspot() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_chip_power_w(16.0);
        g.advance(2.0);
        let gradient = g.hotspot_gradient_k();
        assert!(
            gradient > 3.0,
            "4x4 core array must produce a multi-degree gradient, got {gradient:.2} K"
        );
        assert!(g.junction_temp_c() > g.mean_die_temp_c() + 1.0);
    }

    #[test]
    fn fewer_active_cores_concentrate_the_same_power() {
        let mut all = GridThermalParams::hpca_like().build();
        let mut one = GridThermalParams::hpca_like().build();
        all.set_chip_power_w(4.0);
        one.set_active_cores(1);
        one.set_chip_power_w(4.0);
        all.advance(1.0);
        one.advance(1.0);
        assert!(
            one.junction_temp_c() > all.junction_temp_c() + 1.0,
            "4 W on one core must run hotter than on sixteen: {:.2} vs {:.2}",
            one.junction_temp_c(),
            all.junction_temp_c()
        );
    }

    #[test]
    fn energy_is_conserved() {
        let mut g = GridThermalParams::hpca_like().build();
        let e0 = g.total_stored_enthalpy_j();
        g.set_chip_power_w(16.0);
        g.advance(0.7);
        let injected = 16.0 * 0.7;
        let stored = g.total_stored_enthalpy_j() - e0;
        let absorbed = g.boundary_absorbed_j();
        assert!(
            (stored + absorbed - injected).abs() < 1e-9 * injected,
            "stored {stored} + absorbed {absorbed} != {injected}"
        );
    }

    #[test]
    fn pcm_layer_melts_and_budget_shrinks() {
        let mut g = GridThermalParams::hpca_like().build();
        let b0 = g.sprint_energy_budget_j();
        assert!(
            (13.0..20.0).contains(&b0),
            "cold budget {b0:.1} J should be near the paper's 16 J"
        );
        g.set_chip_power_w(16.0);
        g.advance(0.8);
        assert!(g.melt_fraction() > 0.0, "sprint heat must start the melt");
        assert!(g.sprint_energy_budget_j() < b0);
    }

    #[test]
    fn time_scaling_compresses_transients_only() {
        let mut base = GridThermalParams::hpca_like().build();
        let mut scaled = GridThermalParams::hpca_like().time_scaled(10.0).build();
        base.set_chip_power_w(8.0);
        scaled.set_chip_power_w(8.0);
        base.advance(1.0);
        scaled.advance(0.1);
        assert!(
            (base.junction_temp_c() - scaled.junction_temp_c()).abs() < 0.2,
            "10x compressed run at t/10 must match: {:.2} vs {:.2}",
            base.junction_temp_c(),
            scaled.junction_temp_c()
        );
    }

    #[test]
    fn reset_clears_state_and_peaks() {
        let mut g = GridThermalParams::hpca_like().build();
        g.set_chip_power_w(16.0);
        g.advance(1.0);
        assert!(g.peak_hotspot_gradient_k() > 0.0);
        g.reset_to_ambient();
        assert!((g.junction_temp_c() - 25.0).abs() < 1e-9);
        assert_eq!(g.peak_hotspot_gradient_k(), 0.0);
        assert_eq!(g.melt_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "limit must exceed ambient")]
    fn inverted_limits_rejected() {
        let mut p = GridThermalParams::hpca_like();
        p.t_max_c = 20.0;
        p.validate();
    }
}
