//! The shared rack thermal model and its per-node views.
//!
//! A rack is one [`GridThermal`] whose floorplan has one "core"
//! rectangle per *server* (see `GridThermalParams::rack` in
//! `sprint-thermal`). [`RackThermal`] wraps that grid in shared
//! ownership and hands out [`NodeThermalView`]s — one per server — each
//! of which implements the sprint loop's `ThermalModel` port:
//!
//! * a view's `set_chip_power_w` writes *its node's* power onto its
//!   floorplan rectangle (`GridThermal::set_core_power_w`), leaving
//!   every other node's injection alone;
//! * a view's `junction_temp_c` is the hottest cell under *its own*
//!   footprint (`GridThermal::core_temp_c`), not the rack-global
//!   hotspot — a node gates its sprint on its own silicon, while the
//!   cluster scheduler watches the rack-global reading;
//! * a view's `sprint_energy_budget_j` is the node's **nameplate**
//!   regional budget: the storage under its own footprint *at the
//!   rack's design (ambient-inlet) conditions*, captured once at
//!   commissioning. Server-local sprint governors are calibrated
//!   against nameplate inlet temperature — they carry no rack
//!   telemetry, which is Porto et al.'s premise: a node on a hot rack
//!   still *believes* it has its full budget, sprints into exhausted
//!   shared headroom, and trips the hardware failsafe. Live rack state
//!   belongs to the cluster scheduler (admission, deferral, shedding),
//!   not to the nodes: [`RackThermal::node_region_budget_j`] exposes
//!   the true, temperature-aware regional budget for exactly that use.
//!   On a cold rack the nameplate and live figures coincide bit-for-bit
//!   (the nameplate *is* the ambient-state reading), which is why the
//!   1-node equivalence against a standalone session still holds.
//!
//! # Time: the leader-advance rule
//!
//! Many sessions advance one grid, so `advance` cannot simply integrate
//! per call — N lockstep nodes would advance the rack N times per
//! window. Each view instead keeps its node's clock, and the *shared*
//! grid advances only when a view's clock moves past the furthest point
//! already integrated: in a lockstep round the first node to step (the
//! leader) advances the rack by exactly one window, and every other
//! node's `advance` lands on the already-integrated instant and does
//! nothing. Follower nodes' power updates therefore take effect with at
//! most one window of skew — the same reaction lag every other part of
//! the co-simulation loop already has. With a single node the leader
//! path runs every time and the view is *bit-for-bit* the standalone
//! backend (the cluster equivalence test pins this).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use sprint_core::thermal_model::ThermalModel;
use sprint_thermal::grid::GridThermal;
use sprint_thermal::pool::SolverPool;

/// Cross-node memo for batched follower catch-up: one node's replay of
/// `count` repeated `from + dt + dt + ...` clock additions, keyed
/// bitwise. Sleeping nodes in a fleet share bit-identical clocks (all
/// accumulate the same window length from zero by the same adds), so
/// the first node to replay a gap answers for every other node with
/// the same starting clock — an O(windows) loop becomes O(1) per
/// node. Purely a memo: the cached `to` is the exact value the loop
/// produced, and a lookup only applies when the keys match bitwise
/// and the result provably stays inside the follower regime.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FollowerReplayCache {
    /// Starting clock, bits (bitwise key).
    pub from: u64,
    /// Per-step interval, bits (bitwise key).
    pub dt: u64,
    /// Steps replayed.
    pub count: u64,
    /// Resulting clock after `count` repeated adds.
    pub to: f64,
}

/// The shared state behind every view of one rack.
#[derive(Debug)]
struct RackShared {
    grid: GridThermal,
    /// Per-node simulated clocks, seconds.
    node_time_s: Vec<f64>,
    /// Memoized follower replay (see [`FollowerReplayCache`]).
    replay_cache: Option<FollowerReplayCache>,
    /// How far the grid has been integrated, seconds. Kept separately
    /// from the grid's own clock so lockstep leaders advance by their
    /// exact window length (re-deriving the lead from the grid clock
    /// would pick up sub-stepping round-off and break bit equality
    /// with a standalone backend).
    advanced_to_s: f64,
    /// Per-node regional sprint budgets at commissioning (the rack at
    /// ambient), joules — the *nameplate* figure node-local governors
    /// are calibrated against (see the module docs).
    nameplate_budget_j: Vec<f64>,
}

/// A rack thermal model shared by many node sessions.
///
/// Cloning is shallow: clones view the same underlying grid.
#[derive(Debug, Clone)]
pub struct RackThermal {
    shared: Rc<RefCell<RackShared>>,
}

impl RackThermal {
    /// Wraps a grid whose floorplan carries one core rectangle per
    /// server node.
    ///
    /// # Panics
    ///
    /// Panics if the grid's floorplan is empty.
    /// Panics if the grid has already been advanced: commissioning
    /// captures the nameplate budgets, which must be the ambient-state
    /// readings (pass a freshly built grid).
    pub fn new(grid: GridThermal) -> Self {
        let nodes = grid.params().floorplan.core_count();
        assert!(nodes >= 1, "a rack needs at least one node");
        assert!(
            grid.time_s() == 0.0,
            "racks are commissioned from a freshly built (ambient) grid: \
             the nameplate budgets must be the ambient-state readings"
        );
        // Nameplate calibration: the regional budgets as commissioned,
        // i.e. with the whole rack at ambient — the reading a
        // standalone cold backend would report bit-for-bit.
        let nameplate_budget_j = (0..nodes).map(|n| grid.region_sprint_budget_j(n)).collect();
        Self {
            shared: Rc::new(RefCell::new(RackShared {
                grid,
                node_time_s: vec![0.0; nodes],
                replay_cache: None,
                advanced_to_s: 0.0,
                nameplate_budget_j,
            })),
        }
    }

    /// Number of server nodes (floorplan cores).
    pub fn nodes(&self) -> usize {
        self.shared.borrow().node_time_s.len()
    }

    /// The `ThermalModel` view for node `node`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_view(&self, node: usize) -> NodeThermalView {
        assert!(node < self.nodes(), "node index out of range");
        NodeThermalView {
            shared: Rc::clone(&self.shared),
            node,
        }
    }

    /// Runs `f` against the underlying grid (read-only inspection:
    /// temperatures, gradients, stored energy).
    pub fn with_grid<R>(&self, f: impl FnOnce(&GridThermal) -> R) -> R {
        f(&self.shared.borrow().grid)
    }

    /// Rack-global hottest server cell, Celsius — what the cluster
    /// scheduler (not any single node) reacts to.
    pub fn junction_temp_c(&self) -> f64 {
        self.shared.borrow().grid.junction_temp_c()
    }

    /// Rack-global headroom below the limit, Kelvin.
    pub fn headroom_k(&self) -> f64 {
        let s = self.shared.borrow();
        s.grid.t_max_c() - s.grid.junction_temp_c()
    }

    /// Writes each node's current hotspot temperature into `out`
    /// (non-allocating; the scheduler polls this every window).
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals the node count.
    pub fn node_temps_c_into(&self, out: &mut [f64]) {
        self.shared.borrow().grid.core_temps_c_into(out);
    }

    /// One node's *live*, temperature-aware regional sprint budget,
    /// joules — the rack-telemetry reading the cluster scheduler may
    /// act on (node-local governors only ever see the nameplate figure;
    /// see the module docs).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_region_budget_j(&self, node: usize) -> f64 {
        self.shared.borrow().grid.region_sprint_budget_j(node)
    }

    /// One node's nameplate regional budget, joules (constant after
    /// commissioning).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_nameplate_budget_j(&self, node: usize) -> f64 {
        self.shared.borrow().nameplate_budget_j[node]
    }

    /// How far the rack has been integrated, seconds.
    pub fn time_s(&self) -> f64 {
        self.shared.borrow().advanced_to_s
    }

    /// The rack's current inlet-air (ambient) temperature, Celsius.
    pub fn inlet_c(&self) -> f64 {
        self.shared.borrow().grid.ambient_c()
    }

    /// Sets the rack's inlet-air temperature — the facility settlement
    /// hook (`sprint-facility`): row-level airflow recirculation raises
    /// a rack's inlet air as its row's exhaust heat exceeds the CRAC
    /// capacity, coupling racks that share nothing else. Takes effect
    /// on the next `advance`; the nameplate budgets are untouched (they
    /// are commissioning-time constants by design — a hot row is
    /// precisely the telemetry node-local governors cannot see).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite inlet or one at/above the thermal limit.
    pub fn set_inlet_c(&self, inlet_c: f64) {
        self.shared.borrow_mut().grid.set_ambient_c(inlet_c);
    }

    /// Installs a shared ADI sweep pool into the underlying grid — the
    /// cross-rack batch seam: a facility worker shard creates one
    /// [`SolverPool`] and installs it into every rack it owns, so one
    /// set of parked workers services the whole shard's sweeps instead
    /// of each rack spawning its own. Byte-identical at any lane count
    /// (see `sprint_thermal::pool`), so sharing cannot perturb a trace.
    pub fn share_solver_pool(&self, pool: Arc<SolverPool>) {
        self.shared.borrow_mut().grid.install_solver_pool(pool);
    }
}

/// One node's `ThermalModel` view of the shared rack (see the module
/// docs for the mapping and the leader-advance rule).
#[derive(Debug, Clone)]
pub struct NodeThermalView {
    shared: Rc<RefCell<RackShared>>,
    node: usize,
}

impl NodeThermalView {
    /// The node index this view maps onto.
    pub fn node(&self) -> usize {
        self.node
    }
}

impl ThermalModel for NodeThermalView {
    fn set_chip_power_w(&mut self, watts: f64) {
        self.shared
            .borrow_mut()
            .grid
            .set_core_power_w(self.node, watts);
    }

    fn set_active_core_count(&mut self, cores: usize) {
        // A server sprints as a unit: its whole floorplan rectangle
        // carries whatever power it dissipates. Within-node core
        // placement is below this model's resolution.
        let _ = cores;
    }

    fn advance(&mut self, dt_s: f64) {
        let mut s = self.shared.borrow_mut();
        let t = s.node_time_s[self.node];
        let target = t + dt_s;
        if t >= s.advanced_to_s {
            // Leader: this node's clock is at (or past) the integration
            // frontier, so the rack advances by exactly `dt_s`.
            if dt_s > 0.0 {
                s.grid.advance(dt_s);
            }
            s.advanced_to_s = target;
        } else if target > s.advanced_to_s {
            // Straggler overtaking the frontier (a node stepped with a
            // larger window): integrate only the uncovered remainder.
            let lead = target - s.advanced_to_s;
            s.grid.advance(lead);
            s.advanced_to_s = target;
        }
        // Follower inside the frontier: the interval is already
        // integrated (with this node's power as of the leader's pass).
        s.node_time_s[self.node] = target;
    }

    fn advance_many(&mut self, dt_s: f64, count: u64) {
        // Batched follower catch-up: one borrow for the whole run, with
        // per-iteration arithmetic identical to the looped `advance`
        // path (`t + dt_s` per step, never `count * dt_s` — the event
        // core's digests are pinned bit-for-bit against lockstep). The
        // moment an iteration would lead or overtake the frontier, the
        // grid must integrate, so bail to the per-call path for the
        // remainder.
        let mut remaining = count;
        {
            let mut s = self.shared.borrow_mut();
            let s = &mut *s;
            let node = self.node;
            let frontier = s.advanced_to_s;
            let t0 = s.node_time_s[node];
            // Cross-node memo (see `FollowerReplayCache`). Validity:
            // for `dt_s > 0` the clock is strictly increasing, so a
            // cached final clock at or inside the frontier proves
            // every intermediate step satisfied the follower
            // condition (`t < frontier` and `target <= frontier`) —
            // the loop below would have taken exactly these steps.
            if dt_s > 0.0 {
                if let Some(c) = s.replay_cache {
                    if c.from == t0.to_bits()
                        && c.dt == dt_s.to_bits()
                        && c.count == count
                        && c.to <= frontier
                    {
                        s.node_time_s[node] = c.to;
                        return;
                    }
                }
            }
            let mut t = t0;
            while remaining > 0 {
                let target = t + dt_s;
                if t >= frontier || target > frontier {
                    break;
                }
                t = target;
                remaining -= 1;
            }
            s.node_time_s[node] = t;
            if remaining == 0 && count > 0 && dt_s > 0.0 {
                s.replay_cache = Some(FollowerReplayCache {
                    from: t0.to_bits(),
                    dt: dt_s.to_bits(),
                    count,
                    to: t,
                });
            }
        }
        for _ in 0..remaining {
            self.advance(dt_s);
        }
    }

    fn junction_temp_c(&self) -> f64 {
        let s = self.shared.borrow();
        s.grid.core_temp_c(self.node)
    }

    fn headroom_k(&self) -> f64 {
        let s = self.shared.borrow();
        s.grid.t_max_c() - s.grid.core_temp_c(self.node)
    }

    fn melt_fraction(&self) -> f64 {
        // Phase state is a rack-wide property (a rack stack usually has
        // no PCM at all; one that does shares it).
        self.shared.borrow().grid.melt_fraction()
    }

    fn at_thermal_limit(&self) -> bool {
        let s = self.shared.borrow();
        s.grid.core_temp_c(self.node) >= s.grid.t_max_c() - 1e-9
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        // The *nameplate* budget, deliberately blind to the live rack
        // state: a server's governor is calibrated at commissioning
        // and has no rack telemetry (module docs). On a hot rack this
        // over-credits the node — it sprints into exhausted shared
        // headroom and the hardware failsafe catches it, which is the
        // unmanaged-rack failure mode admission control exists to
        // prevent.
        self.shared.borrow().nameplate_budget_j[self.node]
    }

    fn t_max_c(&self) -> f64 {
        self.shared.borrow().grid.t_max_c()
    }

    fn ambient_c(&self) -> f64 {
        self.shared.borrow().grid.ambient_c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_thermal::grid::GridThermalParams;

    fn rack2x2() -> RackThermal {
        RackThermal::new(GridThermalParams::rack(2, 2).build())
    }

    #[test]
    fn views_write_their_own_node_power() {
        let rack = rack2x2();
        let mut v0 = rack.node_view(0);
        let mut v3 = rack.node_view(3);
        v0.set_chip_power_w(16.0);
        v3.set_chip_power_w(1.0);
        rack.with_grid(|g| {
            assert_eq!(g.core_power_w(0), 16.0);
            assert_eq!(g.core_power_w(3), 1.0);
            assert_eq!(g.core_power_w(1), 0.0);
            assert_eq!(g.chip_power_w(), 17.0);
        });
    }

    #[test]
    fn lockstep_advances_the_rack_once_per_round() {
        let rack = rack2x2();
        let mut views: Vec<NodeThermalView> = (0..4).map(|n| rack.node_view(n)).collect();
        views[0].set_chip_power_w(8.0);
        for round in 1..=10 {
            for v in views.iter_mut() {
                v.advance(0.01);
            }
            let expected = 0.01 * round as f64;
            assert!(
                (rack.time_s() - expected).abs() < 1e-12,
                "round {round}: rack at {} not {expected}",
                rack.time_s()
            );
        }
        // The heated node's view is hotter than a far corner's.
        assert!(views[0].junction_temp_c() > views[3].junction_temp_c() + 0.1);
    }

    #[test]
    fn node_views_report_their_own_hotspot_not_the_rack_global() {
        let rack = rack2x2();
        let mut v0 = rack.node_view(0);
        let v3 = rack.node_view(3);
        v0.set_chip_power_w(16.0);
        v0.advance(5.0);
        let global = rack.junction_temp_c();
        assert!(
            (v0.junction_temp_c() - global).abs() < 1e-12,
            "the hot node is the global hotspot"
        );
        assert!(
            v3.junction_temp_c() < global - 0.5,
            "a cool node must not inherit the rack-global hotspot: {} vs {global}",
            v3.junction_temp_c()
        );
        assert!(v3.headroom_k() > v0.headroom_k() + 0.5);
    }

    #[test]
    fn scheduler_telemetry_sees_neighbour_heat_but_nameplate_does_not() {
        let rack = rack2x2();
        let mut v0 = rack.node_view(0);
        let v1 = rack.node_view(1);
        let cold_live = rack.node_region_budget_j(1);
        let nameplate = v1.sprint_energy_budget_j();
        assert_eq!(
            nameplate.to_bits(),
            cold_live.to_bits(),
            "at commissioning the nameplate is the live reading"
        );
        v0.set_chip_power_w(16.0);
        v0.advance(20.0);
        // The scheduler's live telemetry shrinks with shared heat…
        assert!(
            rack.node_region_budget_j(1) < cold_live,
            "shared heat must reach the live regional budget: {} vs {cold_live}",
            rack.node_region_budget_j(1)
        );
        // …while the node's own governor still sees its nameplate.
        assert_eq!(v1.sprint_energy_budget_j().to_bits(), nameplate.to_bits());
        assert_eq!(
            rack.node_nameplate_budget_j(1).to_bits(),
            nameplate.to_bits()
        );
    }
}
