//! The power-delivery side of the co-simulation loop (Section 6, wired
//! into the simulation).
//!
//! The paper's Section 6 analyzes whether a phone's electrical supply can
//! feed a 16 W sprint at all — conventional Li-ion cells cannot; hybrids
//! with an ultracapacitor can. [`PowerSupply`] brings that analysis into
//! the loop: every sampling window the
//! [`SprintSession`](crate::session::SprintSession) offers the window's
//! power draw to the supply, and a current limit or depleted store ends
//! the sprint exactly like an exhausted thermal budget (the controller
//! migrates threads to one core).
//!
//! Implementations are provided for [`sprint_powersource`]'s
//! [`Battery`], [`Ultracapacitor`] and [`HybridSupply`], for the
//! unconstrained [`IdealSupply`] (the seed behaviour), and for two
//! wrappers that compose over any inner supply: [`PinLimited`] (a
//! package pin-count ceiling) and [`Regulator`] (a voltage converter
//! with a load-dependent efficiency curve, so the upstream source sees
//! `demand / η(load)`).
//!
//! Like the thermal port, `PowerSupply` is a *port*: blanket
//! implementations for `&mut S` and `Box<S>` (including
//! `Box<dyn PowerSupply>`) mean a session need not own its supply — it
//! can borrow one, erase one, or (via a view type like
//! `sprint-cluster`'s per-node rack supply views) share one with many
//! other sessions.

use sprint_powersource::battery::{Battery, SupplyError};
use sprint_powersource::hybrid::HybridSupply;
use sprint_powersource::pins::PackagePins;
use sprint_powersource::ultracap::Ultracapacitor;

/// Relative tolerance for limit comparisons at a supply's advertised
/// boundary: a demand equal to `available_power_w()` must be accepted
/// even after floating-point round-trips through conversion math (the
/// [`Regulator`] divides by η and multiplies back).
pub const BOUNDARY_REL_TOL: f64 = 1e-9;

/// An electrical supply the sprint loop consults each sampling window.
pub trait PowerSupply {
    /// Draws `power_w` for `dt_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns the limiting condition *without drawing* when the demand
    /// exceeds a current limit or the remaining stored energy.
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError>;

    /// Peak power deliverable right now, watts.
    fn available_power_w(&self) -> f64;

    /// Stored energy remaining, joules (`f64::INFINITY` for unlimited
    /// sources).
    fn remaining_energy_j(&self) -> f64;

    /// Recharges during an idle interval of `dt_s` seconds, returning the
    /// energy transferred into the sprint store (joules). Sources without
    /// an inter-sprint recharge path return zero.
    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        let _ = dt_s;
        0.0
    }

    /// Recharges through `count` consecutive idle intervals of `dt_s`
    /// seconds each, returning the total energy gained (joules). The
    /// default is literally a loop of [`idle_recharge`] calls summed
    /// with `+=` in call order, so every supply satisfies the
    /// bit-for-bit contract by construction. Shared-state view types
    /// (the rack pool's per-node views) override it to amortize their
    /// per-call borrow, but only with arithmetic identical to the
    /// looped path — the event-driven cluster core's idle catch-up
    /// rides on this, and its digests are pinned byte-for-byte against
    /// the lockstep oracle.
    ///
    /// [`idle_recharge`]: PowerSupply::idle_recharge
    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        let mut gained = 0.0;
        for _ in 0..count {
            gained += self.idle_recharge(dt_s);
        }
        gained
    }
}

impl<S: PowerSupply + ?Sized> PowerSupply for &mut S {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        (**self).draw(power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        (**self).available_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        (**self).remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        (**self).idle_recharge(dt_s)
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        (**self).idle_recharge_many(dt_s, count)
    }
}

impl<S: PowerSupply + ?Sized> PowerSupply for Box<S> {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        (**self).draw(power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        (**self).available_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        (**self).remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        (**self).idle_recharge(dt_s)
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        (**self).idle_recharge_many(dt_s, count)
    }
}

/// The unconstrained supply: every draw succeeds. This reproduces the
/// seed's behaviour (no electrical model in the loop) and is the default
/// for [`ScenarioBuilder`](crate::session::ScenarioBuilder).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealSupply;

impl PowerSupply for IdealSupply {
    fn draw(&mut self, _power_w: f64, _dt_s: f64) -> Result<(), SupplyError> {
        Ok(())
    }

    fn available_power_w(&self) -> f64 {
        f64::INFINITY
    }

    fn remaining_energy_j(&self) -> f64 {
        f64::INFINITY
    }
}

impl PowerSupply for Battery {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        Battery::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        self.charge_j()
    }
}

impl PowerSupply for Ultracapacitor {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        Ultracapacitor::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        self.stored_j()
    }
}

impl PowerSupply for HybridSupply {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        HybridSupply::draw(self, power_w, dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.max_power_w()
    }

    fn remaining_energy_j(&self) -> f64 {
        // The store's *current stored* energy, not `sprint_capacity_j()`
        // (which reports the usable sprint capacity above the regulator
        // dropout, a different quantity): remaining energy must track
        // every joule the hybrid still holds, and must drop by exactly
        // what a draw removed.
        self.battery.charge_j() + self.cap.stored_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.recharge_between_sprints(dt_s)
    }
}

/// Layers a package pin-count ceiling (Section 6's 16 A / ~320-pin
/// analysis) over an inner supply: a draw must fit through the allocated
/// pins *and* be deliverable by the source behind them.
#[derive(Debug, Clone)]
pub struct PinLimited<S> {
    inner: S,
    pins: PackagePins,
    supply_v: f64,
    budget_fraction: f64,
}

impl<S: PowerSupply> PinLimited<S> {
    /// Wraps `inner` behind `pins`, delivering at `supply_v` volts with
    /// `budget_fraction` of the package's pins allocated to power.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive voltage or a fraction outside `(0, 1]`.
    pub fn new(inner: S, pins: PackagePins, supply_v: f64, budget_fraction: f64) -> Self {
        assert!(supply_v > 0.0, "supply voltage must be positive");
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "pin budget fraction must be in (0, 1]"
        );
        Self {
            inner,
            pins,
            supply_v,
            budget_fraction,
        }
    }

    /// The pin-side power ceiling, watts.
    pub fn pin_ceiling_w(&self) -> f64 {
        self.pins.max_power_w(self.supply_v, self.budget_fraction)
    }

    /// The wrapped supply.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PowerSupply> PowerSupply for PinLimited<S> {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        let ceiling = self.pin_ceiling_w();
        // Tolerance-consistent with `available_power_w`, which reports
        // exactly `ceiling`: drawing precisely the advertised available
        // power must succeed even after the request round-trips through
        // regulator conversion math (an up-and-back-down η division can
        // perturb the last few bits).
        if power_w > ceiling * (1.0 + BOUNDARY_REL_TOL) {
            return Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: ceiling,
            });
        }
        self.inner.draw(power_w.min(ceiling), dt_s)
    }

    fn available_power_w(&self) -> f64 {
        self.inner.available_power_w().min(self.pin_ceiling_w())
    }

    fn remaining_energy_j(&self) -> f64 {
        self.inner.remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.inner.idle_recharge(dt_s)
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        self.inner.idle_recharge_many(dt_s, count)
    }
}

/// A voltage regulator's load-dependent loss model (Section 6's
/// conversion-efficiency concern, made explicit).
///
/// Losses are the classic three-term switching-converter model:
///
/// ```text
/// loss(P) = fixed_loss_w  +  proportional_loss · P  +  resistive_loss · P² / rated_w
/// ```
///
/// * `fixed_loss_w` — gate drive and control overhead, paid even at
///   light load (this is what makes light-load efficiency poor);
/// * `proportional_loss` — switching losses that scale with the power
///   delivered;
/// * `resistive_loss` — conduction (I²R) losses, quadratic in load, so
///   efficiency droops again as the converter approaches its rating.
///
/// Upstream draw is `P + loss(P)`, so the efficiency
/// `η(P) = P / (P + loss(P))` has the familiar bathtub-inverted shape:
/// low at light load, peaking mid-range, sagging toward the rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyCurve {
    /// Fixed conversion overhead, watts.
    pub fixed_loss_w: f64,
    /// Loss fraction proportional to delivered power.
    pub proportional_loss: f64,
    /// Quadratic (conduction) loss coefficient at rated load.
    pub resistive_loss: f64,
    /// Rated output power the quadratic term is normalized to, watts.
    pub rated_w: f64,
}

impl EfficiencyCurve {
    /// A lossless pass-through (η = 1 at every load): composing a
    /// regulator with this curve is behaviour-identical to the bare
    /// inner supply.
    pub fn ideal() -> Self {
        Self {
            fixed_loss_w: 0.0,
            proportional_loss: 0.0,
            resistive_loss: 0.0,
            rated_w: 1.0,
        }
    }

    /// A server-class point-of-load VRM sized for one sprinting node
    /// (rated at `rated_w`): ~75% efficient at a 1 W sustained trickle,
    /// ~90% at a 16 W sprint — light-load overhead dominates idle
    /// nodes, conduction losses dominate sprinting ones.
    pub fn server_vrm(rated_w: f64) -> Self {
        Self {
            fixed_loss_w: 0.3,
            proportional_loss: 0.03,
            resistive_loss: 0.07,
            rated_w,
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on negative loss terms or a non-positive rating.
    pub fn validate(&self) {
        assert!(
            self.fixed_loss_w >= 0.0 && self.proportional_loss >= 0.0 && self.resistive_loss >= 0.0,
            "loss terms must be non-negative"
        );
        assert!(
            self.proportional_loss < 1.0,
            "proportional loss must stay below unity"
        );
        assert!(
            self.rated_w.is_finite() && self.rated_w > 0.0,
            "rated power must be positive and finite"
        );
        assert!(
            self.fixed_loss_w.is_finite()
                && self.proportional_loss.is_finite()
                && self.resistive_loss.is_finite(),
            "loss terms must be finite"
        );
    }

    /// Upstream power drawn from the source when delivering `power_w`
    /// downstream, watts.
    pub fn upstream_w(&self, power_w: f64) -> f64 {
        if power_w <= 0.0 {
            // An idle output still pays the fixed overhead.
            return self.fixed_loss_w;
        }
        power_w
            + self.fixed_loss_w
            + self.proportional_loss * power_w
            + self.resistive_loss * power_w * power_w / self.rated_w
    }

    /// Conversion efficiency delivering `power_w` downstream.
    pub fn efficiency_at(&self, power_w: f64) -> f64 {
        if power_w <= 0.0 {
            return 0.0;
        }
        power_w / self.upstream_w(power_w)
    }

    /// Largest downstream power deliverable from `upstream_w` of input,
    /// watts — the inverse of [`upstream_w`](Self::upstream_w), used to
    /// convert an upstream limit back into chip-side terms.
    pub fn downstream_w(&self, upstream_w: f64) -> f64 {
        if !upstream_w.is_finite() {
            return upstream_w;
        }
        let budget = upstream_w - self.fixed_loss_w;
        if budget <= 0.0 {
            return 0.0;
        }
        let linear = 1.0 + self.proportional_loss;
        if self.resistive_loss == 0.0 {
            return budget / linear;
        }
        // Solve r/rated · P² + (1 + k) · P − budget = 0 for P ≥ 0.
        let a = self.resistive_loss / self.rated_w;
        let disc = linear * linear + 4.0 * a * budget;
        (disc.sqrt() - linear) / (2.0 * a)
    }
}

/// Layers a conversion stage with a load-dependent [`EfficiencyCurve`]
/// over an inner supply: a downstream demand of `P` draws
/// `P / η(P) = P + loss(P)` from the source behind it. This is how a
/// node hangs off a shared rack bus (`sprint-cluster`'s `RackSupply`)
/// — the pool sees regulated, lossy draws, not raw chip power.
#[derive(Debug, Clone)]
pub struct Regulator<S> {
    inner: S,
    curve: EfficiencyCurve,
}

impl<S: PowerSupply> Regulator<S> {
    /// Wraps `inner` behind a conversion stage with `curve`.
    ///
    /// # Panics
    ///
    /// Panics if the curve fails validation.
    pub fn new(inner: S, curve: EfficiencyCurve) -> Self {
        curve.validate();
        Self { inner, curve }
    }

    /// The loss model.
    pub fn curve(&self) -> &EfficiencyCurve {
        &self.curve
    }

    /// The wrapped supply.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped supply.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: PowerSupply> PowerSupply for Regulator<S> {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        match self.inner.draw(self.curve.upstream_w(power_w), dt_s) {
            Ok(()) => Ok(()),
            // Report limits in chip-side (downstream) terms: the
            // controller compares them against chip power.
            Err(SupplyError::CurrentLimit { available_w, .. }) => Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: self.curve.downstream_w(available_w),
            }),
            Err(e) => Err(e),
        }
    }

    fn available_power_w(&self) -> f64 {
        self.curve.downstream_w(self.inner.available_power_w())
    }

    fn remaining_energy_j(&self) -> f64 {
        // Upstream joules: what the source still holds. Converting to
        // deliverable joules would need the future load profile (η is
        // load-dependent), so the honest figure is the stored one.
        self.inner.remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.inner.idle_recharge(dt_s)
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        self.inner.idle_recharge_many(dt_s, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_supply_never_limits() {
        let mut s = IdealSupply;
        assert!(s.draw(1e9, 1e3).is_ok());
        assert_eq!(s.remaining_energy_j(), f64::INFINITY);
    }

    #[test]
    fn phone_battery_rejects_a_sprint_window() {
        let mut b = Battery::phone_li_ion();
        assert!(matches!(
            PowerSupply::draw(&mut b, 16.0, 1e-6),
            Err(SupplyError::CurrentLimit { .. })
        ));
        assert!(PowerSupply::draw(&mut b, 1.0, 1e-6).is_ok());
    }

    #[test]
    fn hybrid_sustains_windows_and_recharges() {
        let mut h = HybridSupply::phone();
        let e0 = h.remaining_energy_j();
        for _ in 0..1000 {
            PowerSupply::draw(&mut h, 16.0, 1e-3).expect("hybrid covers 16 W windows");
        }
        assert!(h.remaining_energy_j() < e0);
        assert!(h.idle_recharge(30.0) > 0.0, "battery refills the cap");
    }

    #[test]
    fn hybrid_window_draws_do_not_count_sprints() {
        let mut h = HybridSupply::phone();
        PowerSupply::draw(&mut h, 16.0, 1e-3).unwrap();
        assert_eq!(h.sprints_served(), 0);
        h.sprint(16.0, 0.1).unwrap();
        assert_eq!(h.sprints_served(), 1);
    }

    #[test]
    fn pin_limit_caps_an_otherwise_strong_source() {
        // A 1 V rail through 30% of an A4-class package: ~79 pairs -> 7.9 W.
        let mut s = PinLimited::new(IdealSupply, PackagePins::apple_a4(), 1.0, 0.3);
        assert!(s.pin_ceiling_w() < 16.0);
        assert!(matches!(
            s.draw(16.0, 1e-6),
            Err(SupplyError::CurrentLimit { .. })
        ));
        assert!(s.draw(s.pin_ceiling_w() * 0.9, 1e-6).is_ok());
    }

    #[test]
    fn hybrid_remaining_energy_tracks_draws_exactly() {
        // Regression: `remaining_energy_j` once summed the battery
        // charge with the cap's *usable sprint capacity* (the energy
        // above the regulator dropout) instead of its stored energy,
        // so the reported total did not drop by what a draw removed.
        let mut h = HybridSupply::phone();
        let e0 = h.remaining_energy_j();
        assert_eq!(
            e0.to_bits(),
            (h.battery.charge_j() + h.cap.stored_j()).to_bits(),
            "remaining energy is battery charge plus the store's stored energy"
        );
        // Drain well into the cap's share (16 W forces a cap draw).
        PowerSupply::draw(&mut h, 16.0, 1.0).expect("hybrid covers a 16 W second");
        let e1 = h.remaining_energy_j();
        assert!(
            e1 < e0 - 15.9,
            "the sum must drop by (at least) the energy drawn: {e0} -> {e1}"
        );
        // The drop equals the draw plus the cap's leakage — never less.
        assert!(e0 - e1 < 16.1, "but not by much more: {e0} -> {e1}");
        // Drain the sprint store to the dropout: remaining energy still
        // counts the below-dropout joules the cap physically holds.
        while h.sprint_capacity_j() > 0.5 {
            h.cap.draw(20.0, 0.1).unwrap();
        }
        assert!(
            h.remaining_energy_j() > h.battery.charge_j(),
            "a drained-to-dropout cap still stores energy"
        );
    }

    #[test]
    fn pin_limit_boundary_draw_is_tolerance_consistent() {
        // Regression: `draw` rejected with a strict `>` against the
        // exact ceiling `available_power_w` advertises, so drawing
        // precisely the advertised power could fail after FP round-trip
        // through regulator math.
        let mut s = PinLimited::new(IdealSupply, PackagePins::apple_a4(), 1.0, 0.3);
        let advertised = s.available_power_w();
        assert_eq!(advertised.to_bits(), s.pin_ceiling_w().to_bits());
        s.draw(advertised, 1e-6)
            .expect("drawing exactly the advertised available power must succeed");
        // A round-trip through a conversion curve and back perturbs the
        // last bits; the boundary must absorb that.
        let curve = EfficiencyCurve::server_vrm(20.0);
        let round_trip = curve.downstream_w(curve.upstream_w(advertised));
        s.draw(round_trip, 1e-6)
            .expect("an η round-trip of the boundary draw must succeed");
        // A draw clearly above the ceiling still fails.
        assert!(matches!(
            s.draw(advertised * 1.001, 1e-6),
            Err(SupplyError::CurrentLimit { .. })
        ));
    }

    #[test]
    fn efficiency_curve_has_the_bathtub_shape() {
        let c = EfficiencyCurve::server_vrm(20.0);
        c.validate();
        let light = c.efficiency_at(1.0);
        let mid = c.efficiency_at(8.0);
        let sprint = c.efficiency_at(16.0);
        assert!((0.70..0.80).contains(&light), "light load ~75%: {light}");
        assert!(mid > light && mid > 0.9, "mid load peaks: {mid}");
        assert!(sprint > 0.88 && sprint < mid, "rating droop: {sprint}");
        // Upstream is always demand plus a positive loss.
        assert!(c.upstream_w(16.0) > 16.0);
        assert_eq!(c.upstream_w(0.0), c.fixed_loss_w);
    }

    #[test]
    fn efficiency_curve_inverts_exactly() {
        let c = EfficiencyCurve::server_vrm(20.0);
        for p in [0.25, 1.0, 7.3, 16.0, 20.0] {
            let back = c.downstream_w(c.upstream_w(p));
            assert!(
                (back - p).abs() < 1e-9,
                "downstream(upstream({p})) = {back}"
            );
        }
        assert_eq!(c.downstream_w(f64::INFINITY), f64::INFINITY);
        assert_eq!(c.downstream_w(0.1), 0.0, "below the fixed overhead");
        let ideal = EfficiencyCurve::ideal();
        assert_eq!(ideal.upstream_w(5.0), 5.0);
        assert_eq!(ideal.downstream_w(5.0), 5.0);
        assert_eq!(ideal.efficiency_at(5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_rated_power_rejected() {
        // Regression: an infinite rating passed validation but made
        // `downstream_w` divide 0 by 0 (NaN) on the resistive branch,
        // and NaN availability poisons every limit comparison.
        Regulator::new(
            IdealSupply,
            EfficiencyCurve {
                fixed_loss_w: 0.0,
                proportional_loss: 0.0,
                resistive_loss: 0.1,
                rated_w: f64::INFINITY,
            },
        );
    }

    #[test]
    fn regulator_draws_lossy_upstream_power() {
        let mut r = Regulator::new(
            Battery::high_discharge_li_po(),
            EfficiencyCurve::server_vrm(20.0),
        );
        let e0 = r.remaining_energy_j();
        r.draw(16.0, 1.0).expect("li-po covers a regulated sprint");
        let drawn = e0 - r.remaining_energy_j();
        let expected = r.curve().upstream_w(16.0);
        assert!(
            (drawn - expected).abs() < 1e-9,
            "upstream drew {drawn}, expected {expected}"
        );
        assert!(drawn > 17.0, "losses add to the 16 J demand: {drawn}");
    }

    #[test]
    fn regulator_reports_limits_in_chip_terms() {
        // The phone cell tops out near 10 W; behind a lossy regulator
        // the chip-side figure must be *lower* than the cell's.
        let mut r = Regulator::new(Battery::phone_li_ion(), EfficiencyCurve::server_vrm(20.0));
        let cell_w = Battery::phone_li_ion().max_power_w();
        assert!(r.available_power_w() < cell_w);
        match r.draw(16.0, 1e-3) {
            Err(SupplyError::CurrentLimit {
                requested_w,
                available_w,
            }) => {
                assert_eq!(requested_w, 16.0, "chip-side request");
                assert!(available_w < cell_w, "chip-side availability");
            }
            other => panic!("expected a current limit, got {other:?}"),
        }
        // An ideal curve is behaviour-identical to the bare supply.
        let mut ideal = Regulator::new(IdealSupply, EfficiencyCurve::ideal());
        assert!(ideal.draw(1e9, 1.0).is_ok());
        assert_eq!(ideal.available_power_w(), f64::INFINITY);
    }

    #[test]
    fn supply_port_blanket_impls_forward() {
        fn takes_port<S: PowerSupply>(s: &mut S) -> f64 {
            s.draw(1.0, 1.0).unwrap();
            s.remaining_energy_j()
        }
        let mut owned = Battery::high_discharge_li_po();
        let full = owned.charge_j();
        // &mut: the caller keeps the drained battery.
        takes_port(&mut &mut owned);
        assert!(owned.charge_j() < full);
        // Box<dyn>: object-safe erasure.
        let mut boxed: Box<dyn PowerSupply> = Box::new(Battery::high_discharge_li_po());
        let left = takes_port(&mut boxed);
        assert!((full - left - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pin_limit_passes_inner_errors_through() {
        let mut s = PinLimited::new(
            Battery::phone_li_ion(),
            PackagePins::qualcomm_msm8660(),
            3.7,
            0.5,
        );
        // Pins allow it (plenty at 3.7 V), but the cell's discharge limit
        // does not.
        assert!(matches!(
            s.draw(16.0, 1e-6),
            Err(SupplyError::CurrentLimit { available_w, .. }) if available_w < 11.0
        ));
    }
}
