//! `feature` — SURF-style feature extraction, after MEVBench.
//!
//! Four phases: (1) integral-image row prefix sums, (2) column prefix
//! sums (strided traffic), (3) Hessian box-filter responses at two scales
//! with local-maximum detection (the data-dependent feature set), and
//! (4) descriptor extraction over the detected features, distributed
//! dynamically through a shared task queue (task stealing à la the paper's
//! runtime). The kernel is memory-intensive — integral-image traffic is
//! 4 bytes per pixel per pass — which is why the paper finds `feature`
//! limited by memory bandwidth at high core counts.

use std::sync::Arc;

use sprint_archsim::isa::{Op, OpClass};
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::{textured_image, GrayImage};
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Maximum features carried into the descriptor phase.
pub const MAX_FEATURES: usize = 512;
/// Box-filter scales (in pixels) for the Hessian responses.
pub const SCALES: [usize; 2] = [3, 5];

/// A detected interest point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeaturePoint {
    /// Pixel x.
    pub x: u32,
    /// Pixel y.
    pub y: u32,
    /// Hessian response.
    pub response: f32,
}

/// Computes the integral image (inclusive 2D prefix sums).
pub fn integral_image(img: &GrayImage) -> Vec<u32> {
    let (w, h) = (img.width, img.height);
    let mut integral = vec![0u32; w * h];
    for y in 0..h {
        let mut row_sum = 0u32;
        for x in 0..w {
            row_sum += u32::from(img.at(x, y));
            integral[y * w + x] = row_sum + if y > 0 { integral[(y - 1) * w + x] } else { 0 };
        }
    }
    integral
}

#[inline]
fn box_sum(integral: &[u32], w: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
    // Inclusive box [x0..=x1] x [y0..=y1]; caller guarantees margins >= 1.
    let a = i64::from(integral[(y0 - 1) * w + (x0 - 1)]);
    let b = i64::from(integral[(y0 - 1) * w + x1]);
    let c = i64::from(integral[y1 * w + (x0 - 1)]);
    let d = i64::from(integral[y1 * w + x1]);
    d - b - c + a
}

/// Hessian determinant response at `(x, y)` and box scale `s`.
pub fn hessian_response(integral: &[u32], w: usize, x: usize, y: usize, s: usize) -> f32 {
    let sum = |x0: usize, y0: usize, x1: usize, y1: usize| box_sum(integral, w, x0, y0, x1, y1);
    // Dxx: [left | -2*mid | right] boxes of width s, height 2s+1.
    let dxx = sum(x - s, y - s, x - 1, y + s) - 2 * sum(x, y - s, x, y + s) * s as i64
        + sum(x + 1, y - s, x + s, y + s);
    let dyy = sum(x - s, y - s, x + s, y - 1) - 2 * sum(x - s, y, x + s, y) * s as i64
        + sum(x - s, y + 1, x + s, y + s);
    let dxy = sum(x - s, y - s, x - 1, y - 1) + sum(x + 1, y + 1, x + s, y + s)
        - sum(x + 1, y - s, x + s, y - 1)
        - sum(x - s, y + 1, x - 1, y + s);
    let norm = 1.0 / (s * s) as f32;
    let (dxx, dyy, dxy) = (dxx as f32 * norm, dyy as f32 * norm, dxy as f32 * norm);
    dxx * dyy - 0.81 * dxy * dxy
}

/// Detects interest points: thresholded local maxima of the multi-scale
/// Hessian response.
pub fn detect_features(img: &GrayImage, threshold: f32) -> Vec<FeaturePoint> {
    let (w, h) = (img.width, img.height);
    let integral = integral_image(img);
    let margin = SCALES[SCALES.len() - 1] + 2;
    let mut features = Vec::new();
    for y in margin..h - margin {
        for x in margin..w - margin {
            let r: f32 = SCALES
                .iter()
                .map(|&s| hessian_response(&integral, w, x, y, s))
                .sum();
            if r > threshold {
                // 3x3 local maximum at the base scale.
                let mut is_max = true;
                'nb: for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let nr: f32 = SCALES
                            .iter()
                            .map(|&s| {
                                hessian_response(
                                    &integral,
                                    w,
                                    (x as i32 + dx) as usize,
                                    (y as i32 + dy) as usize,
                                    s,
                                )
                            })
                            .sum();
                        if nr > r {
                            is_max = false;
                            break 'nb;
                        }
                    }
                }
                if is_max {
                    features.push(FeaturePoint {
                        x: x as u32,
                        y: y as u32,
                        response: r,
                    });
                }
            }
        }
    }
    features.sort_by(|a, b| b.response.total_cmp(&a.response));
    features.truncate(MAX_FEATURES);
    features
}

struct FeatureData {
    width: usize,
    height: usize,
    features: Vec<FeaturePoint>,
    input: Region,
    integral: Region,
    responses: Region,
    descriptors: Region,
    queue: std::sync::atomic::AtomicU32,
}

/// The feature-extraction workload.
pub struct FeatureWorkload {
    data: Arc<FeatureData>,
}

impl std::fmt::Debug for FeatureWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureWorkload")
            .field("width", &self.data.width)
            .field("height", &self.data.height)
            .field("features", &self.data.features.len())
            .finish_non_exhaustive()
    }
}

impl FeatureWorkload {
    /// Builds the workload at a standard size (C ≈ an HD frame, matching
    /// the paper's "largest input size (HD image, bar C)" for `feature`).
    pub fn new(size: InputSize) -> Self {
        // Sized so the C-class integral image (~5 MB of u32) exceeds the
        // 4 MB LLC: every pass streams from memory, reproducing the
        // paper's finding that `feature` is bandwidth-limited.
        let scale = (size.scale() as f64).sqrt();
        let w = (640.0 * scale) as usize;
        let h = (512.0 * scale) as usize;
        Self::with_dims(w, h, 0xFEA7)
    }

    /// Builds the workload for explicit dimensions.
    pub fn with_dims(width: usize, height: usize, seed: u64) -> Self {
        let img = textured_image(width, height, seed);
        let features = detect_features(&img, 2_000.0);
        let mut mem = AddressSpace::new();
        let input = mem.alloc_bytes((width * height) as u64);
        let integral = mem.alloc_bytes((width * height * 4) as u64);
        let responses = mem.alloc_bytes((width * height * 4) as u64);
        let descriptors = mem.alloc_bytes((MAX_FEATURES * 64 * 4) as u64);
        Self {
            data: Arc::new(FeatureData {
                width,
                height,
                features,
                input,
                integral,
                responses,
                descriptors,
                queue: std::sync::atomic::AtomicU32::new(0),
            }),
        }
    }

    /// The natively detected features.
    pub fn features(&self) -> &[FeaturePoint] {
        &self.data.features
    }
}

impl Workload for FeatureWorkload {
    fn name(&self) -> &'static str {
        "feature"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        let queue = machine.create_task_queue(self.data.features.len() as u32);
        self.data
            .queue
            .store(queue, std::sync::atomic::Ordering::Relaxed);
        for t in 0..threads {
            machine.spawn(Box::new(FeatureKernel::new(
                self.data.clone(),
                t,
                threads,
                queue,
            )));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.width * self.data.height) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    RowPrefix,
    ColPrefix,
    Hessian,
    Descriptors,
    AwaitTask,
    Finished,
}

struct FeatureKernel {
    data: Arc<FeatureData>,
    #[allow(dead_code)]
    tid: usize,
    queue: u32,
    phase: Phase,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    cursor: usize,
}

impl FeatureKernel {
    fn new(data: Arc<FeatureData>, tid: usize, threads: usize, queue: u32) -> Self {
        let rows = chunk_range(data.height, threads, tid);
        let cols = chunk_range(data.width, threads, tid);
        Self {
            cursor: rows.start,
            rows,
            cols,
            data,
            tid,
            queue,
            phase: Phase::RowPrefix,
        }
    }
}

impl Kernel for FeatureKernel {
    fn step(&mut self, _tid: ThreadId, inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        let d = &self.data;
        let (w, _h) = (d.width, d.height);
        match self.phase {
            Phase::RowPrefix => {
                // One image row per step-chunk: read u8 row, write u32 row.
                for _ in 0..4 {
                    if self.cursor >= self.rows.end {
                        break;
                    }
                    let y = self.cursor as u64;
                    emit::load_span(out, d.input, y * w as u64, w as u64);
                    emit::store_span(out, d.integral, y * (w as u64) * 4, (w as u64) * 4);
                    emit::compute(out, OpClass::IntAlu, 2 * w as u64);
                    self.cursor += 1;
                }
                if self.cursor >= self.rows.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::ColPrefix;
                    self.cursor = self.cols.start;
                }
                KernelStatus::Running
            }
            Phase::ColPrefix => {
                // Column blocks of 16: strided down the integral image —
                // one line per row touched, the bandwidth-hungry phase.
                let x0 = self.cursor;
                if x0 >= self.cols.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::Hessian;
                    self.cursor = self.rows.start;
                    return KernelStatus::Running;
                }
                let x1 = (x0 + 16).min(self.cols.end);
                for y in 0..d.height as u64 {
                    let off = (y * w as u64 + x0 as u64) * 4;
                    emit::load_span(out, d.integral, off, ((x1 - x0) * 4) as u64);
                    emit::store_span(out, d.integral, off, ((x1 - x0) * 4) as u64);
                }
                emit::compute(out, OpClass::IntAlu, (d.height * (x1 - x0)) as u64);
                self.cursor = x1;
                KernelStatus::Running
            }
            Phase::Hessian => {
                if self.cursor >= self.rows.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::Descriptors;
                    return KernelStatus::Running;
                }
                let y = self.cursor as u64;
                let margin = SCALES[SCALES.len() - 1] + 2;
                if (self.cursor >= margin) && (self.cursor < d.height - margin) {
                    // Box-filter corner rows at y±s for both scales, plus
                    // the response row store.
                    for x0 in (0..w).step_by(16) {
                        let len = 16.min(w - x0) as u64;
                        for &s in &SCALES {
                            for dy in [-(s as i64), 0, s as i64] {
                                let row = (y as i64 + dy) as u64;
                                emit::load_span(
                                    out,
                                    d.integral,
                                    (row * w as u64 + x0 as u64) * 4,
                                    len * 4,
                                );
                            }
                        }
                        emit::store_span(out, d.responses, (y * w as u64 + x0 as u64) * 4, len * 4);
                        emit::element_mix(out, len, 22 * SCALES.len() as u64, 4, 2);
                    }
                }
                self.cursor += 1;
                KernelStatus::Running
            }
            Phase::Descriptors => {
                out.push(Op::FetchTask { queue: self.queue });
                self.phase = Phase::AwaitTask;
                KernelStatus::Running
            }
            Phase::AwaitTask => {
                let reply = inbox.task.expect("descriptor phase awaits a task reply");
                match reply.task {
                    Some(idx) => {
                        let f = d.features[idx as usize % d.features.len()];
                        // 4x4 subregions x 16 samples around the point:
                        // scattered rows of the integral image.
                        for dy in -8i64..8 {
                            let row = (i64::from(f.y) + dy).clamp(0, d.height as i64 - 1) as u64;
                            let x0 = (i64::from(f.x) - 8).max(0) as u64;
                            emit::load_span(out, d.integral, (row * w as u64 + x0) * 4, 16 * 4);
                        }
                        emit::compute(out, OpClass::FpAlu, 400);
                        emit::store_span(
                            out,
                            d.descriptors,
                            u64::from(idx) % ((MAX_FEATURES as u64 - 1) * 256),
                            256,
                        );
                        out.push(Op::FetchTask { queue: self.queue });
                        KernelStatus::Running
                    }
                    None => {
                        out.push(Op::Barrier);
                        self.phase = Phase::Finished;
                        KernelStatus::Done
                    }
                }
            }
            Phase::Finished => KernelStatus::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn integral_image_matches_brute_force() {
        let img = textured_image(24, 16, 5);
        let integral = integral_image(&img);
        for (x, y) in [(0, 0), (5, 3), (23, 15)] {
            let mut expected = 0u32;
            for yy in 0..=y {
                for xx in 0..=x {
                    expected += u32::from(img.at(xx, yy));
                }
            }
            assert_eq!(integral[y * 24 + x], expected, "at ({x},{y})");
        }
    }

    #[test]
    fn features_found_on_textured_image() {
        let w = FeatureWorkload::with_dims(160, 120, 3);
        assert!(
            !w.features().is_empty(),
            "textured image must yield interest points"
        );
        assert!(w.features().len() <= MAX_FEATURES);
        // Sorted by response, strongest first.
        for pair in w.features().windows(2) {
            assert!(pair[0].response >= pair[1].response);
        }
    }

    #[test]
    fn flat_image_yields_no_features() {
        let img = GrayImage {
            width: 64,
            height: 64,
            pixels: vec![128; 64 * 64],
        };
        assert!(detect_features(&img, 2_000.0).is_empty());
    }

    #[test]
    fn workload_runs_all_phases() {
        let w = FeatureWorkload::with_dims(128, 96, 3);
        let nfeat = w.features().len() as u64;
        assert!(nfeat > 0);
        let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
        w.setup(&mut m, 4);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // Three phase barriers plus the final one.
        assert_eq!(m.stats().barrier_episodes, 4);
        assert!(m.stats().llc_misses > 0, "integral passes must miss");
    }
}
