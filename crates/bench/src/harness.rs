//! The experiment harness shared by the `repro` binary and the Criterion
//! benches: standard machine/thermal instantiations and run drivers.
//!
//! # Time scaling
//!
//! The paper simulates up to 16 billion instructions per run; to keep
//! whole-figure reproduction in minutes, our workload inputs are sized so
//! runs take 10⁷–10⁸ cycles, and the thermal model is compressed by
//! [`TIME_COMPRESS`] so the ratio of sprint capacity to task length
//! matches the paper's two design points (the paper itself applies the
//! same trick by shrinking the PCM 100× for its limited configuration).

use sprint_archsim::config::MachineConfig;
use sprint_core::config::SprintConfig;
use sprint_core::session::{RunReport, ScenarioBuilder};
use sprint_thermal::phone::{PhoneThermal, PhoneThermalParams};
use sprint_workloads::suite::{loaded_machine, suite_loader, InputSize, WorkloadKind};

/// Thermal time compression applied to workload experiments, chosen so the
/// limited ("1.5 mg") design's sprint covers a substantial fraction of a
/// 16-core run — the same capacity-to-task ratio regime as the paper's
/// Figure 7.
pub const TIME_COMPRESS: f64 = 15.0;

/// The two PCM provisioning points of Section 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalDesign {
    /// Fully-provisioned PCM ("150 mg"): sprints outlast the tasks.
    FullPcm,
    /// 100x-reduced PCM ("1.5 mg"): sprints exhaust mid-task.
    LimitedPcm,
}

impl ThermalDesign {
    /// Figure label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ThermalDesign::FullPcm => "150mg",
            ThermalDesign::LimitedPcm => "1.5mg",
        }
    }

    /// Builds the (time-compressed) thermal model.
    pub fn build(&self) -> PhoneThermal {
        let params = match self {
            ThermalDesign::FullPcm => PhoneThermalParams::hpca(),
            ThermalDesign::LimitedPcm => PhoneThermalParams::limited(),
        };
        params.time_scaled(TIME_COMPRESS).build()
    }
}

/// Outcome of one coupled run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Completion time, seconds (simulated).
    pub time_s: f64,
    /// Dynamic energy, joules.
    pub energy_j: f64,
    /// When the sprint ended, if it did.
    pub sprint_end_s: Option<f64>,
    /// Peak junction temperature, Celsius.
    pub max_junction_c: f64,
    /// Whether the run completed.
    pub finished: bool,
}

impl From<RunReport> for Outcome {
    fn from(r: RunReport) -> Self {
        Self {
            time_s: r.completion_s,
            energy_j: r.energy_j,
            sprint_end_s: r.sprint_end_s,
            max_junction_c: r.max_junction_c,
            finished: r.finished,
        }
    }
}

/// Runs a suite workload under a sprint configuration and thermal design,
/// with `threads` kernel threads on a 16-core (or larger) chip.
pub fn run_coupled(
    kind: WorkloadKind,
    size: InputSize,
    threads: usize,
    config: SprintConfig,
    design: ThermalDesign,
) -> Outcome {
    let cores = threads.max(16);
    let mut machine_cfg = MachineConfig::hpca().with_cores(cores);
    // The paper's DVFS comparison is *idealized*: performance scales with
    // frequency across the whole system, not just the core clock.
    if matches!(
        config.mode,
        sprint_core::config::ExecutionMode::DvfsSprint { .. }
    ) {
        machine_cfg.idealized_dvfs_memory = true;
    }
    let mut session = ScenarioBuilder::new()
        .machine(machine_cfg)
        .load(suite_loader(kind, size, threads))
        .thermal(design.build())
        .config(config)
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    session.report().into()
}

/// Runs a workload at fixed voltage/frequency on `cores` cores with one
/// thread per core and *no* thermal termination — the Figure 10/11 setup
/// ("parallel speedup with varying core counts at fixed voltage and
/// frequency").
pub fn run_fixed_cores(kind: WorkloadKind, size: InputSize, cores: usize) -> Outcome {
    run_fixed_cores_with(kind, size, cores, false)
}

/// [`run_fixed_cores`] with optionally doubled memory bandwidth (the
/// Section 8.5 what-if).
pub fn run_fixed_cores_with(
    kind: WorkloadKind,
    size: InputSize,
    cores: usize,
    doubled_bandwidth: bool,
) -> Outcome {
    let mut cfg = MachineConfig::hpca().with_cores(cores);
    if doubled_bandwidth {
        cfg.memory = cfg.memory.with_doubled_bandwidth();
    }
    let mut machine = loaded_machine(kind, size, cfg, cores);
    let mut windows: u64 = 0;
    while !machine.all_done() {
        machine.run_window(1_000_000);
        windows += 1;
        assert!(windows < 100_000_000, "workload run never finished");
    }
    Outcome {
        time_s: machine.time_s(),
        energy_j: machine.stats().dynamic_energy_j,
        sprint_end_s: None,
        max_junction_c: f64::NAN,
        finished: true,
    }
}

/// The single-core non-sprinting baseline every figure normalizes to.
pub fn run_baseline(kind: WorkloadKind, size: InputSize) -> Outcome {
    run_coupled(
        kind,
        size,
        16,
        SprintConfig::hpca_sustained(),
        ThermalDesign::FullPcm,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_sprint_beats_baseline_on_sobel() {
        let base = run_baseline(WorkloadKind::Sobel, InputSize::A);
        let sprint = run_coupled(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            SprintConfig::hpca_parallel(),
            ThermalDesign::FullPcm,
        );
        assert!(base.finished && sprint.finished);
        let speedup = base.time_s / sprint.time_s;
        assert!(speedup > 6.0, "sobel sprint speedup {speedup:.1}");
    }

    #[test]
    fn limited_design_is_slower_than_full() {
        let full = run_coupled(
            WorkloadKind::Kmeans,
            InputSize::A,
            16,
            SprintConfig::hpca_parallel(),
            ThermalDesign::FullPcm,
        );
        let limited = run_coupled(
            WorkloadKind::Kmeans,
            InputSize::A,
            16,
            SprintConfig::hpca_parallel(),
            ThermalDesign::LimitedPcm,
        );
        assert!(
            limited.time_s >= full.time_s,
            "limited PCM cannot be faster: {:.4} vs {:.4}",
            limited.time_s,
            full.time_s
        );
    }

    #[test]
    fn fixed_core_run_reports_energy() {
        let o = run_fixed_cores(WorkloadKind::Segment, InputSize::A, 4);
        assert!(o.finished);
        assert!(o.energy_j > 0.0);
    }
}
