//! Shared last-level cache with a co-located full-map directory.
//!
//! The paper models "a shared 4MB 16-way last-level cache with 20 cycle hit
//! latency" and "a standard invalidation-based cache coherence protocol
//! with the directory co-located with the last-level cache". The LLC is
//! inclusive: evicting an LLC line back-invalidates any L1 copies.

use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;

/// Directory/LLC metadata for one resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Line number.
    pub line: u64,
    /// Bitmask of cores holding the line in their L1 (bit per core).
    pub sharers: u64,
    /// Core holding the line Modified/Exclusive, if any.
    pub owner: Option<u8>,
    /// Whether the LLC copy is dirty with respect to memory.
    pub dirty: bool,
}

/// An LLC victim that must be handled by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcVictim {
    /// The displaced line's directory entry (sharers need back-invalidation
    /// and dirty data needs a memory writeback).
    pub entry: DirEntry,
}

/// The shared LLC + directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Llc {
    sets: usize,
    ways: usize,
    set_mask: u64,
    /// Per-slot entry; `line == u64::MAX` marks an empty way.
    entries: Vec<DirEntry>,
    stamps: Vec<u64>,
    tick: u64,
}

const EMPTY: u64 = u64::MAX;

impl Llc {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Builds an empty LLC with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        let slots = sets * cfg.ways;
        Self {
            sets,
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            entries: vec![
                DirEntry {
                    line: EMPTY,
                    sharers: 0,
                    owner: None,
                    dirty: false,
                };
                slots
            ],
            stamps: vec![0; slots],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn find(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        (0..self.ways)
            .map(|w| set * self.ways + w)
            .find(|&s| self.entries[s].line == line)
    }

    /// Looks up a line, updating LRU. Returns a mutable handle to its
    /// directory entry.
    pub fn lookup_mut(&mut self, line: u64) -> Option<&mut DirEntry> {
        let slot = self.find(line)?;
        self.tick += 1;
        self.stamps[slot] = self.tick;
        Some(&mut self.entries[slot])
    }

    /// Reads a line's directory entry without touching LRU.
    pub fn probe(&self, line: u64) -> Option<&DirEntry> {
        self.find(line).map(|s| &self.entries[s])
    }

    /// Inserts a freshly-fetched line; returns the victim entry if a
    /// resident line was displaced (caller back-invalidates its sharers
    /// and writes back dirty data).
    pub fn insert(&mut self, entry: DirEntry) -> Option<LlcVictim> {
        debug_assert_ne!(entry.line, EMPTY);
        debug_assert!(self.find(entry.line).is_none(), "line already resident");
        let set = self.set_of(entry.line);
        let mut victim_slot = set * self.ways;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = set * self.ways + w;
            if self.entries[s].line == EMPTY {
                victim_slot = s;
                break;
            }
            if self.stamps[s] < victim_stamp {
                victim_stamp = self.stamps[s];
                victim_slot = s;
            }
        }
        let victim = if self.entries[victim_slot].line != EMPTY {
            Some(LlcVictim {
                entry: self.entries[victim_slot],
            })
        } else {
            None
        };
        self.tick += 1;
        self.entries[victim_slot] = entry;
        self.stamps[victim_slot] = self.tick;
        victim
    }

    /// Removes a line (used when handling inclusive-eviction bookkeeping in
    /// tests); returns its entry.
    pub fn remove(&mut self, line: u64) -> Option<DirEntry> {
        let slot = self.find(line)?;
        let entry = self.entries[slot];
        self.entries[slot].line = EMPTY;
        self.entries[slot].sharers = 0;
        self.entries[slot].owner = None;
        self.entries[slot].dirty = false;
        Some(entry)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.entries.iter().filter(|e| e.line != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        // 2 sets x 2 ways.
        Llc::new(&CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 20,
        })
    }

    fn entry(line: u64) -> DirEntry {
        DirEntry {
            line,
            sharers: 0b1,
            owner: None,
            dirty: false,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut llc = tiny();
        llc.insert(entry(4));
        assert!(llc.lookup_mut(4).is_some());
        assert!(llc.lookup_mut(6).is_none());
    }

    #[test]
    fn sharer_updates_persist() {
        let mut llc = tiny();
        llc.insert(entry(4));
        llc.lookup_mut(4).unwrap().sharers |= 0b10;
        assert_eq!(llc.probe(4).unwrap().sharers, 0b11);
    }

    #[test]
    fn eviction_returns_victim_directory_state() {
        let mut llc = tiny();
        let mut a = entry(0);
        a.dirty = true;
        a.sharers = 0b101;
        llc.insert(a);
        llc.insert(entry(2));
        let _ = llc.lookup_mut(2); // make line 0 LRU
        let victim = llc.insert(entry(4)).expect("set full");
        assert_eq!(victim.entry.line, 0);
        assert!(victim.entry.dirty);
        assert_eq!(victim.entry.sharers, 0b101);
    }

    #[test]
    fn remove_clears_slot() {
        let mut llc = tiny();
        llc.insert(entry(4));
        assert!(llc.remove(4).is_some());
        assert!(llc.probe(4).is_none());
        assert_eq!(llc.resident_lines(), 0);
    }
}
