//! `kmeans` — partition-based clustering, parallelized OpenMP-style.
//!
//! Lloyd's algorithm: assign each point to its nearest centroid, then
//! recompute centroids, iterating until assignments stabilize. The assign
//! phase is compute-dense (k x dim distance arithmetic per 32-byte point),
//! so kmeans scales to high core counts; the centroid reduction introduces
//! two barriers per iteration and a short serial section, exercising the
//! runtime's PAUSE-on-barrier behaviour.

use std::sync::Arc;

use sprint_archsim::isa::{Op, OpClass};
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::clustered_points;
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Dimensionality of each point (8 f32 = 32 bytes: two points per line).
pub const DIM: usize = 8;
/// Number of clusters.
pub const K: usize = 8;
/// Iteration cap (the paper's runs converge quickly on clustered data).
pub const MAX_ITERS: usize = 8;

/// Result of the native clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Final centroids, `K x DIM`.
    pub centroids: Vec<f32>,
    /// Iterations performed (data-dependent).
    pub iterations: usize,
    /// Final assignment of each point.
    pub assignment: Vec<u16>,
}

/// Runs Lloyd's k-means natively.
pub fn kmeans_native(points: &[f32], n: usize) -> KmeansResult {
    assert_eq!(points.len(), n * DIM, "point buffer size mismatch");
    assert!(n >= K, "need at least K points");
    let mut centroids: Vec<f32> = points[..K * DIM].to_vec();
    let mut assignment = vec![0u16; n];
    let mut iterations = 0;
    for _ in 0..MAX_ITERS {
        iterations += 1;
        let mut changed = false;
        // Assign.
        for i in 0..n {
            let mut best = 0u16;
            let mut best_d = f32::INFINITY;
            for c in 0..K {
                let mut d = 0.0f32;
                for k in 0..DIM {
                    let diff = points[i * DIM + k] - centroids[c * DIM + k];
                    d += diff * diff;
                }
                if d < best_d {
                    best_d = d;
                    best = c as u16;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0f64; K * DIM];
        let mut counts = [0u32; K];
        for i in 0..n {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for k in 0..DIM {
                sums[c * DIM + k] += f64::from(points[i * DIM + k]);
            }
        }
        for c in 0..K {
            if counts[c] > 0 {
                for k in 0..DIM {
                    centroids[c * DIM + k] = (sums[c * DIM + k] / f64::from(counts[c])) as f32;
                }
            }
        }
        if !changed {
            break;
        }
    }
    KmeansResult {
        centroids,
        iterations,
        assignment,
    }
}

struct KmeansData {
    n: usize,
    iterations: usize,
    points: Region,
    centroids: Region,
    partials: Region,
}

/// The kmeans workload.
pub struct KmeansWorkload {
    data: Arc<KmeansData>,
    result: KmeansResult,
}

impl std::fmt::Debug for KmeansWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KmeansWorkload")
            .field("n", &self.data.n)
            .field("iterations", &self.data.iterations)
            .finish_non_exhaustive()
    }
}

impl KmeansWorkload {
    /// Builds the workload at a standard input size (A = 8k points,
    /// doubling per class).
    pub fn new(size: InputSize) -> Self {
        Self::with_points(8_000 * size.scale(), 0x4B_EA15)
    }

    /// Builds the workload with an explicit point count.
    pub fn with_points(n: usize, seed: u64) -> Self {
        let points = clustered_points(n, DIM, K, seed);
        let result = kmeans_native(&points, n);
        let mut mem = AddressSpace::new();
        let points_r = mem.alloc_bytes((n * DIM * 4) as u64);
        let centroids_r = mem.alloc_bytes((K * DIM * 4) as u64);
        // Per-thread partial sums: sized for the maximum thread count.
        let partials_r = mem.alloc_bytes((64 * K * DIM * 4) as u64);
        Self {
            data: Arc::new(KmeansData {
                n,
                iterations: result.iterations,
                points: points_r,
                centroids: centroids_r,
                partials: partials_r,
            }),
            result,
        }
    }

    /// The native clustering result.
    pub fn result(&self) -> &KmeansResult {
        &self.result
    }
}

impl Workload for KmeansWorkload {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        for t in 0..threads {
            machine.spawn(Box::new(KmeansKernel::new(self.data.clone(), t, threads)));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.n * self.data.iterations) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Load centroids, stream points, compute distances.
    Assign,
    /// Store partial sums, barrier, (thread 0) reduce, barrier.
    StorePartials,
    Reduce,
    IterEnd,
    Finished,
}

struct KmeansKernel {
    data: Arc<KmeansData>,
    tid: usize,
    threads: usize,
    range: std::ops::Range<usize>,
    iter: usize,
    phase: Phase,
    next_point: usize,
}

impl KmeansKernel {
    fn new(data: Arc<KmeansData>, tid: usize, threads: usize) -> Self {
        let range = chunk_range(data.n, threads, tid);
        Self {
            data,
            tid,
            threads,
            next_point: range.start,
            range,
            iter: 0,
            phase: Phase::Assign,
        }
    }
}

impl Kernel for KmeansKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        let d = &self.data;
        match self.phase {
            Phase::Assign => {
                if self.next_point == self.range.start {
                    // Read the shared centroids (coherence traffic: all
                    // threads load what thread 0 last wrote).
                    emit::load_span(out, d.centroids, 0, (K * DIM * 4) as u64);
                }
                // Process a block of up to 32 points.
                let start = self.next_point;
                let end = (start + 32).min(self.range.end);
                let points = (end - start) as u64;
                emit::load_span(
                    out,
                    d.points,
                    (start * DIM * 4) as u64,
                    points * (DIM * 4) as u64,
                );
                // Distance arithmetic: K x DIM multiply-adds (x2 flops)
                // plus a compare per centroid.
                emit::compute(out, OpClass::FpAlu, points * (K * DIM * 2) as u64);
                emit::compute(out, OpClass::Branch, points * K as u64);
                emit::compute(out, OpClass::IntAlu, points * 4);
                self.next_point = end;
                if self.next_point >= self.range.end {
                    self.phase = Phase::StorePartials;
                }
                KernelStatus::Running
            }
            Phase::StorePartials => {
                // Write this thread's partial sums and meet the barrier.
                emit::store_span(
                    out,
                    d.partials,
                    (self.tid * K * DIM * 4) as u64,
                    (K * DIM * 4) as u64,
                );
                out.push(Op::Barrier);
                self.phase = Phase::Reduce;
                KernelStatus::Running
            }
            Phase::Reduce => {
                if self.tid == 0 {
                    // Serial reduction over all partials, then publish the
                    // new centroids.
                    emit::load_span(out, d.partials, 0, (self.threads * K * DIM * 4) as u64);
                    emit::compute(
                        out,
                        OpClass::FpAlu,
                        (self.threads * K * DIM) as u64 + (K * DIM) as u64,
                    );
                    emit::store_span(out, d.centroids, 0, (K * DIM * 4) as u64);
                }
                out.push(Op::Barrier);
                self.phase = Phase::IterEnd;
                KernelStatus::Running
            }
            Phase::IterEnd => {
                self.iter += 1;
                if self.iter >= d.iterations {
                    self.phase = Phase::Finished;
                    return KernelStatus::Done;
                }
                self.next_point = self.range.start;
                self.phase = Phase::Assign;
                KernelStatus::Running
            }
            Phase::Finished => KernelStatus::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn native_kmeans_recovers_clusters() {
        let n = 800;
        let points = clustered_points(n, DIM, K, 42);
        let r = kmeans_native(&points, n);
        assert!(r.iterations >= 2, "clustered data needs a few iterations");
        assert!(r.iterations <= MAX_ITERS);
        // Points generated round-robin from K blobs: points i and i+K come
        // from the same blob and should (almost always) share a cluster.
        let mut agree = 0;
        for i in 0..n - K {
            if r.assignment[i] == r.assignment[i + K] {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / (n - K) as f64 > 0.9,
            "cluster structure must be recovered: {agree}/{}",
            n - K
        );
    }

    #[test]
    fn workload_executes_expected_barriers() {
        let w = KmeansWorkload::with_points(600, 1);
        let iters = w.result().iterations as u64;
        let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
        w.setup(&mut m, 4);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // Two barriers per iteration.
        assert_eq!(m.stats().barrier_episodes, 2 * iters);
        assert!(m.stats().fp_alu > 600 * (K * DIM * 2) as u64);
    }

    #[test]
    fn kmeans_scales_well() {
        let elapsed = |threads: usize| -> u64 {
            let w = KmeansWorkload::with_points(4_000, 1);
            let mut m = Machine::new(MachineConfig::hpca().with_cores(threads));
            w.setup(&mut m, threads);
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = elapsed(1);
        let t8 = elapsed(8);
        let speedup = t1 as f64 / t8 as f64;
        assert!(speedup > 5.0, "kmeans should scale: {speedup:.2}");
    }
}
