//! Computational sprinting: the paper's primary contribution.
//!
//! This crate implements the sprint *mechanism* of Raghavan et al.'s
//! *Computational Sprinting* (HPCA 2012): briefly exceeding a mobile
//! chip's sustainable thermal budget by an order of magnitude — activating
//! up to 16 otherwise-dark cores — to compress a burst of computation,
//! then migrating back to a single core to cool down.
//!
//! The pieces map directly onto the paper's Section 7 design:
//!
//! * [`budget::ThermalBudget`] — the activity-based estimator that
//!   integrates dissipated energy against the package's joule capacity.
//! * [`controller::SprintController`] — activation ramp, sprint
//!   termination (thread migration to one core) and the hardware
//!   frequency-throttle failsafe.
//! * [`system::SprintSystem`] — the coupled architecture ⇄ thermal
//!   co-simulation (energy sampled every 1000 cycles drives the RC
//!   network, exactly as in Section 8.1).
//! * [`config::SprintConfig`] — the paper's three configurations:
//!   sustained, 16-core parallel sprint, and idealized DVFS sprint.
//!
//! # Quick start
//!
//! ```
//! use sprint_archsim::{Machine, MachineConfig, SyntheticKernel};
//! use sprint_core::config::SprintConfig;
//! use sprint_core::system::SprintSystem;
//! use sprint_thermal::phone::PhoneThermalParams;
//!
//! // 16 threads of bursty work on a 16-core chip.
//! let mut machine = Machine::new(MachineConfig::hpca());
//! for t in 0..16u64 {
//!     machine.spawn(Box::new(SyntheticKernel::new(32, 5_000, (t + 1) << 26, 0)));
//! }
//! // Thermal model compressed 1000x so this doc-test runs instantly.
//! let thermal = PhoneThermalParams::hpca().time_scaled(1000.0).build();
//! let report = SprintSystem::new(machine, thermal, SprintConfig::hpca_parallel()).run();
//! assert!(report.finished);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod conceptual;
pub mod config;
pub mod controller;
pub mod metrics;
pub mod system;

pub use budget::ThermalBudget;
pub use config::{AbortPolicy, BudgetEstimator, ExecutionMode, PacingPolicy, SprintConfig};
pub use controller::{ControllerEvent, SprintController, SprintState};
pub use metrics::{arithmetic_mean, geometric_mean, Comparison};
pub use system::{RunReport, RunSample, SprintSystem};
