//! The sprint controller: activation, termination and the failsafe.
//!
//! Implements Section 7's mechanism split: *software* starts the sprint
//! when parallelism is available and migrates threads to a single core
//! when capacity nears exhaustion; *hardware* tracks the energy budget
//! and, as a last resort, throttles the clock so the chip stays under the
//! sustainable TDP even if migration is late.

use serde::{Deserialize, Serialize};
use sprint_archsim::dvfs::OperatingPoint;
use sprint_archsim::machine::Machine;

use crate::budget::ThermalBudget;
use crate::config::{AbortPolicy, BudgetEstimator, ExecutionMode, HotspotPolicy, SprintConfig};
use crate::thermal_model::ThermalModel;

/// Controller state (Figure 2's execution phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SprintState {
    /// Cores are activating along the gradual ramp.
    Ramping,
    /// Sprinting above TDP.
    Sprinting,
    /// Sprint over; all work multiplexed on one core at nominal frequency.
    Sustained,
    /// Hardware failsafe engaged: frequency throttled to fit TDP.
    Throttled,
}

/// Events the controller reports upward for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerEvent {
    /// Sprint began (cores active).
    SprintStarted {
        /// Active core count.
        cores: usize,
    },
    /// Budget estimator ended the sprint; threads migrated.
    SprintEnded {
        /// Time of the decision, seconds.
        at_s: f64,
        /// Budget fraction spent at the decision.
        spent_fraction: f64,
    },
    /// Hardware failsafe throttled the clock.
    FailsafeThrottled {
        /// Time, seconds.
        at_s: f64,
    },
    /// The hotspot throttle shed sprinting cores because the hottest
    /// cell approached the thermal limit
    /// ([`HotspotPolicy::ShedCores`]). The sprint continues at reduced
    /// width instead of hard-aborting.
    HotspotShed {
        /// Time of the decision, seconds.
        at_s: f64,
        /// Core count before the shed.
        from_cores: usize,
        /// Core count after the shed.
        to_cores: usize,
        /// Hotspot headroom at the decision, Kelvin.
        headroom_k: f64,
    },
    /// The electrical supply could not deliver the sprint's power
    /// (Section 6: current limit or depleted store); the sprint ended.
    SupplyLimited {
        /// Time of the decision, seconds.
        at_s: f64,
        /// Power the chip demanded, watts.
        requested_w: f64,
        /// Power the supply could deliver, watts (zero when depleted).
        available_w: f64,
    },
}

/// The sprint controller. Drives a [`Machine`] according to thermal state.
#[derive(Debug)]
pub struct SprintController {
    config: SprintConfig,
    state: SprintState,
    budget: ThermalBudget,
    ramp_remaining_s: f64,
    events: Vec<ControllerEvent>,
    sprint_end_s: Option<f64>,
    /// Ratcheting core ceiling imposed by the hotspot throttle: starts
    /// unbounded, only ever decreases within a burst.
    hotspot_cap: usize,
}

impl SprintController {
    /// Creates a controller and applies the initial operating mode to the
    /// machine (sustained runs start on one core; sprints start ramping).
    pub fn new<T: ThermalModel + ?Sized>(
        config: SprintConfig,
        thermal: &T,
        machine: &mut Machine,
    ) -> Self {
        config.validate();
        let capacity = thermal.sprint_energy_budget_j().max(1e-9);
        let budget = ThermalBudget::new(capacity, config.tdp_w);
        let mut ctl = Self {
            state: SprintState::Ramping,
            budget,
            ramp_remaining_s: config.activation_ramp_s,
            events: Vec::new(),
            sprint_end_s: None,
            hotspot_cap: usize::MAX,
            config,
        };
        match ctl.config.mode {
            ExecutionMode::Sustained => {
                machine.set_active_cores(1);
                machine.set_operating_point(1.0, 1.0);
                ctl.state = SprintState::Sustained;
            }
            ExecutionMode::ParallelSprint { cores } => {
                // During the ramp the machine runs on one core; remaining
                // cores come up when the ramp completes (the 128 µs ramp
                // is negligible against the sprint, Section 5.3).
                machine.set_active_cores(1);
                machine.set_operating_point(1.0, 1.0);
                ctl.events.push(ControllerEvent::SprintStarted { cores });
            }
            ExecutionMode::DvfsSprint { .. } => {
                machine.set_active_cores(1);
                let p = ctl.config.mode.sprint_operating_point();
                machine.set_operating_point(p.frequency_multiplier, p.energy_multiplier);
                ctl.events.push(ControllerEvent::SprintStarted { cores: 1 });
            }
        }
        ctl
    }

    /// Current state.
    pub fn state(&self) -> SprintState {
        self.state
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[ControllerEvent] {
        &self.events
    }

    /// When the sprint ended (seconds), if it has.
    pub fn sprint_end_s(&self) -> Option<f64> {
        self.sprint_end_s
    }

    /// Remaining budget fraction.
    pub fn budget_remaining_fraction(&self) -> f64 {
        1.0 - self.budget.spent_fraction()
    }

    /// Advances the controller by one sampling window: accounts energy,
    /// checks the budget and thermal failsafe, and reconfigures the
    /// machine on transitions.
    pub fn step<T: ThermalModel + ?Sized>(
        &mut self,
        thermal: &T,
        window_energy_j: f64,
        window_s: f64,
        now_s: f64,
        machine: &mut Machine,
    ) {
        match self.state {
            SprintState::Ramping => {
                self.budget.record(window_energy_j, window_s);
                self.ramp_remaining_s -= window_s;
                if self.ramp_remaining_s <= 0.0 {
                    let start = self.config.mode.sprint_cores();
                    machine.set_active_cores(
                        self.config
                            .pacing
                            .cores_at(start, self.budget.spent_fraction()),
                    );
                    self.state = SprintState::Sprinting;
                }
            }
            SprintState::Sprinting => {
                self.budget.record(window_energy_j, window_s);
                // One headroom read serves the hotspot throttle, the
                // shed event and the oracle estimator below: on grid
                // backends each read is a junction query, and the
                // ShedCores hot path used to issue up to three per
                // window.
                let headroom_k = thermal.headroom_k();
                // Pacing: step intensity down as the budget depletes.
                let start = self.config.mode.sprint_cores();
                let paced = self
                    .config
                    .pacing
                    .cores_at(start, self.budget.spent_fraction());
                // Hotspot throttle: shed cores as the hottest cell
                // approaches the limit, ratcheting within the burst.
                if self.config.hotspot != HotspotPolicy::HardAbort {
                    let cap = self.config.hotspot.max_cores_at(start, headroom_k);
                    if cap < self.hotspot_cap {
                        self.hotspot_cap = cap;
                        // Record the shed only when it actually lowers
                        // the running width (pacing may already be
                        // below the new cap).
                        let to_cores = paced.min(cap);
                        if to_cores < machine.active_cores() {
                            self.events.push(ControllerEvent::HotspotShed {
                                at_s: now_s,
                                from_cores: machine.active_cores(),
                                to_cores,
                                headroom_k,
                            });
                        }
                    }
                }
                let target = paced.min(self.hotspot_cap);
                if target != machine.active_cores() && machine.live_threads() > 0 {
                    machine.set_active_cores(target);
                }
                let exhausted = match self.config.estimator {
                    BudgetEstimator::EnergyAccounting => {
                        self.budget.nearly_exhausted(self.config.budget_margin)
                    }
                    BudgetEstimator::OracleTemperature => {
                        let guard =
                            self.config.budget_margin * (thermal.t_max_c() - thermal.ambient_c());
                        headroom_k <= guard
                    }
                };
                if thermal.at_thermal_limit() {
                    // Failsafe: the estimator missed (or margin too thin);
                    // hardware throttles below TDP immediately.
                    self.engage_failsafe(now_s, machine);
                } else if exhausted && machine.live_threads() > 0 {
                    self.end_sprint(now_s, machine);
                } else if machine.all_done() {
                    self.sprint_end_s.get_or_insert(now_s);
                }
            }
            SprintState::Throttled => {
                // Stay throttled until the junction recovers some headroom,
                // then complete the migration (or remain throttled under
                // the ThrottleOnly ablation policy).
                if thermal.headroom_k() > 1.0
                    && self.config.abort_policy == AbortPolicy::MigrateToSingleCore
                {
                    self.end_sprint(now_s, machine);
                }
            }
            SprintState::Sustained => {}
        }
    }

    /// Ends an in-flight sprint on an *external* decision — a cluster
    /// scheduler revoking a node's sprint admission as shared thermal
    /// headroom shrinks, an operator, a watchdog. While ramping or
    /// sprinting this is exactly the budget-exhaustion migration
    /// (threads move to one core, a [`ControllerEvent::SprintEnded`] is
    /// recorded); in any other state it is a no-op. Within a burst the
    /// demotion is final, like every sprint end: the next
    /// `begin_burst` re-arms against the then-current thermal state.
    pub fn preempt(&mut self, now_s: f64, machine: &mut Machine) {
        if matches!(self.state, SprintState::Ramping | SprintState::Sprinting) {
            self.end_sprint(now_s, machine);
        }
    }

    /// Reacts to an electrical supply that could not deliver the window's
    /// power (Section 6 wired into the loop): while ramping or sprinting,
    /// records the event and ends the sprint (threads migrate to one core,
    /// whose draw the supply can serve); outside a sprint it is a no-op —
    /// there is no intensity left to shed.
    pub fn supply_limited(
        &mut self,
        now_s: f64,
        requested_w: f64,
        available_w: f64,
        machine: &mut Machine,
    ) {
        if matches!(self.state, SprintState::Ramping | SprintState::Sprinting) {
            self.events.push(ControllerEvent::SupplyLimited {
                at_s: now_s,
                requested_w,
                available_w,
            });
            self.end_sprint(now_s, machine);
        }
    }

    fn engage_failsafe(&mut self, now_s: f64, machine: &mut Machine) {
        self.events
            .push(ControllerEvent::FailsafeThrottled { at_s: now_s });
        // Throttle frequency by the active core count so aggregate power
        // fits the sustainable budget (Section 7: "the hardware must
        // throttle the frequency by at least a factor equal to the number
        // of active cores").
        let cores = machine.active_cores().max(1);
        let p = OperatingPoint::throttle(1.0 / cores as f64);
        machine.set_operating_point(p.frequency_multiplier, p.energy_multiplier);
        self.state = SprintState::Throttled;
    }

    fn end_sprint(&mut self, now_s: f64, machine: &mut Machine) {
        self.events.push(ControllerEvent::SprintEnded {
            at_s: now_s,
            spent_fraction: self.budget.spent_fraction(),
        });
        machine.set_active_cores(1);
        machine.set_operating_point(1.0, 1.0);
        self.sprint_end_s = Some(now_s);
        self.state = SprintState::Sustained;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;
    use sprint_archsim::program::SyntheticKernel;
    use sprint_thermal::phone::PhoneThermalParams;

    fn machine16() -> Machine {
        let mut m = Machine::new(MachineConfig::hpca());
        for t in 0..16u64 {
            m.spawn(Box::new(SyntheticKernel::new(
                16,
                100_000,
                (t + 1) << 26,
                0,
            )));
        }
        m
    }

    #[test]
    fn sustained_mode_runs_one_core() {
        let thermal = PhoneThermalParams::hpca().build();
        let mut m = machine16();
        let ctl = SprintController::new(SprintConfig::hpca_sustained(), &thermal, &mut m);
        assert_eq!(ctl.state(), SprintState::Sustained);
        assert_eq!(m.active_cores(), 1);
    }

    #[test]
    fn ramp_completes_then_sprints() {
        let thermal = PhoneThermalParams::hpca().build();
        let mut m = machine16();
        let mut ctl = SprintController::new(SprintConfig::hpca_parallel(), &thermal, &mut m);
        assert_eq!(ctl.state(), SprintState::Ramping);
        // 128 windows of 1 µs covers the 128 µs ramp.
        for i in 0..129 {
            ctl.step(&thermal, 1e-6, 1e-6, i as f64 * 1e-6, &mut m);
        }
        assert_eq!(ctl.state(), SprintState::Sprinting);
        assert_eq!(m.active_cores(), 16);
    }

    #[test]
    fn budget_exhaustion_migrates_to_one_core() {
        let thermal = PhoneThermalParams::limited().build();
        let mut m = machine16();
        let mut ctl = SprintController::new(SprintConfig::hpca_parallel(), &thermal, &mut m);
        // Skip the ramp.
        for i in 0..129 {
            ctl.step(&thermal, 0.0, 1e-6, i as f64 * 1e-6, &mut m);
        }
        // Pour 16 W windows in until the (small) limited budget trips.
        let mut t = 130e-6;
        for _ in 0..200_000 {
            ctl.step(&thermal, 16.0 * 1e-6, 1e-6, t, &mut m);
            t += 1e-6;
            if ctl.state() == SprintState::Sustained {
                break;
            }
        }
        assert_eq!(ctl.state(), SprintState::Sustained);
        assert_eq!(m.active_cores(), 1);
        assert!(ctl.sprint_end_s().is_some());
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })));
    }

    #[test]
    fn hotspot_policy_sheds_cores_and_ratchets() {
        use crate::config::HotspotPolicy;
        let mut thermal = PhoneThermalParams::hpca().build();
        let mut m = machine16();
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.hotspot = HotspotPolicy::ShedCores {
            start_headroom_k: 8.0,
            min_cores: 4,
        };
        let mut ctl = SprintController::new(cfg, &thermal, &mut m);
        for i in 0..129 {
            ctl.step(&thermal, 0.0, 1e-6, i as f64 * 1e-6, &mut m);
        }
        assert_eq!(m.active_cores(), 16, "plenty of headroom: full width");
        // Drive the junction to ~4 K of headroom: the linear shed caps
        // the sprint at 4 + 12 * (4/8) = 10 cores.
        thermal.set_chip_power_w(30.0);
        while thermal.headroom_k() > 4.0 {
            thermal.advance(0.005);
        }
        ctl.step(&thermal, 16e-6, 1e-6, 0.2, &mut m);
        assert!(
            m.active_cores() <= 10,
            "hot junction must shed cores, got {}",
            m.active_cores()
        );
        let shed_to = m.active_cores();
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, ControllerEvent::HotspotShed { .. })));
        // Cooling back down does not re-add cores within the burst.
        thermal.set_chip_power_w(0.0);
        thermal.advance(10.0);
        assert!(thermal.headroom_k() > 8.0);
        ctl.step(&thermal, 1e-6, 1e-6, 0.3, &mut m);
        assert_eq!(m.active_cores(), shed_to, "the shed ratchets");
        assert_eq!(ctl.state(), SprintState::Sprinting, "no hard abort");
    }

    #[test]
    fn thermal_limit_engages_failsafe_throttle() {
        let mut thermal = PhoneThermalParams::hpca().build();
        let mut m = machine16();
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.abort_policy = AbortPolicy::ThrottleOnly;
        // An oracle-blind estimator with a huge budget never trips, so the
        // failsafe must catch the hot junction.
        let mut ctl = SprintController::new(cfg, &thermal, &mut m);
        for i in 0..129 {
            ctl.step(&thermal, 0.0, 1e-6, i as f64 * 1e-6, &mut m);
        }
        // Force the junction to the limit.
        thermal.set_chip_power_w(40.0);
        while !thermal.at_thermal_limit() {
            thermal.advance(0.01);
        }
        ctl.step(&thermal, 16e-6, 1e-6, 1.0, &mut m);
        assert_eq!(ctl.state(), SprintState::Throttled);
        assert!(m.frequency_multiplier() < 0.1, "throttled by ~16x");
    }
}
