//! Thermal modelling for computational sprinting.
//!
//! This crate implements the thermal side of *Computational Sprinting*
//! (Raghavan et al., HPCA 2012): lumped thermal RC networks with
//! phase-change-material (PCM) nodes, the paper's smart-phone package model
//! (Figure 3), and the transient analyses behind Figure 4.
//!
//! Heat storage uses the *enthalpy method*: nodes store joules, and
//! temperature is a piecewise function of enthalpy. A PCM node therefore
//! exhibits an exact temperature plateau at its melting point while latent
//! heat is absorbed — precisely the behaviour sprinting exploits to buffer
//! an order-of-magnitude power overshoot for sub-second bursts.
//!
//! # Quick start
//!
//! ```
//! use sprint_thermal::phone::PhoneThermalParams;
//! use sprint_thermal::analysis::simulate_sprint;
//!
//! // The paper's design point: 150 mg PCM, 60 C melting point, 70 C limit.
//! let mut phone = PhoneThermalParams::hpca().build();
//! assert!(phone.max_sprint_power_w() >= 16.0);
//!
//! // Sprint at 16x the ~1 W TDP: lasts a little over one second.
//! let transient = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
//! let duration = transient.duration_s.unwrap();
//! assert!(duration > 1.0 && duration < 2.0);
//! ```
//!
//! # Modules
//!
//! * [`material`] — thermophysical property database (Cu, Al, icosane, the
//!   paper's reference PCM) and block-sizing helpers.
//! * [`node`] — enthalpy-method storage nodes with optional phase change.
//! * [`circuit`] — thermal RC networks with steady-state solving.
//! * [`solver`] — stable explicit transient integration.
//! * [`phone`] — the Figure 3 smart-phone model with PCM.
//! * [`analysis`] — sprint and cooldown transients (Figure 4).
//! * [`trace`] — time-series recording.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod circuit;
pub mod material;
pub mod node;
pub mod phone;
pub mod solver;
pub mod trace;

pub use analysis::{
    cooldown_rule_of_thumb_s, pcm_mass_for_sprint_g, simulate_cooldown, simulate_sprint,
    CooldownTransient, SprintTransient,
};
pub use circuit::{NodeId, ThermalNetwork};
pub use material::Material;
pub use node::{PhaseChange, StorageNode};
pub use phone::{BoardPath, PhoneThermal, PhoneThermalParams};
pub use solver::TransientSolver;
pub use trace::{Trace, TracePoint};
