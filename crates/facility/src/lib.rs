//! Facility-scale computational sprinting: rows of sprinting racks
//! under one shared power feed and shared cooling.
//!
//! The paper sprints a single chip against its thermal capacitor; the
//! rack layer (`sprint-cluster`) lifts the idea to a 16-node rack
//! against shared heat-sink and power-delivery pools. This crate takes
//! the next rung: a [`Facility`] composes N racks into rows and couples
//! them through the two resources a datacenter actually shares —
//! airflow and the utility feed — then rations *facility* sprint
//! headroom across racks with a global admission tier layered above
//! each rack's local thermal/power admission.
//!
//! # Coupling model
//!
//! Racks stay fully independent *within* a settlement epoch (their own
//! [`RackThermal`](sprint_cluster::RackThermal) grid, their own
//! [`RackSupply`](sprint_cluster::RackSupply) pool); the facility talks
//! to them only through two slow boundary knobs, re-settled every
//! [`epoch_windows`](FacilityBuilder::epoch_windows) sampling windows:
//!
//! * **Row airflow** ([`RowParams`]): racks in a row share a CRAC unit.
//!   When the row's total heat exceeds the CRAC capacity, the excess
//!   recirculates and lifts every rack inlet in the row by
//!   `recirc_k_per_w` Kelvin per excess watt (clamped at
//!   `max_inlet_c`). A hot row therefore erodes its own racks' thermal
//!   sprint headroom — the facility-scale analogue of the die heating
//!   its heat sink.
//! * **Facility feed** ([`FacilityPolicy`]): the building's feed caps
//!   total rack power below the sum of the rack PDU nameplates
//!   (facilities are provisioned for average, not peak — the premise
//!   sprinting exploits). [`FacilityPolicy::GlobalRationed`] re-divides
//!   the facility cap across racks every epoch, demand-weighted by each
//!   rack's queue backlog and sprinting population and dealt in
//!   sprint-slot quanta above a per-rack floor, by moving each
//!   rack's live [`RackSupply`] cap; the rack's own
//!   [`PowerPolicy`](sprint_cluster::PowerPolicy) admission then
//!   enforces whatever share it was dealt.
//!   [`FacilityPolicy::PerRack`] is the facility-oblivious baseline:
//!   each rack keeps a fixed share forever — its commissioned nameplate
//!   when the feed is uncapped, or the static equal split
//!   `facility_cap / N` under the same facility cap the global tier
//!   rations (the apples-to-apples comparison the facility study runs).
//!
//! # The settlement barrier (and determinism)
//!
//! Rack advancement is sharded across worker threads (plain
//! `std::thread::scope`, no dependencies): rack *r* lives on worker
//! `r % threads`, which owns its non-`Send` session for the whole run.
//! Each epoch the main thread broadcasts per-rack inputs (inlet, cap),
//! workers step their racks `epoch_windows` windows and reply with
//! plain-data telemetry, and the main thread *settles*: it recomputes
//! row inlets and facility cap shares from the telemetry **in rack
//! index order** before the next epoch begins. Because racks share no
//! mutable state inside an epoch and every cross-rack term is computed
//! single-threaded at the barrier from index-ordered inputs, the same
//! seed and rack count produce a byte-identical [`FacilityReport`] at
//! *any* worker count — pinned by this crate's determinism tests. A
//! one-rack facility with coupling left at defaults reproduces a
//! standalone [`ClusterSession`](sprint_cluster::ClusterSession) run
//! byte for byte: the facility layer's observer effect is zero.
//!
//! # Heterogeneous racks
//!
//! Fleets need not be uniform. [`FacilityBuilder::node_specs`] (and
//! the per-rack [`RackSpec::node_specs`] override) give every node its
//! own [`NodeSpec`](sprint_cluster::NodeSpec) — machine config,
//! nameplate share weight, thermal-footprint weight — and
//! [`FacilityBuilder::placement`] selects the idle-node ranking
//! ([`Placement::CheapestHeadroom`](sprint_cluster::Placement) is the
//! cost-aware pass a mixed fleet wants). The refactor is
//! observer-free by construction: a homogeneous spec list reproduces
//! the pre-heterogeneity clone path byte for byte, pinned by the
//! hetero test suites at both the rack and facility tiers. Racks
//! running [`ClusterPolicy::CompetitiveDuplicate`](sprint_cluster::ClusterPolicy)
//! report their duplication economics upward —
//! [`FacilityReport::cancelled_copies`] sums every losing replica
//! preempted the window its winner committed.
//!
//! # Cross-rack requeue routing
//!
//! [`FacilityBuilder::route_requeues`] turns the settlement barrier
//! into a migration fabric for crash victims: each epoch the barrier
//! drains every rack's crash-requeued tasks, routes each to the live
//! rack with the most surviving capacity per queued task (rack index
//! breaks ties), and injects them at the next epoch start. That fixes
//! retry-in-place head-of-line blocking when a task's origin rack has
//! quarantined the only nodes that could rerun it.
//! [`FacilityReport::migrated_tasks`] counts the moves, facility-wide
//! task conservation still holds, and — because routing is computed
//! single-threaded at the barrier from index-ordered telemetry — the
//! any-worker-count digest guarantee survives. Off, or on with no
//! crashes, the run is byte-identical to the unrouted facility.
//!
//! # Faults at facility scale
//!
//! [`FacilityBuilder::fault_rates`] derives one seeded
//! `sprint_core::fault::FaultPlan` per rack (distinct per-rack
//! streams, the same seed mixing as rack traffic), and
//! [`FacilityBuilder::fault_on`] installs explicit plans. Each rack
//! degrades locally — failsafe throttles, crash re-enqueue with
//! bounded retries, quarantine — and under
//! `sprint_core::fault::FaultResponse::Aware` reports its surviving
//! node fraction at the settlement barrier, where the feed tier
//! re-deals a degraded rack's ceded nameplate share to healthy racks.
//! [`FacilityReport`] sums every rack's fault/retry/quarantine
//! counters and pins facility-wide task conservation
//! ([`FacilityReport::task_conservation_holds`]): arrivals are never
//! lost, only finished, failed after retries, or left outstanding at
//! the time limit. Fault ticks ride the same event heap as everything
//! else, so faulted facilities keep the any-worker-count digest
//! guarantee.
//!
//! # Quick start
//!
//! ```
//! use sprint_facility::prelude::*;
//! use sprint_thermal::grid::GridThermalParams;
//! use sprint_cluster::RackSupplyParams;
//! use sprint_workloads::traffic::TrafficParams;
//!
//! let facility = FacilityBuilder::new(2)
//!     .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
//!     .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
//!     .facility_policy(FacilityPolicy::GlobalRationed { floor_w: 10.0, slot_w: 14.0 })
//!     .facility_cap_w(60.0)
//!     .traffic(TrafficParams::frontend(7, 8, 30_000.0))
//!     .build();
//! let report = facility.run(2);
//! assert_eq!(report.completed, 8);
//! ```

#![warn(missing_docs)]

pub mod facility;
pub mod policy;
mod shard;

pub use facility::{
    cluster_report_digest, Facility, FacilityBuildError, FacilityBuilder, FacilityReport, RackSpec,
    RowParams,
};
pub use policy::FacilityPolicy;

/// Commonly-used items in one import.
pub mod prelude {
    pub use crate::facility::{
        cluster_report_digest, Facility, FacilityBuildError, FacilityBuilder, FacilityReport,
        RackSpec, RowParams,
    };
    pub use crate::policy::FacilityPolicy;
}
