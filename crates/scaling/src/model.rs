//! Power-density and dark-silicon projections (Figure 1).
//!
//! The mechanics behind the dark-silicon argument (Section 2): device
//! density roughly doubles per generation while per-device capacitance
//! falls only ~25% (Borkar), so at fixed frequency the power a fully-
//! active chip would draw grows each generation unless voltage falls to
//! compensate — and voltage scaling has stalled. Relative power density
//! for a fixed-area chip follows
//!
//! `density_gain × capacitance_ratio × (Vdd/Vdd0)²`
//!
//! per generation, and the powerable (non-dark) fraction of the chip is
//! the reciprocal of that growth.

use serde::{Deserialize, Serialize};

use crate::node::{TechNode, NODES};

/// Scaling-assumption sets plotted in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingModel {
    /// ITRS roadmap: optimistic voltage scaling, ~2x density per node.
    Itrs,
    /// Borkar: 75% density increase and 25% capacitance reduction per
    /// generation.
    Borkar,
    /// ITRS density with Borkar's pessimistic voltage scaling.
    ItrsWithBorkarVdd,
}

impl ScalingModel {
    /// All three curve families of Figure 1.
    pub const ALL: [ScalingModel; 3] = [
        ScalingModel::Itrs,
        ScalingModel::Borkar,
        ScalingModel::ItrsWithBorkarVdd,
    ];

    /// Label used in the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            ScalingModel::Itrs => "ITRS",
            ScalingModel::Borkar => "Borkar",
            ScalingModel::ItrsWithBorkarVdd => "ITRS + Borkar Vdd scaling",
        }
    }

    /// Transistor-density multiplier per generation.
    fn density_per_gen(&self) -> f64 {
        match self {
            ScalingModel::Itrs | ScalingModel::ItrsWithBorkarVdd => 2.0,
            ScalingModel::Borkar => 1.75,
        }
    }

    /// Per-device capacitance multiplier per generation.
    fn capacitance_per_gen(&self) -> f64 {
        match self {
            ScalingModel::Itrs | ScalingModel::ItrsWithBorkarVdd => 0.67,
            ScalingModel::Borkar => 0.75,
        }
    }

    /// Supply voltage at a node under this model's assumptions.
    fn vdd(&self, node: &TechNode) -> f64 {
        match self {
            ScalingModel::Itrs => node.vdd_itrs,
            ScalingModel::Borkar | ScalingModel::ItrsWithBorkarVdd => node.vdd_borkar,
        }
    }

    /// Relative power density (fixed area, fixed frequency) at node
    /// `index` of [`NODES`], normalized to the 45 nm node.
    pub fn power_density(&self, index: usize) -> f64 {
        let gens = index as f64;
        let node = &NODES[index];
        let v0 = self.vdd(&NODES[0]);
        let density = self.density_per_gen().powf(gens);
        let cap = self.capacitance_per_gen().powf(gens);
        let v = self.vdd(node) / v0;
        density * cap * v * v
    }

    /// Percent of a fixed-area, fixed-power chip that must stay dark at
    /// node `index`.
    pub fn percent_dark_silicon(&self, index: usize) -> f64 {
        let pd = self.power_density(index);
        if pd <= 1.0 {
            0.0
        } else {
            (1.0 - 1.0 / pd) * 100.0
        }
    }

    /// The full Figure 1 series: `(nm, power_density, percent_dark)`.
    pub fn series(&self) -> Vec<(u32, f64, f64)> {
        (0..NODES.len())
            .map(|i| {
                (
                    NODES[i].nm,
                    self.power_density(i),
                    self.percent_dark_silicon(i),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_density_rises_monotonically() {
        for model in ScalingModel::ALL {
            let series = model.series();
            for w in series.windows(2) {
                assert!(
                    w[1].1 > w[0].1,
                    "{}: power density must rise: {:?}",
                    model.label(),
                    series
                );
            }
        }
    }

    #[test]
    fn normalized_to_unity_at_45nm() {
        for model in ScalingModel::ALL {
            assert!((model.power_density(0) - 1.0).abs() < 1e-12);
            assert_eq!(model.percent_dark_silicon(0), 0.0);
        }
    }

    #[test]
    fn pessimistic_vdd_darkens_more_silicon() {
        // At the end of the roadmap, ITRS+Borkar-Vdd must be the worst.
        let last = NODES.len() - 1;
        let itrs = ScalingModel::Itrs.percent_dark_silicon(last);
        let worst = ScalingModel::ItrsWithBorkarVdd.percent_dark_silicon(last);
        assert!(worst > itrs, "stalled Vdd means more dark silicon");
        // The paper/ARM prediction territory: the pessimistic model leaves
        // only a small active fraction by the final node.
        assert!(
            worst > 75.0,
            "expected >75% dark at the last node, got {worst:.0}%"
        );
    }

    #[test]
    fn dark_fraction_in_valid_range() {
        for model in ScalingModel::ALL {
            for i in 0..NODES.len() {
                let d = model.percent_dark_silicon(i);
                assert!((0.0..100.0).contains(&d));
            }
        }
    }
}
