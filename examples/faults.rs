//! Fault injection across the sprint stack: seeded sensor lies, supply
//! sags and node crashes on a small facility, with graceful degradation
//! measured against a fault-oblivious control.
//!
//! The same seeded fault plans drive every run here, so the study
//! compares *policies*, never luck:
//!
//! * **aware** — faulted sensors read as worst-case hot (failsafe
//!   preemption instead of blind sprinting), crashed nodes are
//!   quarantined with their nameplate share returned to the rack pool,
//!   and the facility tier re-deals the feed by each rack's surviving
//!   capacity;
//! * **oblivious** — the scheduler consumes the lying sensor values and
//!   keeps budgeting watts for dead nodes. Crash recovery (re-enqueue
//!   with bounded retries) stays on in both modes: losing a task is a
//!   bug, not a policy.
//!
//! Whatever the plans do, two invariants are non-negotiable and
//! asserted here (the CI fault-matrix job runs both profiles):
//!
//! 1. *determinism* — the event-driven facility reproduces the lockstep
//!    oracle's report digest byte for byte at 1, 2 and 8 workers;
//! 2. *conservation* — every arrival ends completed, failed after
//!    retries, or still outstanding at the time limit. Nothing vanishes.
//!
//! ```text
//! cargo run --release --example faults
//! ```
//!
//! Knobs: `SPRINT_FAULTS_PROFILE` (`aware` | `oblivious`; selects the
//! profile put through the full determinism sweep — the closing table
//! always shows both), `SPRINT_FAULTS_RACKS`, `SPRINT_FAULTS_TASKS`.

use computational_sprinting::prelude::*;

/// Thermal/electrical time compression (so the example runs in seconds).
const COMPRESS: f64 = 3000.0;
/// Seed for both the arrival streams and (xor-folded) the fault plans.
const SEED: u64 = 5;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fault rates sized to the fixture's ~10k-window horizon: enough
/// onsets that every fault family provably fires, crashes rare enough
/// that part of the fleet survives to show the degradation gradient
/// (a busy-crash quarantine is permanent).
fn biting_rates() -> FaultRates {
    FaultRates {
        mean_sensor_gap_windows: 400,
        sensor_hold_windows: 200,
        mean_crash_gap_windows: 20_000,
        crash_hold_windows: 300,
        mean_supply_gap_windows: 800,
        supply_hold_windows: 250,
    }
}

// This run mirrors the facility crate's fault determinism suite
// (`crates/facility/tests/faults.rs`) — the example asserts the same
// invariants through the public facade, so a regression in either
// place fails CI twice over.
fn study(racks: usize, tasks: usize, event_driven: bool, response: FaultResponse) -> Facility {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(COMPRESS))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(COMPRESS))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            defer_s: 2e-4,
        })
        .power_policy(PowerPolicy::Rationed {
            sprint_draw_w: 14.0,
            shed_reserve_fraction: 0.5,
        })
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.05,
            crac_capacity_w: 8.0,
            max_inlet_c: 40.0,
        })
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 7.5,
            slot_w: 14.0,
        })
        .facility_cap_w(14.5 * racks as f64)
        .epoch_windows(32)
        // Finite horizon: a rack whose quarantined nodes strand part of
        // the queue must still terminate, with the remainder reported
        // as outstanding rather than spun on forever.
        .max_time_s(0.05)
        .traffic({
            let mut traffic = TrafficParams::frontend(SEED, tasks, 60_000.0);
            traffic.size_weights = [1.0, 0.0, 0.0, 0.0];
            traffic
        })
        .fault_rates(biting_rates())
        .fault_seed(SEED ^ 0xFA17)
        .fault_response(response)
        .event_driven(event_driven)
        .build()
}

fn assert_conserved(label: &str, report: &FacilityReport) {
    assert!(
        report.task_conservation_holds(),
        "{label}: a task was lost: {} completed + {} failed + {} outstanding != {}",
        report.completed,
        report.failed_tasks,
        report.outstanding_tasks,
        report.total_tasks,
    );
}

fn row(label: &str, report: &FacilityReport) {
    println!(
        "{label:10} p99 {:7.3} ms | done {:3} | failed {:2} | stranded {:2} | \
         requeues {:3} | failsafe {:3} | quarantined {:2}",
        report.p99_latency_s * 1e3,
        report.completed,
        report.failed_tasks,
        report.outstanding_tasks,
        report.requeues,
        report.failsafe_preemptions,
        report.quarantined_nodes,
    );
}

fn main() {
    let racks = knob("SPRINT_FAULTS_RACKS", 4);
    let tasks = knob("SPRINT_FAULTS_TASKS", 24);
    let profile = match std::env::var("SPRINT_FAULTS_PROFILE").as_deref() {
        Ok("oblivious") => FaultResponse::Oblivious,
        Ok("aware") | Err(_) => FaultResponse::Aware,
        Ok(other) => panic!("SPRINT_FAULTS_PROFILE must be aware|oblivious, got {other}"),
    };
    println!(
        "== {racks} racks x 2 servers, {tasks} tasks, seeded faults \
         (profile under sweep: {profile:?}) ==\n"
    );

    // The lockstep golden oracle, then the event core at three worker
    // counts: all four runs must be byte-identical under the plans.
    let oracle = study(racks, tasks, false, profile).run(1);
    assert!(oracle.fault_events > 0, "the fault plans never fired");
    assert!(oracle.sensor_faults > 0, "no sensor ever faulted");
    assert!(oracle.supply_faults > 0, "no supply ever faulted");
    assert!(oracle.node_crashes > 0, "no node ever crashed");
    assert_conserved("oracle", &oracle);
    for threads in [1usize, 2, 8] {
        let report = study(racks, tasks, true, profile).run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "event-driven facility at {threads} workers diverged from the \
             lockstep oracle under faults"
        );
        assert_conserved("event", &report);
    }
    println!(
        "determinism: lockstep oracle == event core at 1/2/8 workers \
         (digest {:016x}); {} fault events bit ({} sensor, {} supply, \
         {} crashes), nothing lost.\n",
        oracle.digest(),
        oracle.fault_events,
        oracle.sensor_faults,
        oracle.supply_faults,
        oracle.node_crashes,
    );

    // The degradation comparison: identical plans, opposite responses.
    let aware = study(racks, tasks, true, FaultResponse::Aware).run(2);
    let oblivious = study(racks, tasks, true, FaultResponse::Oblivious).run(2);
    assert_conserved("aware", &aware);
    assert_conserved("oblivious", &oblivious);
    assert_ne!(
        aware.digest(),
        oblivious.digest(),
        "Aware and Oblivious produced identical runs — the faults never \
         touched a scheduling decision"
    );
    row("aware", &aware);
    row("oblivious", &oblivious);
    println!(
        "\nthe aware profile trades throughput for honesty: faulted sensors \
         read worst-case hot (failsafe preemptions above), dead nodes give \
         their watts back, and the feed follows surviving capacity. The \
         oblivious control schedules on the lies instead — same plans, same \
         seeds, different physics."
    );
}
