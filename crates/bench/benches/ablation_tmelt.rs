//! Criterion bench: the PCM melting-point ablation sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sprint_thermal::analysis::simulate_sprint;
use sprint_thermal::material::Material;
use sprint_thermal::phone::PhoneThermalParams;

fn bench_tmelt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tmelt");
    g.sample_size(10);
    for melt_c in [40.0, 50.0, 60.0] {
        g.bench_function(format!("sprint_tmelt_{melt_c}"), |b| {
            b.iter(|| {
                let mut params = PhoneThermalParams::hpca();
                params.pcm_material = Material::new("pcm", 0.3, 1.0, 100.0, Some(melt_c), 5.0);
                let mut phone = params.build();
                let t = simulate_sprint(&mut phone, 16.0, 0.005, 5.0);
                std::hint::black_box(t.duration_s)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tmelt);
criterion_main!(benches);
