//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization machinery exists (nothing in the workspace uses it);
//! swapping in the real crates is a one-line manifest change.

/// Marker trait mirroring `serde::Serialize` (no methods).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
