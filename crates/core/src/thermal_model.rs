//! The thermal-backend abstraction of the co-simulation loop.
//!
//! The coupled loop (Section 8.1) only ever asks a thermal model six
//! questions: take this power, advance this far, and report junction
//! temperature, headroom, melt state and remaining sprint capacity.
//! [`ThermalModel`] captures exactly that contract, making
//! [`SprintSession`](crate::session::SprintSession) and
//! [`SprintController`](crate::controller::SprintController) generic over
//! the backend: the paper's phone package
//! ([`sprint_thermal::phone::PhoneThermal`]) is one implementation, the
//! single-node [`LumpedThermal`] reference backend another, and
//! finer-grained models (HotSpot-style grids, data-center racks à la
//! Porto et al.'s "fast, but not so furious" sprinting) slot in without
//! touching the loop.
//!
//! # The thermal *port*
//!
//! `ThermalModel` is a port, not just a trait over owned backends: the
//! blanket implementations for `&mut T` and `Box<T>` (including
//! `Box<dyn ThermalModel>`) mean a session does not have to *own* its
//! thermal state. A caller can keep the backend, lend
//! `SprintSession::<&mut GridThermal, _>` a borrow for one burst and
//! inspect the grid between bursts; heterogeneous collections of
//! sessions can erase the backend behind `Box<dyn ThermalModel>`; and a
//! *shared* backend can stand behind several sessions at once through a
//! view type — `sprint_cluster`'s per-node rack views drive many
//! sessions against one rack-wide grid, each view mapping its session's
//! power onto its node's floorplan rectangle and reporting its node's
//! own hottest cell (not the rack-global one) as the junction.

use sprint_thermal::grid::GridThermal;
use sprint_thermal::phone::PhoneThermal;

/// A thermal backend the sprint loop can drive.
///
/// Implementations must be *causal* accumulators: [`set_chip_power_w`]
/// fixes the heat injected at the junction until the next call, and
/// [`advance`] integrates the network forward. All temperature queries
/// refer to the state after the last `advance`.
///
/// [`set_chip_power_w`]: ThermalModel::set_chip_power_w
/// [`advance`]: ThermalModel::advance
pub trait ThermalModel {
    /// Sets the instantaneous chip power dissipation in watts.
    fn set_chip_power_w(&mut self, watts: f64);

    /// Tells the backend how many cores dissipated the power of the last
    /// window. Spatial backends (grids) map the power onto the active
    /// cores' floorplan footprints; lumped backends ignore it (the
    /// default no-op).
    fn set_active_core_count(&mut self, cores: usize) {
        let _ = cores;
    }

    /// Advances the model by `dt_s` seconds.
    fn advance(&mut self, dt_s: f64);

    /// Advances the model by `count` consecutive intervals of `dt_s`
    /// seconds each. The default is literally a loop of [`advance`]
    /// calls, so every backend satisfies the bit-for-bit contract by
    /// construction: `advance_many(dt, n)` must leave the model in
    /// exactly the state `n` successive `advance(dt)` calls would.
    /// Backends with per-call overhead worth amortizing (shared-state
    /// view types that pay a borrow per call) may override it, but only
    /// with arithmetic identical to the looped path — this hook exists
    /// for the event-driven cluster core's idle catch-up, whose digests
    /// are pinned byte-for-byte against the lockstep oracle.
    ///
    /// [`advance`]: ThermalModel::advance
    fn advance_many(&mut self, dt_s: f64, count: u64) {
        for _ in 0..count {
            self.advance(dt_s);
        }
    }

    /// Junction temperature, Celsius.
    fn junction_temp_c(&self) -> f64;

    /// Remaining headroom before the junction hits the safe limit, Kelvin.
    fn headroom_k(&self) -> f64;

    /// Phase-change melt fraction in `[0, 1]` (zero for backends without
    /// latent storage).
    fn melt_fraction(&self) -> f64;

    /// True once the junction has reached the maximum safe temperature.
    fn at_thermal_limit(&self) -> bool;

    /// Sprint energy budget from the *current* state, joules: how much
    /// above-sustainable energy the package can still absorb before the
    /// junction reaches the limit (Section 4's "16 joules").
    fn sprint_energy_budget_j(&self) -> f64;

    /// Maximum safe junction temperature, Celsius.
    fn t_max_c(&self) -> f64;

    /// Ambient temperature, Celsius.
    fn ambient_c(&self) -> f64;
}

/// The port in action: a session may borrow its backend instead of
/// owning it. Every method forwards; `set_active_core_count` and
/// `advance_many` forward explicitly so spatial backends keep their
/// power maps and view types keep their batched fast paths (the trait
/// defaults would silently drop both).
impl<T: ThermalModel + ?Sized> ThermalModel for &mut T {
    fn set_chip_power_w(&mut self, watts: f64) {
        (**self).set_chip_power_w(watts);
    }

    fn set_active_core_count(&mut self, cores: usize) {
        (**self).set_active_core_count(cores);
    }

    fn advance(&mut self, dt_s: f64) {
        (**self).advance(dt_s);
    }

    fn advance_many(&mut self, dt_s: f64, count: u64) {
        (**self).advance_many(dt_s, count);
    }

    fn junction_temp_c(&self) -> f64 {
        (**self).junction_temp_c()
    }

    fn headroom_k(&self) -> f64 {
        (**self).headroom_k()
    }

    fn melt_fraction(&self) -> f64 {
        (**self).melt_fraction()
    }

    fn at_thermal_limit(&self) -> bool {
        (**self).at_thermal_limit()
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        (**self).sprint_energy_budget_j()
    }

    fn t_max_c(&self) -> f64 {
        (**self).t_max_c()
    }

    fn ambient_c(&self) -> f64 {
        (**self).ambient_c()
    }
}

/// Boxed backends (including `Box<dyn ThermalModel>`) satisfy the port,
/// so heterogeneous session collections can erase the backend type.
impl<T: ThermalModel + ?Sized> ThermalModel for Box<T> {
    fn set_chip_power_w(&mut self, watts: f64) {
        (**self).set_chip_power_w(watts);
    }

    fn set_active_core_count(&mut self, cores: usize) {
        (**self).set_active_core_count(cores);
    }

    fn advance(&mut self, dt_s: f64) {
        (**self).advance(dt_s);
    }

    fn advance_many(&mut self, dt_s: f64, count: u64) {
        (**self).advance_many(dt_s, count);
    }

    fn junction_temp_c(&self) -> f64 {
        (**self).junction_temp_c()
    }

    fn headroom_k(&self) -> f64 {
        (**self).headroom_k()
    }

    fn melt_fraction(&self) -> f64 {
        (**self).melt_fraction()
    }

    fn at_thermal_limit(&self) -> bool {
        (**self).at_thermal_limit()
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        (**self).sprint_energy_budget_j()
    }

    fn t_max_c(&self) -> f64 {
        (**self).t_max_c()
    }

    fn ambient_c(&self) -> f64 {
        (**self).ambient_c()
    }
}

impl ThermalModel for PhoneThermal {
    fn set_chip_power_w(&mut self, watts: f64) {
        PhoneThermal::set_chip_power_w(self, watts);
    }

    fn advance(&mut self, dt_s: f64) {
        PhoneThermal::advance(self, dt_s);
    }

    fn junction_temp_c(&self) -> f64 {
        PhoneThermal::junction_temp_c(self)
    }

    fn headroom_k(&self) -> f64 {
        PhoneThermal::headroom_k(self)
    }

    fn melt_fraction(&self) -> f64 {
        PhoneThermal::melt_fraction(self)
    }

    fn at_thermal_limit(&self) -> bool {
        PhoneThermal::at_thermal_limit(self)
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        PhoneThermal::sprint_energy_budget_j(self)
    }

    fn t_max_c(&self) -> f64 {
        PhoneThermal::t_max_c(self)
    }

    fn ambient_c(&self) -> f64 {
        PhoneThermal::ambient_c(self)
    }
}

/// The HotSpot-style grid backend: the junction the loop sees is the
/// *hottest die cell*, so headroom, the thermal limit and the sprint
/// budget are all hotspot-aware — a sprint on this backend aborts (or,
/// with [`HotspotPolicy::ShedCores`](crate::config::HotspotPolicy),
/// sheds cores) on local heating that a lumped backend averages away.
///
/// The backend's integration scheme is chosen at build time via
/// `GridThermalParams::solver`: the bit-stable explicit default, or the
/// semi-implicit ADI solver whose sub-step is independent of the grid
/// resolution — the right pick for fine (16x16+) grids and rack-scale
/// floorplans, where the explicit sub-step makes the co-simulation loop
/// spend virtually all of its wall-clock inside `advance`.
impl ThermalModel for GridThermal {
    fn set_chip_power_w(&mut self, watts: f64) {
        GridThermal::set_chip_power_w(self, watts);
    }

    fn set_active_core_count(&mut self, cores: usize) {
        GridThermal::set_active_cores(self, cores);
    }

    fn advance(&mut self, dt_s: f64) {
        GridThermal::advance(self, dt_s);
    }

    fn junction_temp_c(&self) -> f64 {
        GridThermal::junction_temp_c(self)
    }

    fn headroom_k(&self) -> f64 {
        GridThermal::headroom_k(self)
    }

    fn melt_fraction(&self) -> f64 {
        GridThermal::melt_fraction(self)
    }

    fn at_thermal_limit(&self) -> bool {
        GridThermal::at_thermal_limit(self)
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        GridThermal::sprint_energy_budget_j(self)
    }

    fn t_max_c(&self) -> f64 {
        GridThermal::t_max_c(self)
    }

    fn ambient_c(&self) -> f64 {
        GridThermal::ambient_c(self)
    }
}

/// A single-node RC thermal backend: one lumped heat capacity behind one
/// resistance to ambient, integrated exactly (exponential update).
///
/// This is the minimal non-phone backend — useful for tests, for
/// first-order design sweeps, and as the template for richer backends
/// (server heatsinks, rack-level models). Without latent storage its
/// sprint budget is purely sensible headroom, so sprints on it are short
/// and junction-capacitance-bound, like the paper's PCM-free package.
#[derive(Debug, Clone, PartialEq)]
pub struct LumpedThermal {
    capacity_j_per_k: f64,
    r_k_per_w: f64,
    ambient_c: f64,
    t_max_c: f64,
    temp_c: f64,
    power_w: f64,
}

impl LumpedThermal {
    /// Creates the node at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity/resistance or `t_max <= ambient`.
    pub fn new(capacity_j_per_k: f64, r_k_per_w: f64, ambient_c: f64, t_max_c: f64) -> Self {
        assert!(
            capacity_j_per_k > 0.0 && r_k_per_w > 0.0,
            "capacity and resistance must be positive"
        );
        assert!(t_max_c > ambient_c, "limit must exceed ambient");
        Self {
            capacity_j_per_k,
            r_k_per_w,
            ambient_c,
            t_max_c,
            temp_c: ambient_c,
            power_w: 0.0,
        }
    }

    /// A server-class node: large finned heatsink (≈ 2 kJ/K behind
    /// 0.3 K/W) in a 35 C hot aisle with a 85 C junction limit —
    /// a data-center sprinting design point rather than a phone.
    pub fn server_heatsink() -> Self {
        Self::new(2_000.0, 0.3, 35.0, 85.0)
    }

    /// Sustainable power: steady state that holds the node at the limit.
    pub fn tdp_w(&self) -> f64 {
        (self.t_max_c - self.ambient_c) / self.r_k_per_w
    }
}

impl ThermalModel for LumpedThermal {
    fn set_chip_power_w(&mut self, watts: f64) {
        self.power_w = watts;
    }

    fn advance(&mut self, dt_s: f64) {
        // Exact solution of C dT/dt = P - (T - Tamb)/R over the interval.
        let t_inf = self.ambient_c + self.power_w * self.r_k_per_w;
        let tau = self.r_k_per_w * self.capacity_j_per_k;
        self.temp_c = t_inf + (self.temp_c - t_inf) * (-dt_s / tau).exp();
    }

    fn junction_temp_c(&self) -> f64 {
        self.temp_c
    }

    fn headroom_k(&self) -> f64 {
        self.t_max_c - self.temp_c
    }

    fn melt_fraction(&self) -> f64 {
        0.0
    }

    fn at_thermal_limit(&self) -> bool {
        self.temp_c >= self.t_max_c - 1e-9
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        self.headroom_k().max(0.0) * self.capacity_j_per_k
    }

    fn t_max_c(&self) -> f64 {
        self.t_max_c
    }

    fn ambient_c(&self) -> f64 {
        self.ambient_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_thermal::phone::PhoneThermalParams;

    #[test]
    fn phone_thermal_satisfies_the_contract() {
        fn exercise(m: &mut dyn ThermalModel) {
            m.set_chip_power_w(16.0);
            m.advance(0.01);
            assert!(m.junction_temp_c() > m.ambient_c());
            assert!(m.headroom_k() < m.t_max_c() - m.ambient_c());
            assert!(m.sprint_energy_budget_j() >= 0.0);
        }
        exercise(&mut PhoneThermalParams::hpca().build());
        exercise(&mut LumpedThermal::server_heatsink());
        exercise(&mut sprint_thermal::grid::GridThermalParams::hpca_like().build());
    }

    #[test]
    fn grid_backend_reports_the_hotspot_through_the_trait() {
        let mut g = sprint_thermal::grid::GridThermalParams::hpca_like().build();
        // Concentrate the same power on fewer cores: the trait-visible
        // junction (hottest cell) must rise, unlike any lumped backend.
        let hot_of = |m: &mut dyn ThermalModel, cores: usize| {
            m.set_active_core_count(cores);
            m.set_chip_power_w(4.0);
            m.advance(1.0);
            m.junction_temp_c()
        };
        let spread = hot_of(&mut g, 16);
        let mut g2 = sprint_thermal::grid::GridThermalParams::hpca_like().build();
        let focused = hot_of(&mut g2, 2);
        assert!(
            focused > spread + 1.0,
            "2-core hotspot {focused:.2} must beat 16-core {spread:.2}"
        );
    }

    #[test]
    fn borrowed_and_boxed_backends_satisfy_the_port() {
        use sprint_thermal::grid::GridThermalParams;

        // A borrowed grid driven through a *generic* session-shaped
        // caller, so the `&mut T` blanket impl itself is what runs: it
        // must pass `set_active_core_count` through (the trait default
        // would silently drop it and the power map would stay 16-wide).
        fn drive<T: ThermalModel>(mut port: T) {
            port.set_active_core_count(2);
            port.set_chip_power_w(4.0);
            port.advance(1.0);
        }
        let mut grid = GridThermalParams::hpca_like().build();
        drive(&mut grid);
        assert_eq!(grid.active_cores(), 2);
        assert!(grid.junction_temp_c() > grid.ambient_c());

        // A boxed, type-erased backend drives the same contract.
        let mut boxed: Box<dyn ThermalModel> = Box::new(LumpedThermal::server_heatsink());
        boxed.set_chip_power_w(100.0);
        boxed.advance(50.0);
        assert!(boxed.junction_temp_c() > boxed.ambient_c());
        assert!(boxed.sprint_energy_budget_j() >= 0.0);
    }

    #[test]
    fn lumped_settles_at_steady_state() {
        let mut m = LumpedThermal::new(10.0, 2.0, 25.0, 70.0);
        m.set_chip_power_w(10.0);
        m.advance(1_000.0);
        assert!(
            (m.junction_temp_c() - 45.0).abs() < 1e-6,
            "25 + 10*2 = 45 C"
        );
        assert!(!m.at_thermal_limit());
        assert_eq!(m.melt_fraction(), 0.0);
    }

    #[test]
    fn lumped_budget_shrinks_as_it_heats() {
        let mut m = LumpedThermal::server_heatsink();
        let cold = m.sprint_energy_budget_j();
        m.set_chip_power_w(500.0);
        m.advance(10.0);
        assert!(m.sprint_energy_budget_j() < cold);
    }

    #[test]
    fn lumped_tdp_matches_limit_over_resistance() {
        let m = LumpedThermal::new(5.0, 0.5, 25.0, 75.0);
        assert!((m.tdp_w() - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limit must exceed ambient")]
    fn lumped_rejects_inverted_limits() {
        let _ = LumpedThermal::new(1.0, 1.0, 70.0, 25.0);
    }
}
