//! Criterion bench: Figure 1's scaling-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use sprint_scaling::model::ScalingModel;

fn bench_scaling(c: &mut Criterion) {
    c.bench_function("fig1/all_models_series", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for model in ScalingModel::ALL {
                for (_, pd, dark) in model.series() {
                    acc += pd + dark;
                }
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
