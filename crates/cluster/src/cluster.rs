//! The lockstep cluster stepper: many node sessions, one rack, one
//! admission scheduler.
//!
//! [`ClusterSession`] drives one [`SprintSession`] per server node
//! against a shared [`RackThermal`] grid, in lockstep sampling windows.
//! Each window the scheduler:
//!
//! 1. moves newly-arrived tasks into the ready queue;
//! 2. assigns ready tasks to idle nodes, asking the [`ClusterPolicy`]
//!    whether each task may *sprint* (the node's session is re-armed
//!    under the sprint or the sustained configuration accordingly, via
//!    `SprintSession::set_config` + `begin_burst`);
//! 3. runs the shed pass: if the rack-global headroom has shrunk below
//!    the policy's allowance for the current sprinting population,
//!    nodes are preempted (`SprintSession::preempt_sprint`) in the
//!    policy's shed *order* — hottest-first, rotation order, … — the
//!    cluster generalization of `HotspotPolicy::ShedCores`'s count
//!    ramp;
//! 4. steps every busy node by one window and rests every idle node
//!    (idle nodes cool and keep the lockstep clock), in node-index
//!    order, so the whole simulation is deterministic.
//!
//! A one-node cluster under [`ClusterPolicy::AllSprint`] performs
//! exactly the calls a standalone session makes, in the same order, so
//! it reproduces the standalone run byte-for-byte — the equivalence
//! test in `tests/cluster_api.rs` pins this.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_core::config::{ExecutionMode, SprintConfig};
use sprint_core::controller::SprintState;
use sprint_core::session::{RunReport, SprintSession, StepOutcome};
use sprint_core::supply::IdealSupply;
use sprint_core::thermal_model::ThermalModel;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::suite_loader;

use crate::policy::ClusterPolicy;
use crate::queue::{ClusterTask, TaskOutcome};
use crate::rack::{NodeThermalView, RackThermal};

/// What one [`ClusterSession::step`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOutcome {
    /// A window ran; tasks remain in flight or in the queue.
    Running,
    /// Every task has completed; further steps are no-ops.
    Drained,
    /// The cluster time limit elapsed with tasks outstanding.
    TimeLimit,
}

impl ClusterOutcome {
    /// True once stepping can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ClusterOutcome::Running)
    }
}

/// Scheduler decisions, recorded for traces and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// A task started on a node with sprint admission.
    SprintAdmitted {
        /// Node index.
        node: usize,
        /// Task index.
        task: usize,
        /// Decision time, seconds.
        at_s: f64,
    },
    /// A task started on a node in sustained mode (admission denied).
    SprintDenied {
        /// Node index.
        node: usize,
        /// Task index.
        task: usize,
        /// Decision time, seconds.
        at_s: f64,
    },
    /// The shed pass preempted a sprinting node.
    NodeShed {
        /// Node index.
        node: usize,
        /// Decision time, seconds.
        at_s: f64,
        /// Rack-global headroom at the decision, Kelvin.
        rack_headroom_k: f64,
    },
}

/// One server node's scheduling state.
struct Node {
    session: SprintSession<NodeThermalView, IdealSupply>,
    /// Task currently running, if any.
    task: Option<usize>,
    /// When the current task started, seconds.
    assigned_s: f64,
    /// Whether the current task was admitted to sprint (sticky for the
    /// task's outcome even if the shed pass later preempts the node).
    sprinted: bool,
}

/// Summary of a cluster run. Callable mid-run; an unfinished run simply
/// reports the completions so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Completion time of the last finished task, seconds (0 if none).
    pub makespan_s: f64,
    /// Tasks completed.
    pub completed: usize,
    /// Tasks submitted.
    pub total_tasks: usize,
    /// Mean task latency (arrival to completion), seconds (NaN if no
    /// task completed).
    pub mean_latency_s: f64,
    /// Worst task latency, seconds (0 if none).
    pub max_latency_s: f64,
    /// Hottest rack cell observed over the run, Celsius.
    pub peak_junction_c: f64,
    /// Tasks at least one of whose copies started with sprint
    /// admission (each task counts once, however many copies ran; the
    /// per-copy decisions are in the event log).
    pub admitted_sprints: usize,
    /// Tasks started none of whose copies was admitted (sustained).
    pub denied_sprints: usize,
    /// Shed-pass preemptions.
    pub sheds: usize,
    /// Per-task outcomes, in completion order.
    pub outcomes: Vec<TaskOutcome>,
    /// Per-node coupled reports.
    pub node_reports: Vec<RunReport>,
}

/// Composes a rack, per-node machines, a policy and a task queue into a
/// [`ClusterSession`].
pub struct ClusterBuilder {
    rack_params: GridThermalParams,
    machine_config: MachineConfig,
    config: SprintConfig,
    policy: ClusterPolicy,
    tasks: Vec<ClusterTask>,
    trace_capacity: usize,
    max_time_s: f64,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("nodes", &self.rack_params.floorplan.core_count())
            .field("policy", &self.policy)
            .field("tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Starts from a rack parameter set (typically
    /// `GridThermalParams::rack(cols, rows)`, time-scaled to taste);
    /// one node per floorplan core. Defaults: the paper's 16-core
    /// machine per node, `SprintConfig::hpca_parallel` for admitted
    /// sprints, greedy-headroom admission, no tasks.
    pub fn new(rack_params: GridThermalParams) -> Self {
        Self {
            rack_params,
            machine_config: MachineConfig::hpca(),
            config: SprintConfig::hpca_parallel(),
            policy: ClusterPolicy::greedy_default(),
            tasks: Vec::new(),
            trace_capacity: 2048,
            max_time_s: 10.0,
        }
    }

    /// Sets the per-node machine configuration.
    pub fn machine(mut self, config: MachineConfig) -> Self {
        self.machine_config = config;
        self
    }

    /// Sets the sprint configuration admitted tasks run under (denied
    /// tasks run the same configuration with `ExecutionMode::Sustained`).
    pub fn config(mut self, config: SprintConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the admission policy.
    pub fn policy(mut self, policy: ClusterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Appends tasks to the arrival queue.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = ClusterTask>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Limits each node's retained trace (0 disables tracing).
    pub fn trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Hard wall on cluster simulated time, seconds.
    pub fn max_time_s(mut self, limit_s: f64) -> Self {
        self.max_time_s = limit_s;
        self
    }

    /// Builds the cluster: the shared rack grid, one sustained-armed
    /// session per node, and the arrival order.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration/policy, a non-positive time
    /// limit, or task arrivals that are negative or non-finite.
    pub fn build(self) -> ClusterSession {
        self.config.validate();
        self.policy.validate();
        assert!(self.max_time_s > 0.0, "cluster time limit must be positive");
        // An admission threshold no cold node can meet would livelock
        // a deferring queue (head-of-line tasks wait forever for
        // headroom the rack cannot physically offer).
        if let Some(admit) = self.policy.admit_headroom_k() {
            let max_headroom = self.rack_params.t_max_c - self.rack_params.ambient_c;
            assert!(
                admit < max_headroom,
                "admission threshold {admit} K is unsatisfiable: a cold node's headroom \
                 tops out at t_max - ambient = {max_headroom} K"
            );
        }
        for t in &self.tasks {
            assert!(
                t.arrival_s.is_finite() && t.arrival_s >= 0.0,
                "task arrivals must be finite and non-negative"
            );
            assert!(t.threads >= 1, "a task needs at least one thread");
        }
        let rack = RackThermal::new(self.rack_params.build());
        let nodes_n = rack.nodes();
        let mut sustained = self.config.clone();
        sustained.mode = ExecutionMode::Sustained;
        let window_s = self.config.sample_window_ps as f64 * 1e-12;
        let nodes = (0..nodes_n)
            .map(|n| Node {
                session: SprintSession::new(
                    Machine::new(self.machine_config.clone()),
                    rack.node_view(n),
                    IdealSupply,
                    sustained.clone(),
                    self.trace_capacity,
                    Vec::new(),
                ),
                task: None,
                assigned_s: 0.0,
                sprinted: false,
            })
            .collect();
        let mut arrival_order: Vec<usize> = (0..self.tasks.len()).collect();
        arrival_order.sort_by(|&a, &b| {
            self.tasks[a]
                .arrival_s
                .partial_cmp(&self.tasks[b].arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let task_count = self.tasks.len();
        ClusterSession {
            rack,
            nodes,
            tasks: self.tasks,
            arrival_order,
            next_arrival: 0,
            ready: VecDeque::new(),
            policy: self.policy,
            sprint_config: self.config,
            sustained_config: sustained,
            window_s,
            windows: 0,
            max_windows: (self.max_time_s / window_s).ceil() as u64,
            outcomes: Vec::new(),
            task_done: vec![false; task_count],
            task_copies: vec![0; task_count],
            task_sprinted: vec![false; task_count],
            events: Vec::new(),
            grant_order: Vec::new(),
            peak_junction_c: f64::NEG_INFINITY,
            temps_buf: vec![0.0; nodes_n],
        }
    }
}

/// Many sprint sessions, one shared rack, one admission scheduler. See
/// the module docs for the per-window protocol.
pub struct ClusterSession {
    rack: RackThermal,
    nodes: Vec<Node>,
    tasks: Vec<ClusterTask>,
    /// Task indices sorted by (arrival, index).
    arrival_order: Vec<usize>,
    next_arrival: usize,
    ready: VecDeque<usize>,
    policy: ClusterPolicy,
    sprint_config: SprintConfig,
    sustained_config: SprintConfig,
    window_s: f64,
    windows: u64,
    max_windows: u64,
    outcomes: Vec<TaskOutcome>,
    task_done: Vec<bool>,
    task_copies: Vec<usize>,
    /// Whether any copy of the task was admitted to sprint.
    task_sprinted: Vec<bool>,
    events: Vec<ClusterEvent>,
    /// Sprinting nodes, oldest admission first (round-robin shed order).
    grant_order: Vec<usize>,
    peak_junction_c: f64,
    /// Per-window node temperatures (reused; no per-step allocation).
    temps_buf: Vec<f64>,
}

impl std::fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSession")
            .field("nodes", &self.nodes.len())
            .field("policy", &self.policy)
            .field("windows", &self.windows)
            .field("completed", &self.outcomes.len())
            .field("total_tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl ClusterSession {
    /// Cluster simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.windows as f64 * self.window_s
    }

    /// Sampling windows stepped so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The shared rack.
    pub fn rack(&self) -> &RackThermal {
        &self.rack
    }

    /// Scheduler events so far.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Task outcomes so far, in completion order.
    pub fn outcomes(&self) -> &[TaskOutcome] {
        &self.outcomes
    }

    /// One node's coupled report so far.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_report(&self, node: usize) -> RunReport {
        self.nodes[node].session.report()
    }

    /// One node's controller state.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_state(&self, node: usize) -> SprintState {
        self.nodes[node].session.state()
    }

    /// True once every submitted task has completed. Losing
    /// competitive-duplicate copies do not count as outstanding work —
    /// their result is discarded by definition, so the queue is
    /// drained the moment every task has a winner (a loser may still
    /// be mid-run on its node when stepping stops).
    pub fn drained(&self) -> bool {
        self.task_done.iter().all(|&d| d)
    }

    /// Advances the whole cluster by one sampling window.
    pub fn step(&mut self) -> ClusterOutcome {
        if self.drained() {
            return ClusterOutcome::Drained;
        }
        if self.windows >= self.max_windows {
            return ClusterOutcome::TimeLimit;
        }
        let now = self.now_s();
        // Refresh the per-node temperature snapshot once per window
        // (the slice-based accessor keeps this allocation-free).
        self.rack.node_temps_c_into(&mut self.temps_buf);
        // 1. Arrivals.
        while self.next_arrival < self.arrival_order.len() {
            let task = self.arrival_order[self.next_arrival];
            if self.tasks[task].arrival_s > now {
                break;
            }
            self.ready.push_back(task);
            self.next_arrival += 1;
        }
        // 2. Assignment (and 3., the shed pass).
        self.assign_ready(now);
        self.shed_pass(now);
        // 4. Step busy nodes, rest idle ones, in index order (node 0 is
        // the lockstep leader that advances the shared grid).
        for i in 0..self.nodes.len() {
            if self.nodes[i].task.is_some() {
                match self.nodes[i].session.step() {
                    StepOutcome::Running => {}
                    StepOutcome::Finished => self.complete(i),
                    StepOutcome::TimeLimit => {
                        // The per-burst wall tripped with work left.
                        // Abandoning would strand the task's live
                        // threads on the machine (there is no
                        // thread-kill API), corrupting every later
                        // task on this node — so re-arm and keep
                        // draining, but *sustained*: the task already
                        // spent its sprint grant, and a fresh sprint
                        // here would bypass policy admission (and the
                        // grant bookkeeping the shed order works
                        // from). The step below keeps the node on the
                        // lockstep clock; truly runaway tasks are
                        // bounded by the cluster-level time limit.
                        self.nodes[i]
                            .session
                            .set_config(self.sustained_config.clone());
                        self.nodes[i].session.begin_burst();
                        if self.nodes[i].session.step() == StepOutcome::Finished {
                            self.complete(i);
                        }
                    }
                }
            } else {
                self.nodes[i].session.rest(self.window_s);
            }
        }
        self.windows += 1;
        let junction = self.rack.junction_temp_c();
        if junction > self.peak_junction_c {
            self.peak_junction_c = junction;
        }
        if self.drained() {
            ClusterOutcome::Drained
        } else {
            ClusterOutcome::Running
        }
    }

    /// Steps until the queue drains or the time limit trips.
    pub fn run_to_completion(&mut self) -> ClusterOutcome {
        loop {
            let outcome = self.step();
            if outcome.is_terminal() {
                return outcome;
            }
        }
    }

    /// Builds the cluster summary for the run so far.
    pub fn report(&self) -> ClusterReport {
        let makespan_s = self
            .outcomes
            .iter()
            .map(|o| o.completed_s)
            .fold(0.0f64, f64::max);
        let max_latency_s = self
            .outcomes
            .iter()
            .map(|o| o.latency_s())
            .fold(0.0f64, f64::max);
        let mean_latency_s = if self.outcomes.is_empty() {
            f64::NAN
        } else {
            self.outcomes.iter().map(|o| o.latency_s()).sum::<f64>() / self.outcomes.len() as f64
        };
        ClusterReport {
            makespan_s,
            completed: self.outcomes.len(),
            total_tasks: self.tasks.len(),
            mean_latency_s,
            max_latency_s,
            peak_junction_c: if self.peak_junction_c.is_finite() {
                self.peak_junction_c
            } else {
                self.rack.junction_temp_c()
            },
            // Per *task*, not per copy: a competitively duplicated
            // task counts once however many copies raced (the per-copy
            // decisions remain in the event log).
            admitted_sprints: self
                .task_copies
                .iter()
                .zip(&self.task_sprinted)
                .filter(|&(&copies, &sprinted)| copies > 0 && sprinted)
                .count(),
            denied_sprints: self
                .task_copies
                .iter()
                .zip(&self.task_sprinted)
                .filter(|&(&copies, &sprinted)| copies > 0 && !sprinted)
                .count(),
            sheds: self
                .events
                .iter()
                .filter(|e| matches!(e, ClusterEvent::NodeShed { .. }))
                .count(),
            outcomes: self.outcomes.clone(),
            node_reports: self.nodes.iter().map(|n| n.session.report()).collect(),
        }
    }

    /// Nodes currently in a sprint (ramping counts: the admission slot
    /// is taken the moment the burst starts).
    fn sprinting_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.task.is_some()
                    && matches!(
                        n.session.state(),
                        SprintState::Ramping | SprintState::Sprinting
                    )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Assigns ready tasks to idle nodes (coolest-first for headroom-
    /// aware policies), duplicating onto spare nodes under competitive
    /// policies. Under a deferring policy, a head-of-line task that
    /// cannot be admitted *waits for headroom* (until its defer window
    /// expires) instead of burning an order of magnitude longer in
    /// sustained mode — the sprint-or-defer trade that makes rationed
    /// sprinting beat the unmanaged rack.
    fn assign_ready(&mut self, now: f64) {
        while !self.ready.is_empty() {
            let mut idle: Vec<usize> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.task.is_none())
                .map(|(i, _)| i)
                .collect();
            if idle.is_empty() {
                return;
            }
            if self.policy.places_coolest_first() {
                let temps = &self.temps_buf;
                idle.sort_by(|&a, &b| {
                    temps[a]
                        .partial_cmp(&temps[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            let task = *self.ready.front().expect("checked non-empty");
            // Admission is judged on the best (first-placed) candidate:
            // if even the coolest idle node cannot sprint, the task
            // defers rather than degrade — unless its window expired.
            let admit_primary = self.admits_on(idle[0]);
            let mut force_sustained = false;
            if !admit_primary {
                if let Some(defer_s) = self.policy.defer_window_s() {
                    if now - self.tasks[task].arrival_s < defer_s {
                        return; // hold the queue; retry next window
                    }
                    force_sustained = true; // waited long enough
                }
            }
            self.ready.pop_front();
            // Duplicate only onto nodes no waiting task needs
            // (Yonezawa's spare-capacity condition); a deferred task
            // falling back to sustained never duplicates.
            let copies = if force_sustained {
                1
            } else {
                let spare = idle.len().saturating_sub(self.ready.len());
                self.policy.duplicates().min(spare.max(1)).min(idle.len())
            };
            self.task_copies[task] = copies;
            for &node in idle.iter().take(copies) {
                self.start_task_on(node, task, now, force_sustained);
            }
        }
    }

    /// Whether the policy would admit a sprint on `node` right now.
    fn admits_on(&self, node: usize) -> bool {
        let allowance = self
            .policy
            .max_sprinting_at(self.nodes.len(), self.rack.headroom_k());
        let sprinting = self.sprinting_nodes().len();
        let node_headroom = self.nodes[node].session.thermal().t_max_c() - self.temps_buf[node];
        self.policy.admits(node_headroom, sprinting, allowance)
    }

    /// Starts `task` on `node`, consulting the policy for sprint
    /// admission (unless the task already fell back to sustained).
    fn start_task_on(&mut self, node: usize, task: usize, now: f64, force_sustained: bool) {
        let admit = !force_sustained && self.admits_on(node);
        let spec = self.tasks[task];
        let config = if admit {
            self.sprint_config.clone()
        } else {
            self.sustained_config.clone()
        };
        let n = &mut self.nodes[node];
        n.session.set_config(config);
        suite_loader(spec.kind, spec.size, spec.threads)(n.session.machine_mut());
        n.session.begin_burst();
        n.task = Some(task);
        n.assigned_s = now;
        n.sprinted = admit;
        if admit {
            self.task_sprinted[task] = true;
            // A node re-admitted in the same window its previous grant
            // lapsed may still carry a stale rotation entry (the shed
            // pass's retain runs after assignment): drop it so the new
            // grant takes a fresh, single slot.
            self.grant_order.retain(|&n| n != node);
            self.grant_order.push(node);
            self.events.push(ClusterEvent::SprintAdmitted {
                node,
                task,
                at_s: now,
            });
        } else {
            self.events.push(ClusterEvent::SprintDenied {
                node,
                task,
                at_s: now,
            });
        }
    }

    /// Preempts sprinting nodes beyond the policy's allowance, in the
    /// policy's shed order.
    fn shed_pass(&mut self, now: f64) {
        let sprinting = self.sprinting_nodes();
        // Grants whose sprints already ended (budget, completion) fall
        // out of the rotation here.
        self.grant_order.retain(|n| sprinting.contains(n));
        let rack_headroom = self.rack.headroom_k();
        let allowance = self
            .policy
            .max_sprinting_at(self.nodes.len(), rack_headroom);
        if sprinting.len() <= allowance {
            return;
        }
        let order = self
            .policy
            .shed_order(&sprinting, &self.temps_buf, &self.grant_order);
        let excess = sprinting.len() - allowance;
        for &node in order.iter().take(excess) {
            self.nodes[node].session.preempt_sprint();
            self.grant_order.retain(|&n| n != node);
            self.events.push(ClusterEvent::NodeShed {
                node,
                at_s: now,
                rack_headroom_k: rack_headroom,
            });
        }
    }

    /// Records a finished node's task (first finisher wins under
    /// duplication) and frees the node.
    fn complete(&mut self, node: usize) {
        let task = self.nodes[node]
            .task
            .take()
            .expect("complete() requires a running task");
        if self.task_done[task] {
            return; // a duplicate copy lost the race
        }
        self.task_done[task] = true;
        self.outcomes.push(TaskOutcome {
            task,
            node,
            arrival_s: self.tasks[task].arrival_s,
            assigned_s: self.nodes[node].assigned_s,
            completed_s: self.nodes[node].session.now_s(),
            sprinted: self.nodes[node].sprinted,
            copies: self.task_copies[task],
        });
    }
}
