//! The shared rack power-delivery pool and its per-node views — the
//! electrical analogue of [`crate::rack`].
//!
//! A rack's servers do not each own a wall outlet: they hang off one
//! PDU/busbar whose provisioned feed (the *rack power cap*) was sized
//! for sustained load, with a stored-energy reserve (UPS/ultracapacitor
//! bank) riding through transients. Sprinting electrifies the same
//! tragedy of the commons the thermal pool has: every node sprinting at
//! once demands several times the provisioned feed, the reserve drains,
//! and the bus browns out.
//!
//! [`RackSupply`] wraps that pool in shared ownership and hands out
//! [`NodeSupplyView`]s — one per server — each of which implements the
//! sprint loop's `PowerSupply` port, mirroring the thermal port's
//! nameplate-vs-telemetry split exactly:
//!
//! * a view's `draw` records *its node's* upstream draw in the pool's
//!   telemetry and fails only when the bus is browned out **and** the
//!   node is drawing beyond its nameplate share — during a brownout the
//!   PDU sheds over-share loads, while in-share (sustained) draws ride
//!   through;
//! * a view's `available_power_w` is the node's **nameplate share** of
//!   the rack cap (`cap / nodes`), captured at commissioning: a server's
//!   local governor is provisioned against its share of the feed and
//!   carries no live bus telemetry — a node on a loaded bus still
//!   *believes* its share is available, sprints into the drained
//!   reserve, and trips the brownout. Live pool state (total draw,
//!   headroom, reserve level) belongs to the cluster scheduler:
//!   [`RackSupply::headroom_w`] / [`RackSupply::reserve_fraction`]
//!   expose it for exactly that use (power-aware admission, deferral
//!   and shedding — `ClusterPolicy` + `PowerPolicy`).
//!
//! Nodes attach through a [`Regulator`] (built by
//! [`RackSupplyParams::node_supply`]), so the pool accounts *upstream*
//! watts — chip demand divided by the regulator's load-dependent
//! efficiency — not raw chip power.
//!
//! # Time: frontier settlement
//!
//! Many views draw from one pool, so energy cannot simply be settled
//! per call — N lockstep nodes would drain the reserve N times per
//! window. Each view instead keeps its node's clock (`draw` and
//! `idle_recharge` both advance it), and the pool settles an interval
//! exactly once, when the first view's clock moves past the settled
//! frontier — the same leader-advance rule the thermal rack uses. A
//! settled interval integrates the *currently recorded* per-node draws:
//! follower nodes' updates take effect with at most one window of skew,
//! the same reaction lag every other part of the co-simulation loop
//! already has. Settlement drains the reserve by the over-cap deficit
//! (or recharges it from spare busbar headroom when under cap) and
//! latches the brownout flag the views' draws consult.

use std::cell::RefCell;
use std::rc::Rc;

use sprint_core::supply::{EfficiencyCurve, PowerSupply, Regulator, BOUNDARY_REL_TOL};
use sprint_powersource::battery::SupplyError;

/// Parameters of a rack power-delivery pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackSupplyParams {
    /// Provisioned rack feed (PDU/busbar cap), watts. Demand above this
    /// is served from the reserve; with the reserve empty it browns the
    /// bus out.
    pub cap_w: f64,
    /// Stored-energy ride-through reserve (UPS/ultracap bank), joules.
    pub reserve_capacity_j: f64,
    /// Fastest the reserve recharges from spare busbar headroom, watts.
    pub reserve_recharge_w: f64,
    /// Per-node regulator loss model (each node's view is wrapped in a
    /// [`Regulator`] with this curve by
    /// [`RackSupplyParams::node_supply`]).
    pub regulator: EfficiencyCurve,
}

impl RackSupplyParams {
    /// An unconstrained pool: infinite feed, lossless regulators. A
    /// cluster on this supply is behaviour-identical to one with no
    /// electrical model at all (every draw succeeds, nothing is
    /// recorded against a cap).
    pub fn unlimited() -> Self {
        Self {
            cap_w: f64::INFINITY,
            reserve_capacity_j: f64::INFINITY,
            reserve_recharge_w: f64::INFINITY,
            regulator: EfficiencyCurve::ideal(),
        }
    }

    /// The demo rack's electrical design point for `nodes` servers,
    /// sized against the thermal `rack` preset's ~1 W sustained / 16 W
    /// sprint nodes: the feed carries every node sustained with room
    /// for roughly a third of the rack sprinting (7.5 W/node of
    /// provisioned cap against ~17.7 W of regulated sprint draw), and
    /// the reserve rides through about a second of one extra node's
    /// worth of overdraw — brief admission transients, not scheduled
    /// all-out sprinting, which drains it an order of magnitude
    /// faster.
    pub fn rack(nodes: usize) -> Self {
        assert!(nodes >= 1, "a rack feed needs at least one node");
        Self {
            cap_w: 7.5 * nodes as f64,
            reserve_capacity_j: 10.0 * nodes as f64,
            reserve_recharge_w: 2.0 * nodes as f64,
            regulator: EfficiencyCurve::server_vrm(20.0),
        }
    }

    /// Compresses the electrical time scale by `factor` to match a
    /// time-scaled thermal rack: stored energy shrinks (the reserve
    /// rides through `factor`-times-shorter transients) while power
    /// levels stay physical — the same convention as
    /// `GridThermalParams::time_scaled`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive factor.
    pub fn time_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "time scale must be positive");
        self.reserve_capacity_j /= factor;
        self
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive cap, negative reserve terms, or an
    /// invalid regulator curve.
    pub fn validate(&self) {
        assert!(self.cap_w > 0.0, "rack cap must be positive");
        assert!(
            self.reserve_capacity_j >= 0.0 && self.reserve_recharge_w >= 0.0,
            "reserve terms must be non-negative"
        );
        self.regulator.validate();
    }
}

use crate::rack::FollowerReplayCache;

/// The shared state behind every view of one rack feed.
#[derive(Debug)]
struct SupplyShared {
    /// Memoized follower replay (see
    /// [`FollowerReplayCache`](crate::rack::FollowerReplayCache)):
    /// sleeping nodes share bit-identical clocks, so one node's
    /// repeated-add catch-up answers for the whole fleet.
    replay_cache: Option<FollowerReplayCache>,
    cap_w: f64,
    reserve_j: f64,
    reserve_capacity_j: f64,
    recharge_w: f64,
    /// Per-node upstream draw telemetry, watts (last reported).
    node_draw_w: Vec<f64>,
    /// Per-node clocks, seconds.
    node_time_s: Vec<f64>,
    /// How far pool energy has been settled, seconds.
    settled_to_s: f64,
    /// Latched by settlement: the bus cannot serve the recorded
    /// over-cap demand (reserve empty). Views' draws consult it.
    brownout: bool,
    /// Settled intervals spent browned out (diagnostic).
    brownout_intervals: u64,
    /// Each node's commissioning-time share of the feed, watts. Even
    /// (`cap / nodes`) on a homogeneous rack; a heterogeneous fleet
    /// commissions weighted cuts ([`RackSupply::new_weighted`]).
    nameplate_share_w: Vec<f64>,
    /// The commissioning share weights the cuts were made from
    /// (re-cuts after a decommission reuse them).
    share_weights: Vec<f64>,
    /// The feed the nameplate shares were cut from, watts — frozen at
    /// commissioning (facility re-provisioning moves `cap_w`, never
    /// this).
    commissioned_cap_w: f64,
    /// Which nodes are still commissioned on the feed;
    /// [`RackSupply::decommission_node`] retires one and re-cuts the
    /// nameplate shares among the survivors.
    node_alive: Vec<bool>,
    /// Nodes still commissioned (cached count of `node_alive`).
    alive_nodes: usize,
}

impl SupplyShared {
    /// Re-cuts every node's nameplate share: the commissioned feed
    /// split by commissioning weight across the still-alive nodes.
    /// With unit weights this is bitwise `cap / alive` — summing 1.0
    /// per alive node is exact integer arithmetic in `f64`, and
    /// multiplying by a weight of exactly 1.0 is the identity — so the
    /// homogeneous path reproduces the legacy even cut byte-for-byte.
    fn recut_shares(&mut self) {
        let alive_weight: f64 = self
            .node_alive
            .iter()
            .zip(&self.share_weights)
            .filter(|&(&alive, _)| alive)
            .map(|(_, &w)| w)
            .sum();
        for n in 0..self.nameplate_share_w.len() {
            self.nameplate_share_w[n] =
                self.commissioned_cap_w * self.share_weights[n] / alive_weight;
        }
    }
}

impl SupplyShared {
    /// Advances `node`'s clock to `target`, settling any interval past
    /// the frontier (leader-advance; see the module docs).
    fn advance_node(&mut self, node: usize, dt_s: f64) {
        let target = self.node_time_s[node] + dt_s;
        if target > self.settled_to_s {
            let dt = target - self.settled_to_s;
            self.settle(dt);
            self.settled_to_s = target;
        }
        self.node_time_s[node] = target;
    }

    /// Settles `dt_s` of pool energy against the recorded draws.
    fn settle(&mut self, dt_s: f64) {
        let total: f64 = self.node_draw_w.iter().sum();
        if total > self.cap_w {
            let deficit_j = (total - self.cap_w) * dt_s;
            if deficit_j <= self.reserve_j {
                self.reserve_j -= deficit_j;
                self.brownout = false;
            } else {
                self.reserve_j = 0.0;
                self.brownout = true;
                self.brownout_intervals += 1;
            }
        } else {
            self.brownout = false;
            if self.reserve_j < self.reserve_capacity_j {
                let spare = (self.cap_w - total).min(self.recharge_w);
                self.reserve_j = (self.reserve_j + spare * dt_s).min(self.reserve_capacity_j);
            }
        }
    }
}

/// A rack power-delivery pool shared by many node sessions.
///
/// Cloning is shallow: clones view the same underlying pool.
#[derive(Debug, Clone)]
pub struct RackSupply {
    shared: Rc<RefCell<SupplyShared>>,
}

impl RackSupply {
    /// Commissions a pool for `nodes` servers with even nameplate
    /// shares (`cap / nodes` each).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or zero nodes.
    pub fn new(params: RackSupplyParams, nodes: usize) -> Self {
        Self::new_weighted(params, &vec![1.0; nodes])
    }

    /// Commissions a pool with *weighted* nameplate shares — the
    /// heterogeneous-fleet cut: node `n` is promised
    /// `cap * weights[n] / sum(weights)` of the feed. Unit weights
    /// reproduce [`RackSupply::new`]'s even cut bitwise.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters, zero nodes, or a non-finite or
    /// non-positive weight.
    pub fn new_weighted(params: RackSupplyParams, weights: &[f64]) -> Self {
        params.validate();
        let nodes = weights.len();
        assert!(nodes >= 1, "a rack feed needs at least one node");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "nameplate share weights must be finite and positive"
        );
        let mut shared = SupplyShared {
            replay_cache: None,
            cap_w: params.cap_w,
            reserve_j: params.reserve_capacity_j,
            reserve_capacity_j: params.reserve_capacity_j,
            recharge_w: params.reserve_recharge_w,
            node_draw_w: vec![0.0; nodes],
            node_time_s: vec![0.0; nodes],
            settled_to_s: 0.0,
            brownout: false,
            brownout_intervals: 0,
            nameplate_share_w: vec![0.0; nodes],
            share_weights: weights.to_vec(),
            commissioned_cap_w: params.cap_w,
            node_alive: vec![true; nodes],
            alive_nodes: nodes,
        };
        shared.recut_shares();
        Self {
            shared: Rc::new(RefCell::new(shared)),
        }
    }

    /// Number of server nodes on this feed.
    pub fn nodes(&self) -> usize {
        self.shared.borrow().node_draw_w.len()
    }

    /// The `PowerSupply` view for node `node`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_view(&self, node: usize) -> NodeSupplyView {
        assert!(node < self.nodes(), "node index out of range");
        NodeSupplyView {
            shared: Rc::clone(&self.shared),
            node,
            idle_draw_w: 0.0,
        }
    }

    /// The provisioned rack feed, watts.
    pub fn cap_w(&self) -> f64 {
        self.shared.borrow().cap_w
    }

    /// Node `node`'s nameplate share of the feed, watts (fixed at
    /// commissioning — the figure that node's local governor sees;
    /// even `cap / nodes` unless the pool was commissioned weighted).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn nameplate_share_w(&self, node: usize) -> f64 {
        self.shared.borrow().nameplate_share_w[node]
    }

    /// Re-provisions the live feed cap — the facility settlement hook
    /// (`sprint-facility`): a global admission tier rations facility
    /// headroom by moving each rack's cap every settlement epoch, and
    /// the rack's local `PowerPolicy::Rationed` admission then books
    /// sprints against whatever cap it currently holds. The nameplate
    /// share is untouched (it is a commissioning-time constant by
    /// design — node governors never learn the feed moved), and so is
    /// the reserve: re-provisioning reroutes busbar watts, it does not
    /// add stored energy.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or NaN cap.
    pub fn set_cap_w(&self, cap_w: f64) {
        assert!(cap_w > 0.0 && !cap_w.is_nan(), "rack cap must be positive");
        self.shared.borrow_mut().cap_w = cap_w;
    }

    /// Retires node `node`'s nameplate booking after a permanent
    /// failure: the commissioned feed is re-cut (by commissioning
    /// weight) among the surviving nodes, so each survivor's nameplate
    /// share — its local governor's provisioning figure and its
    /// brownout ride-through boundary — grows. The live cap, reserve
    /// and telemetry are untouched (decommissioning reroutes busbar
    /// watts, it does not add any), the last commissioned node always
    /// keeps the full feed, and retiring an already-retired node is a
    /// no-op.
    pub fn decommission_node(&self, node: usize) {
        let mut s = self.shared.borrow_mut();
        if s.alive_nodes > 1 && s.node_alive[node] {
            s.node_alive[node] = false;
            s.alive_nodes -= 1;
            s.recut_shares();
        }
    }

    /// Nodes still commissioned on the feed (total minus decommissioned).
    pub fn alive_nodes(&self) -> usize {
        self.shared.borrow().alive_nodes
    }

    /// Live total upstream draw across all nodes, watts (telemetry the
    /// cluster scheduler may act on; node governors never see it).
    pub fn total_draw_w(&self) -> f64 {
        self.shared.borrow().node_draw_w.iter().sum()
    }

    /// Live feed headroom below the cap, watts (negative while the
    /// reserve covers an overdraw).
    pub fn headroom_w(&self) -> f64 {
        let s = self.shared.borrow();
        s.cap_w - s.node_draw_w.iter().sum::<f64>()
    }

    /// One node's live upstream draw, watts.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_draw_w(&self, node: usize) -> f64 {
        self.shared.borrow().node_draw_w[node]
    }

    /// Stored energy left in the ride-through reserve, joules.
    pub fn reserve_j(&self) -> f64 {
        self.shared.borrow().reserve_j
    }

    /// Reserve fill fraction in `[0, 1]`: 1.0 for an infinite reserve
    /// (it can never deplete), 0.0 for a zero-capacity one (there is no
    /// ride-through at all, so a reserve-gated backstop like the
    /// power-emergency shed must treat the pool as already empty).
    pub fn reserve_fraction(&self) -> f64 {
        let s = self.shared.borrow();
        if s.reserve_capacity_j.is_infinite() {
            1.0
        } else if s.reserve_capacity_j == 0.0 {
            0.0
        } else {
            s.reserve_j / s.reserve_capacity_j
        }
    }

    /// True while the bus cannot serve the recorded demand (over-cap
    /// draw with an empty reserve).
    pub fn browned_out(&self) -> bool {
        self.shared.borrow().brownout
    }

    /// Settled intervals spent browned out so far (diagnostic).
    pub fn brownout_intervals(&self) -> u64 {
        self.shared.borrow().brownout_intervals
    }

    /// How far pool energy has been settled, seconds.
    pub fn time_s(&self) -> f64 {
        self.shared.borrow().settled_to_s
    }
}

impl RackSupplyParams {
    /// Builds node `node`'s complete supply stack against `pool`: its
    /// pool view behind a [`Regulator`] carrying this parameter set's
    /// loss curve. The view's idle draw is the regulator's fixed
    /// overhead (`upstream_w(0)`), so an idle rack's baseline load
    /// stays visible to admission and settlement. This is what
    /// `ClusterBuilder::rack_supply` installs per node.
    pub fn node_supply(&self, pool: &RackSupply, node: usize) -> Regulator<NodeSupplyView> {
        let view = pool
            .node_view(node)
            .with_idle_draw_w(self.regulator.upstream_w(0.0));
        Regulator::new(view, self.regulator)
    }
}

/// One node's `PowerSupply` view of the shared rack feed (see the
/// module docs for the nameplate-vs-telemetry split and the frontier
/// settlement rule).
#[derive(Debug, Clone)]
pub struct NodeSupplyView {
    shared: Rc<RefCell<SupplyShared>>,
    node: usize,
    /// Upstream draw recorded while the node idles, watts — the
    /// conversion stage's fixed overhead keeps flowing even with the
    /// chip at rest (`EfficiencyCurve::upstream_w(0)`).
    idle_draw_w: f64,
}

impl NodeSupplyView {
    /// The node index this view maps onto.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Sets the upstream draw the pool accounts while this node idles
    /// (default 0; [`RackSupplyParams::node_supply`] sets it to the
    /// regulator's fixed overhead so an idle rack's baseline load is
    /// not hidden from admission and settlement).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite draw.
    pub fn with_idle_draw_w(mut self, watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "idle draw must be non-negative and finite"
        );
        self.idle_draw_w = watts;
        self
    }
}

impl PowerSupply for NodeSupplyView {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        let mut s = self.shared.borrow_mut();
        s.node_draw_w[self.node] = power_w.max(0.0);
        s.advance_node(self.node, dt_s);
        // During a brownout the PDU sheds loads drawing beyond their
        // nameplate share; in-share (sustained) draws ride through.
        // The boundary is tolerance-consistent with the advertised
        // share, like `PinLimited`.
        if s.brownout && power_w > s.nameplate_share_w[self.node] * (1.0 + BOUNDARY_REL_TOL) {
            return Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: s.nameplate_share_w[self.node],
            });
        }
        Ok(())
    }

    fn available_power_w(&self) -> f64 {
        // The *nameplate* share, deliberately blind to the live bus
        // state — a node's governor was provisioned at commissioning
        // and has no rack telemetry (module docs). The scheduler reads
        // the live pool through `RackSupply` instead.
        self.shared.borrow().nameplate_share_w[self.node]
    }

    fn remaining_energy_j(&self) -> f64 {
        // Nameplate symmetry again: the node is promised its share of
        // the ride-through reserve, not a live reading of it.
        let s = self.shared.borrow();
        s.reserve_capacity_j / s.node_draw_w.len() as f64
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        let mut s = self.shared.borrow_mut();
        s.node_draw_w[self.node] = self.idle_draw_w;
        let before = s.reserve_j;
        s.advance_node(self.node, dt_s);
        // Energy that flowed back into the shared reserve during the
        // interval this call settled (zero for followers — the leader
        // already accounted it).
        let gained = s.reserve_j - before;
        if gained.is_finite() {
            gained.max(0.0)
        } else {
            0.0
        }
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        // Batched follower catch-up, mirroring `NodeThermalView`: one
        // borrow, the idle draw recorded once (re-recording it per
        // iteration is state-idempotent — the looped path stores the
        // same value every call), and per-iteration clock arithmetic
        // identical to `advance_node` (`t + dt_s` per step). A follower
        // interval never moves the settlement frontier, so its gained
        // energy is exactly zero — the same 0.0 the looped path sums.
        // The moment an iteration would cross the frontier, the pool
        // must settle: bail to the per-call path for the remainder.
        let mut remaining = count;
        {
            let mut s = self.shared.borrow_mut();
            let s = &mut *s;
            let node = self.node;
            s.node_draw_w[node] = self.idle_draw_w;
            let settled = s.settled_to_s;
            let t0 = s.node_time_s[node];
            // Cross-node memo: for `dt_s >= 0` the clock sequence is
            // non-decreasing, so a cached final clock at or inside the
            // settlement frontier proves every intermediate target
            // stayed inside it too — the loop below would have taken
            // exactly these steps, gaining exactly zero.
            if let (true, Some(c)) = (dt_s >= 0.0, s.replay_cache) {
                if c.from == t0.to_bits()
                    && c.dt == dt_s.to_bits()
                    && c.count == count
                    && c.to <= settled
                {
                    s.node_time_s[node] = c.to;
                    return 0.0;
                }
            }
            let mut t = t0;
            while remaining > 0 {
                let target = t + dt_s;
                if target > settled {
                    break;
                }
                t = target;
                remaining -= 1;
            }
            s.node_time_s[node] = t;
            if remaining == 0 && count > 0 && dt_s >= 0.0 {
                s.replay_cache = Some(FollowerReplayCache {
                    from: t0.to_bits(),
                    dt: dt_s.to_bits(),
                    count,
                    to: t,
                });
            }
        }
        let mut gained = 0.0;
        for _ in 0..remaining {
            gained += self.idle_recharge(dt_s);
        }
        gained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool4(cap_w: f64, reserve_j: f64) -> RackSupply {
        RackSupply::new(
            RackSupplyParams {
                cap_w,
                reserve_capacity_j: reserve_j,
                reserve_recharge_w: 4.0,
                regulator: EfficiencyCurve::ideal(),
            },
            4,
        )
    }

    #[test]
    fn lockstep_settles_the_pool_once_per_round() {
        let pool = pool4(40.0, 100.0);
        let mut views: Vec<NodeSupplyView> = (0..4).map(|n| pool.node_view(n)).collect();
        // All four nodes draw 20 W: 80 W demand on a 40 W feed drains
        // the reserve at 40 J/s — if every call settled, it would
        // drain 4x too fast. The first round settles with only the
        // leader's draw recorded (followers land with one window of
        // skew, like the thermal rack), so full-demand drain starts at
        // round 2.
        for round in 1..=10 {
            for v in views.iter_mut() {
                v.draw(20.0, 0.1).unwrap();
            }
            let expected = 100.0 - 40.0 * 0.1 * (round - 1) as f64;
            assert!(
                (pool.reserve_j() - expected).abs() < 1e-9,
                "round {round}: reserve {} not {expected}",
                pool.reserve_j()
            );
            assert!((pool.time_s() - 0.1 * round as f64).abs() < 1e-12);
        }
        assert_eq!(pool.total_draw_w(), 80.0);
        assert_eq!(pool.headroom_w(), -40.0);
    }

    #[test]
    fn follower_draw_updates_take_effect_next_window() {
        let pool = pool4(40.0, 100.0);
        let mut v0 = pool.node_view(0);
        let mut v1 = pool.node_view(1);
        // Leader settles the window with node 1's draw still at zero.
        v0.draw(30.0, 1.0).unwrap();
        v1.draw(30.0, 1.0).unwrap();
        assert_eq!(pool.reserve_j(), 100.0, "first window: 30 W under cap");
        // Next window both recorded draws are live: 60 W on 40 W.
        v0.draw(30.0, 1.0).unwrap();
        v1.draw(30.0, 1.0).unwrap();
        assert!((pool.reserve_j() - 80.0).abs() < 1e-9, "20 J deficit");
    }

    #[test]
    fn brownout_sheds_over_share_draws_but_not_in_share_ones() {
        let pool = pool4(40.0, 5.0);
        let mut views: Vec<NodeSupplyView> = (0..4).map(|n| pool.node_view(n)).collect();
        assert_eq!(pool.nameplate_share_w(0), 10.0);
        // 80 W on a 40 W feed: the 5 J reserve covers 0.125 s.
        let mut failed_at = None;
        for round in 0..10 {
            let mut any_err = false;
            for v in views.iter_mut() {
                if v.draw(20.0, 0.05).is_err() {
                    any_err = true;
                }
            }
            if any_err {
                failed_at = Some(round);
                break;
            }
        }
        let failed_at = failed_at.expect("the reserve must run out");
        assert!(failed_at >= 2, "the reserve rides through ~3 rounds");
        assert!(pool.browned_out());
        assert_eq!(pool.reserve_j(), 0.0);
        // During the brownout an in-share draw still succeeds…
        views[0]
            .draw(9.0, 0.05)
            .expect("in-share draw rides through");
        // …drawing exactly the advertised nameplate share does too…
        let share = views[1].available_power_w();
        views[1].draw(share, 0.05).expect("boundary draw succeeds");
        // …while an over-share draw is shed with chip-relevant figures.
        match views[2].draw(20.0, 0.05) {
            Err(SupplyError::CurrentLimit {
                requested_w,
                available_w,
            }) => {
                assert_eq!(requested_w, 20.0);
                assert_eq!(available_w, 10.0);
            }
            other => panic!("expected a shed, got {other:?}"),
        }
    }

    #[test]
    fn reserve_recharges_from_spare_headroom() {
        let pool = pool4(40.0, 10.0);
        let mut views: Vec<NodeSupplyView> = (0..4).map(|n| pool.node_view(n)).collect();
        // 60 W on a 40 W feed: rounds 2-5 settle the full demand (the
        // first round sees only the leader's draw — follower skew), so
        // 4 rounds drain 20 W x 0.05 s = 1 J each.
        for _ in 0..5 {
            for v in views.iter_mut() {
                v.draw(15.0, 0.05).unwrap();
            }
        }
        assert!((pool.reserve_j() - 6.0).abs() < 1e-9);
        // Idle rack: recharge is capped by the 4 W limit, not the 40 W
        // of spare headroom. The first idle round still settles the
        // followers' stale 15 W draws (45 W total: 0.25 J more out);
        // the remaining nine recharge 4 W x 0.05 s = 0.2 J each.
        let mut gained = 0.0;
        for _ in 0..10 {
            for v in views.iter_mut() {
                gained += v.idle_recharge(0.05);
            }
        }
        assert!((gained - 1.8).abs() < 1e-9, "4 W for 0.45 s: {gained}");
        assert!((pool.reserve_j() - 7.55).abs() < 1e-9);
        assert!(pool.reserve_fraction() > 0.75 && pool.reserve_fraction() < 0.76);
        assert!(!pool.browned_out(), "recharge clears the brownout state");
    }

    #[test]
    fn unlimited_pool_never_limits_and_never_browns_out() {
        let pool = RackSupply::new(RackSupplyParams::unlimited(), 2);
        let mut v0 = pool.node_view(0);
        let mut v1 = pool.node_view(1);
        for _ in 0..100 {
            v0.draw(1e6, 1.0).unwrap();
            v1.draw(1e6, 1.0).unwrap();
        }
        assert!(!pool.browned_out());
        assert_eq!(pool.reserve_fraction(), 1.0);
        assert_eq!(v0.available_power_w(), f64::INFINITY);
        assert_eq!(v0.idle_recharge(1.0), 0.0, "infinite reserve gains nothing");
    }

    #[test]
    fn node_supply_stacks_a_regulator_over_the_view() {
        let params = RackSupplyParams::rack(4);
        let pool = RackSupply::new(params, 4);
        let mut node0 = params.node_supply(&pool, 0);
        node0.draw(16.0, 1.0).unwrap();
        let upstream = pool.node_draw_w(0);
        assert!(
            (upstream - params.regulator.upstream_w(16.0)).abs() < 1e-12,
            "the pool sees regulated draw: {upstream}"
        );
        assert!(upstream > 17.0, "losses on top of 16 W: {upstream}");
    }

    #[test]
    fn idle_nodes_pay_the_regulator_fixed_overhead() {
        // Regression: idle telemetry was recorded as 0 W, hiding the
        // converters' fixed overhead (16 x 0.3 W on the demo rack)
        // from admission and settlement.
        let params = RackSupplyParams::rack(4);
        let pool = RackSupply::new(params, 4);
        let mut stacks: Vec<_> = (0..4).map(|n| params.node_supply(&pool, n)).collect();
        for s in stacks.iter_mut() {
            s.idle_recharge(0.01);
        }
        let expected = 4.0 * params.regulator.upstream_w(0.0);
        assert!(
            (pool.total_draw_w() - expected).abs() < 1e-12,
            "an idle rack still draws its fixed overhead: {} vs {expected}",
            pool.total_draw_w()
        );
        // A bare view (no regulator) keeps the zero-draw default.
        let bare_pool = pool4(40.0, 10.0);
        let mut bare = bare_pool.node_view(0);
        bare.idle_recharge(0.01);
        assert_eq!(bare_pool.node_draw_w(0), 0.0);
    }

    #[test]
    fn time_scaling_shrinks_the_reserve_only() {
        let p = RackSupplyParams::rack(16);
        let scaled = p.time_scaled(6000.0);
        assert_eq!(scaled.cap_w, p.cap_w);
        assert_eq!(scaled.reserve_recharge_w, p.reserve_recharge_w);
        assert!((scaled.reserve_capacity_j - p.reserve_capacity_j / 6000.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_reserve_reads_empty() {
        // Regression: a zero-capacity reserve once reported a 1.0 fill
        // fraction, which permanently disarmed reserve-gated backstops
        // (the power-emergency shed never saw it as depleted).
        let pool = pool4(40.0, 0.0);
        assert_eq!(pool.reserve_fraction(), 0.0);
        let mut views: Vec<NodeSupplyView> = (0..4).map(|n| pool.node_view(n)).collect();
        // With no ride-through at all, over-cap demand browns out on
        // the first settled overdraw window.
        for _ in 0..2 {
            for v in views.iter_mut() {
                let _ = v.draw(20.0, 0.05);
            }
        }
        assert!(pool.browned_out());
        assert_eq!(pool.reserve_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "node index")]
    fn out_of_range_view_rejected() {
        let _ = pool4(10.0, 1.0).node_view(4);
    }

    /// The heterogeneous commissioning cut: weighted shares
    /// re-normalize to the cap, unit weights reproduce the even cut
    /// bitwise, and a decommission re-cuts by weight among survivors.
    #[test]
    fn weighted_shares_cut_and_recut_by_weight() {
        let params = RackSupplyParams {
            cap_w: 40.0,
            reserve_capacity_j: 10.0,
            reserve_recharge_w: 4.0,
            regulator: EfficiencyCurve::ideal(),
        };
        // A big node weighted 2.0 against three weight-1 littles.
        let pool = RackSupply::new_weighted(params, &[2.0, 1.0, 1.0, 1.0]);
        assert_eq!(pool.nameplate_share_w(0), 16.0);
        assert_eq!(pool.nameplate_share_w(1), 8.0);
        let total: f64 = (0..4).map(|n| pool.nameplate_share_w(n)).sum();
        assert!(
            (total - 40.0).abs() < 1e-12,
            "shares re-normalize to the cap"
        );
        // The big node's view advertises its weighted share.
        assert_eq!(pool.node_view(0).available_power_w(), 16.0);
        // Retiring a little re-cuts 40 W over weight 4: big gets 20 W.
        pool.decommission_node(3);
        assert_eq!(pool.alive_nodes(), 3);
        assert_eq!(pool.nameplate_share_w(0), 20.0);
        assert_eq!(pool.nameplate_share_w(1), 10.0);
        // Retiring the same node again is a no-op.
        pool.decommission_node(3);
        assert_eq!(pool.alive_nodes(), 3);
        assert_eq!(pool.nameplate_share_w(0), 20.0);
        // Unit weights are bitwise the even cut, before and after a
        // decommission (the homogeneous byte-identity contract).
        let even = RackSupply::new(params, 4);
        let weighted = RackSupply::new_weighted(params, &[1.0; 4]);
        for n in 0..4 {
            assert_eq!(
                even.nameplate_share_w(n).to_bits(),
                weighted.nameplate_share_w(n).to_bits()
            );
        }
        even.decommission_node(1);
        weighted.decommission_node(1);
        for n in 0..4 {
            assert_eq!(
                even.nameplate_share_w(n).to_bits(),
                weighted.nameplate_share_w(n).to_bits()
            );
        }
    }
}
