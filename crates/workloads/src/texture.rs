//! `texture` — image composition, after SD-VBS's texture synthesis.
//!
//! Each round composites several source layers into the output under
//! per-tile weights. Between parallel blend rounds, a *serial* seam pass
//! walks the tile-boundary pixels to choose blend seams — the sequential
//! fraction that caps texture's parallel speedup well below linear (the
//! paper attributes texture's limited scaling to available parallelism).

use std::sync::Arc;

use sprint_archsim::isa::Op;
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::{textured_image, GrayImage};
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Number of source layers composited.
pub const LAYERS: usize = 4;
/// Blend rounds (each preceded by a serial seam pass).
pub const ROUNDS: usize = 2;
/// Tile edge length in pixels; seams run along tile boundaries.
pub const TILE: usize = 32;

/// Blends the layers natively: output = sum of tile-weighted layers.
pub fn compose_native(layers: &[GrayImage]) -> Vec<f32> {
    assert!(!layers.is_empty());
    let (w, h) = (layers[0].width, layers[0].height);
    let mut out = vec![0.0f32; w * h];
    for _round in 0..ROUNDS {
        for y in 0..h {
            for x in 0..w {
                let tile = (y / TILE) * (w / TILE).max(1) + (x / TILE);
                let mut acc = 0.0f32;
                for (l, layer) in layers.iter().enumerate() {
                    // Deterministic per-tile weight.
                    let weight = ((tile * 31 + l * 17) % 97) as f32 / 97.0;
                    acc += weight * f32::from(layer.at(x, y));
                }
                out[y * w + x] = 0.5 * out[y * w + x] + 0.5 * acc / LAYERS as f32;
            }
        }
    }
    out
}

/// Fraction of pixels on tile boundaries — the serial seam pass touches
/// roughly `2/TILE` of the image per round.
pub fn serial_fraction() -> f64 {
    2.0 / TILE as f64
}

struct TextureData {
    width: usize,
    height: usize,
    layers: Vec<Region>,
    output: Region,
}

/// The texture-composition workload.
pub struct TextureWorkload {
    data: Arc<TextureData>,
    checksum: u64,
}

impl std::fmt::Debug for TextureWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TextureWorkload")
            .field("width", &self.data.width)
            .field("height", &self.data.height)
            .finish_non_exhaustive()
    }
}

impl TextureWorkload {
    /// Builds the workload at a standard input size.
    pub fn new(size: InputSize) -> Self {
        let scale = (size.scale() as f64).sqrt();
        let w = (512.0 * scale) as usize;
        let h = (416.0 * scale) as usize;
        Self::with_dims(w, h, 0x7E97)
    }

    /// Builds the workload for explicit dimensions.
    pub fn with_dims(width: usize, height: usize, seed: u64) -> Self {
        let layers: Vec<GrayImage> = (0..LAYERS)
            .map(|l| textured_image(width, height, seed + l as u64))
            .collect();
        let native = compose_native(&layers);
        let checksum = native.iter().map(|&v| v as u64).sum();
        let mut mem = AddressSpace::new();
        let layer_regions = (0..LAYERS)
            .map(|_| mem.alloc_bytes((width * height) as u64))
            .collect();
        let output = mem.alloc_bytes((width * height * 4) as u64);
        Self {
            data: Arc::new(TextureData {
                width,
                height,
                layers: layer_regions,
                output,
            }),
            checksum,
        }
    }

    /// Checksum of the native composition.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

impl Workload for TextureWorkload {
    fn name(&self) -> &'static str {
        "texture"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        for t in 0..threads {
            machine.spawn(Box::new(TextureKernel::new(self.data.clone(), t, threads)));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.width * self.data.height * ROUNDS) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Thread 0 walks tile boundaries; others wait at the barrier.
    Seam,
    Blend,
    RoundEnd,
    Finished,
}

struct TextureKernel {
    data: Arc<TextureData>,
    tid: usize,
    rows: std::ops::Range<usize>,
    round: usize,
    phase: Phase,
    cursor: usize,
}

impl TextureKernel {
    fn new(data: Arc<TextureData>, tid: usize, threads: usize) -> Self {
        let rows = chunk_range(data.height, threads, tid);
        Self {
            cursor: rows.start,
            rows,
            data,
            tid,
            round: 0,
            phase: Phase::Seam,
        }
    }
}

impl Kernel for TextureKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        let d = &self.data;
        let w = d.width as u64;
        match self.phase {
            Phase::Seam => {
                if self.tid != 0 {
                    out.push(Op::Barrier);
                    self.phase = Phase::Blend;
                    self.cursor = self.rows.start;
                    return KernelStatus::Running;
                }
                // Thread 0: serial seam pass over tile-boundary rows.
                if self.cursor == self.rows.start {
                    self.cursor = 0;
                }
                let mut rows_done = 0;
                while self.cursor < d.height && rows_done < 4 {
                    let y = self.cursor;
                    self.cursor += TILE; // one boundary row per tile row
                    rows_done += 1;
                    // Horizontal boundary row: all layers + output, with
                    // the same per-pixel cost as blending (seam scoring).
                    for layer in &d.layers {
                        emit::load_span(out, *layer, y as u64 * w, w);
                    }
                    emit::load_span(out, d.output, y as u64 * w * 4, w * 4);
                    emit::element_mix(out, w, (LAYERS * 2) as u64, 3, 1);
                    // Vertical boundaries contribute another column's worth
                    // of work per tile column, modelled as extra compute.
                    emit::element_mix(out, w, 2, 2, 1);
                }
                if self.cursor >= d.height {
                    out.push(Op::Barrier);
                    self.phase = Phase::Blend;
                    self.cursor = self.rows.start;
                }
                KernelStatus::Running
            }
            Phase::Blend => {
                if self.cursor >= self.rows.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::RoundEnd;
                    return KernelStatus::Running;
                }
                let y = self.cursor as u64;
                // Stream each layer's row, read-modify-write the output.
                for layer in &d.layers {
                    emit::load_span(out, *layer, y * w, w);
                }
                emit::load_span(out, d.output, y * w * 4, w * 4);
                emit::store_span(out, d.output, y * w * 4, w * 4);
                emit::element_mix(out, w, (LAYERS * 2) as u64, 3, 1);
                self.cursor += 1;
                KernelStatus::Running
            }
            Phase::RoundEnd => {
                self.round += 1;
                if self.round >= ROUNDS {
                    self.phase = Phase::Finished;
                    return KernelStatus::Done;
                }
                self.phase = Phase::Seam;
                self.cursor = self.rows.start;
                KernelStatus::Running
            }
            Phase::Finished => KernelStatus::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn native_composition_is_bounded() {
        let layers: Vec<GrayImage> = (0..LAYERS)
            .map(|l| textured_image(64, 64, l as u64))
            .collect();
        let out = compose_native(&layers);
        assert_eq!(out.len(), 64 * 64);
        assert!(out.iter().all(|&v| (0.0..=255.0).contains(&v)));
        assert!(out.iter().any(|&v| v > 1.0), "output must be non-trivial");
    }

    #[test]
    fn serial_fraction_is_small_but_material() {
        let s = serial_fraction();
        assert!(s > 0.03 && s < 0.15, "seam fraction {s}");
    }

    #[test]
    fn speedup_is_amdahl_limited() {
        let elapsed = |threads: usize| -> u64 {
            let w = TextureWorkload::with_dims(256, 192, 5);
            let mut m = Machine::new(MachineConfig::hpca().with_cores(threads));
            w.setup(&mut m, threads);
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = elapsed(1);
        let t16 = elapsed(16);
        let speedup = t1 as f64 / t16 as f64;
        assert!(
            (4.0..13.0).contains(&speedup),
            "texture speedup should be Amdahl-capped: {speedup:.2}"
        );
    }

    #[test]
    fn rounds_produce_barriers() {
        let w = TextureWorkload::with_dims(128, 96, 5);
        let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
        w.setup(&mut m, 4);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // Two barriers per round (seam, blend).
        assert_eq!(m.stats().barrier_episodes, (2 * ROUNDS) as u64);
    }
}
