//! The abstract instruction set executed by simulated cores.
//!
//! The paper models in-order x86 cores with "a CPI of one plus cache miss
//! penalties" (Section 8.1); the precise instruction encoding is irrelevant
//! to the evaluation, so this simulator executes *operation batches*:
//! runs of single-cycle compute operations, individual memory references
//! (which carry addresses through the cache hierarchy), and the
//! synchronization operations the sprint runtime reacts to (PAUSE on
//! spinning, barriers, locks and task fetches).

use serde::{Deserialize, Serialize};

/// Class of a compute operation; determines latency (one cycle each, as in
/// the paper's CPI-1 model) and per-instruction dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/shift).
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Floating-point arithmetic.
    FpAlu,
    /// Branch (taken or not; no misprediction modelling at CPI 1).
    Branch,
}

impl OpClass {
    /// All compute classes, for iteration in energy tables and tests.
    pub const ALL: [OpClass; 4] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::Branch,
    ];
}

/// One operation (or batch of identical operations) for a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// `count` back-to-back compute operations of the same class
    /// (one cycle each).
    Compute {
        /// Operation class.
        class: OpClass,
        /// Number of operations in the batch.
        count: u32,
    },
    /// A load from a byte address (cache-line granularity for timing).
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to a byte address.
    Store {
        /// Byte address.
        addr: u64,
    },
    /// The PAUSE hint: the runtime puts the core to sleep for a fixed nap
    /// (1000 cycles in the paper) at ~10% of active power.
    Pause,
    /// Arrive at a global barrier; blocks until all live threads arrive.
    Barrier,
    /// Acquire a lock (spin-with-pause while held elsewhere).
    LockAcquire {
        /// Lock index.
        lock: u32,
    },
    /// Release a lock.
    LockRelease {
        /// Lock index.
        lock: u32,
    },
    /// Pop the next task index from a shared work queue; the result is
    /// delivered to the kernel through its inbox before its next step.
    FetchTask {
        /// Queue index.
        queue: u32,
    },
}

impl Op {
    /// Number of dynamic instructions this op represents.
    pub fn instruction_count(&self) -> u64 {
        match self {
            Op::Compute { count, .. } => u64::from(*count),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_batches_count_all_instructions() {
        let op = Op::Compute {
            class: OpClass::IntAlu,
            count: 37,
        };
        assert_eq!(op.instruction_count(), 37);
        assert_eq!(Op::Load { addr: 0x40 }.instruction_count(), 1);
        assert_eq!(Op::Pause.instruction_count(), 1);
    }

    #[test]
    fn all_classes_distinct() {
        for (i, a) in OpClass::ALL.iter().enumerate() {
            for b in &OpClass::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
