//! The dynamic energy model (Section 8.1).
//!
//! The paper derives per-instruction-class energies from McPAT configured
//! for a 1 GHz, 1 W core at the 22 nm LOP (low-operating-power) node. We
//! embed an equivalent table calibrated so that an active core at IPC 1
//! with a typical instruction mix averages ≈ 1 W (1 nJ/cycle at 1 GHz),
//! a sleeping core dissipates 10% of active power, and voltage scaling
//! costs energy quadratically (the assumption behind the paper's DVFS
//! comparison).

use serde::{Deserialize, Serialize};

use crate::isa::OpClass;

/// Per-instruction-class dynamic energy table, joules per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Integer ALU op energy, J.
    pub int_alu_j: f64,
    /// Integer multiply/divide energy, J.
    pub int_mul_j: f64,
    /// Floating-point op energy, J.
    pub fp_alu_j: f64,
    /// Branch energy, J.
    pub branch_j: f64,
    /// L1 access energy (added to loads/stores), J.
    pub l1_access_j: f64,
    /// LLC access energy (added on L1 misses), J.
    pub llc_access_j: f64,
    /// DRAM access energy (added on LLC misses), J.
    pub dram_access_j: f64,
    /// Baseline per-cycle pipeline/clock energy while active, J.
    pub active_cycle_j: f64,
}

impl EnergyModel {
    /// The McPAT-derived table for a 1 GHz / 1 W core at 22 nm LOP.
    ///
    /// Calibrated such that a typical mix (≈55% ALU, 10% mul, 10% FP, 10%
    /// branch, 25% memory with ~5% L1 miss rate) averages ≈ 1 nJ/cycle.
    pub fn mcpat_22nm_lop() -> Self {
        Self {
            int_alu_j: 0.45e-9,
            int_mul_j: 0.90e-9,
            fp_alu_j: 0.80e-9,
            branch_j: 0.40e-9,
            l1_access_j: 0.55e-9,
            llc_access_j: 2.0e-9,
            dram_access_j: 15.0e-9,
            active_cycle_j: 0.35e-9,
        }
    }

    /// Energy of one compute instruction of `class`, J.
    pub fn compute_j(&self, class: OpClass) -> f64 {
        match class {
            OpClass::IntAlu => self.int_alu_j,
            OpClass::IntMul => self.int_mul_j,
            OpClass::FpAlu => self.fp_alu_j,
            OpClass::Branch => self.branch_j,
        }
    }

    /// Scales every entry by `factor` (used for voltage scaling: energy
    /// per operation goes as V^2).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Self {
            int_alu_j: self.int_alu_j * factor,
            int_mul_j: self.int_mul_j * factor,
            fp_alu_j: self.fp_alu_j * factor,
            branch_j: self.branch_j * factor,
            l1_access_j: self.l1_access_j * factor,
            llc_access_j: self.llc_access_j * factor,
            dram_access_j: self.dram_access_j * factor,
            active_cycle_j: self.active_cycle_j * factor,
        }
    }

    /// Estimated average power of an active core at IPC 1, watts, for a
    /// representative instruction mix (used by tests and budget
    /// estimation).
    pub fn nominal_core_power_w(&self, freq_ghz: f64) -> f64 {
        // Mix: 50% IntAlu, 5% IntMul, 10% FpAlu, 10% Branch, 25% memory
        // (of which ~5% miss to LLC, ~1% to DRAM).
        let per_instr = 0.50 * self.int_alu_j
            + 0.05 * self.int_mul_j
            + 0.10 * self.fp_alu_j
            + 0.10 * self.branch_j
            + 0.25 * (self.l1_access_j + 0.05 * self.llc_access_j + 0.01 * self.dram_access_j)
            + self.active_cycle_j;
        per_instr * freq_ghz * 1e9
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::mcpat_22nm_lop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_power_close_to_one_watt() {
        let e = EnergyModel::mcpat_22nm_lop();
        let p = e.nominal_core_power_w(1.0);
        assert!(
            (0.85..1.15).contains(&p),
            "nominal core power {p:.3} W should be ≈ 1 W"
        );
    }

    #[test]
    fn scaling_is_uniform() {
        let e = EnergyModel::mcpat_22nm_lop();
        let s = e.scaled(2.0);
        for class in OpClass::ALL {
            assert!((s.compute_j(class) - 2.0 * e.compute_j(class)).abs() < 1e-24);
        }
        assert!((s.dram_access_j - 2.0 * e.dram_access_j).abs() < 1e-24);
    }

    #[test]
    fn dvfs_boost_energy_ratio_matches_quadratic_rule() {
        // A 2.52x frequency boost at proportionally higher voltage costs
        // (2.52)^2 ≈ 6.35x energy per instruction — the paper's ~6x figure.
        let boost = 16.0f64.powf(1.0 / 3.0);
        let e = EnergyModel::mcpat_22nm_lop();
        let boosted = e.scaled(boost * boost);
        let ratio = boosted.int_alu_j / e.int_alu_j;
        assert!((ratio - 6.35).abs() < 0.05, "ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = EnergyModel::mcpat_22nm_lop().scaled(0.0);
    }
}
