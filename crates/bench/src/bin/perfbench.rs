//! `perfbench` — the grid-solver performance harness.
//!
//! Times the explicit and ADI solvers through one sprint-and-rest cycle
//! across grid resolutions, plus five scheduler-scale points — the
//! thermal `rack_case`, the power-aware scheduler loop
//! (`rack_power_case`: shared-supply settlement, regulator math and
//! joint thermal+power admission on the 16-node rack), the facility
//! settlement loop (`facility_case`: sharded racks, row CRAC coupling
//! and cross-rack cap rationing), the event-driven cluster core
//! (`event_core_case`: a 4096-server sparse-arrival drain stepped by
//! both the lockstep golden oracle and the event core, digests
//! asserted byte-identical) and the heterogeneous duplication point
//! (`hetero_rack_case`: the degraded big/little rack under a crash
//! plan, competitive duplicates with loser cancellation vs bounded
//! retry-in-place) — prints the comparison table, and writes
//! `BENCH_grid.json` at the repository root (override the location
//! with `SPRINT_BENCH_OUT`).
//!
//! Usage:
//! ```text
//! perfbench [--quick] [--full] [--check]
//! ```
//!
//! * `--quick` — the CI pair (8x8 and 32x32) only.
//! * `--full`  — adds the 64x64 rack-scale preview (explicit there is
//!   minutes of wall-clock; that cost is the figure's point).
//! * `--check` — perf-smoke gate: exit non-zero unless the 32x32 case
//!   shows ADI at least 8x faster than explicit at matched accuracy
//!   (max junction deviation below 0.1 K), the threaded rack point
//!   beats its serial run by at least 4x when the host has 8+ CPUs
//!   (waived — with a printed note — on smaller hosts; the 1/2/8-lane
//!   digest equality is asserted inside the measurement regardless),
//!   both scheduler points clear the end-to-end tasks/sec floor with
//!   zero electrical aborts and all-zero fault counters (no fault plan
//!   is installed, so the always-on fault ports must stay perfectly
//!   inert), the event core beats the lockstep oracle by at least
//!   5x while reproducing its report digest byte for byte, and on the
//!   degraded heterogeneous rack the duplicate+cancel p99 beats the
//!   retry-in-place p99 (duplication must stay a latency hedge, not a
//!   throughput tax).

use sprint_bench::figs_perf;

/// The `--check` gate: minimum acceptable 32x32 speedup. With the
/// batched SoA Thomas sweeps the committed baseline sits well above
/// 10x; 8x leaves headroom for noisy CI runners while still catching a
/// regression that re-couples the ADI sub-step to the cell time
/// constant or drops the batched solve back to per-line gathers.
const CHECK_MIN_SPEEDUP: f64 = 8.0;
/// The `--check` gate: minimum threaded-vs-serial speedup on the 8x8
/// rack point, enforced only when the host reports at least
/// [`CHECK_THREADED_MIN_CPUS`] CPUs (a single-core runner cannot show
/// wall-clock parallel speedup; correctness — digest equality across
/// 1/2/8 lanes — is asserted inside the measurement on every host).
const CHECK_MIN_THREADED_SPEEDUP: f64 = 4.0;
/// CPUs required before the threaded wall-clock floor applies.
const CHECK_THREADED_MIN_CPUS: usize = 8;
/// The `--check` gate: matched-accuracy bar, Kelvin.
const CHECK_MAX_DEV_K: f64 = 0.1;
/// The `--check` gate: minimum end-to-end tasks/sec for the rack-power
/// and facility scheduler points. The committed baseline clears this by
/// roughly an order of magnitude; the floor catches a scheduler-loop
/// regression (an accidental O(nodes^2) pass, a lost factorization
/// cache) without flaking on slow CI runners.
const CHECK_MIN_TASKS_PER_S: f64 = 3.0;
/// The `--check` gate: minimum event-core speedup over the lockstep
/// oracle on the 4096-server sparse-arrival drain. The committed
/// baseline sits above 10x; 5x leaves noisy-runner headroom while
/// still catching a regression that reintroduces per-idle-node work
/// into the event core's window step. Byte-for-byte digest equality
/// with the oracle is asserted inside the measurement itself — a
/// divergent event core aborts the bench before any number is printed.
const CHECK_MIN_EVENT_SPEEDUP: f64 = 5.0;

fn main() {
    let mut quick = false;
    let mut full = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--check" => check = true,
            other => {
                eprintln!("unknown flag {other}; usage: perfbench [--quick] [--full] [--check]");
                std::process::exit(2);
            }
        }
    }
    let run = figs_perf::fig_perf_cases(quick, full);
    print!("{}", run.report);
    if check {
        // Judge this run's in-memory measurement, never whatever
        // BENCH_grid.json happened to be on disk (a failed write must
        // not let the gate pass on a stale committed baseline).
        let case32 = run
            .cases
            .iter()
            .find(|c| c.n == 32)
            .expect("--check needs the 32x32 case in the sweep");
        println!(
            "perf-smoke gate: 32x32 speedup {:.1}x (need >= {CHECK_MIN_SPEEDUP}x), \
             max dev {:.4} K (need < {CHECK_MAX_DEV_K} K)",
            case32.speedup, case32.max_dev_k
        );
        let threaded_gated = run.threaded.cpus >= CHECK_THREADED_MIN_CPUS;
        if threaded_gated {
            println!(
                "perf-smoke gate: threaded rack {:.1}x over serial on {} cpus \
                 (need >= {CHECK_MIN_THREADED_SPEEDUP}x), 1/2/8-lane digests identical",
                run.threaded.speedup, run.threaded.cpus,
            );
        } else {
            println!(
                "perf-smoke gate: threaded rack wall-clock floor WAIVED — host has \
                 {} cpu(s), need {CHECK_THREADED_MIN_CPUS}+ for a parallel speedup \
                 claim (1/2/8-lane digest equality still asserted, measured {:.2}x)",
                run.threaded.cpus, run.threaded.speedup,
            );
        }
        println!(
            "perf-smoke gate: rack power {:.1} tasks/s, facility {:.1} tasks/s \
             (need >= {CHECK_MIN_TASKS_PER_S}), {} + {} electrical aborts (need 0)",
            run.rack_power.tasks_per_s,
            run.facility.tasks_per_s,
            run.rack_power.supply_aborts,
            run.facility.supply_aborts,
        );
        println!(
            "perf-smoke gate: fault counters on the fault-free points: \
             {} + {} events, {} + {} failed tasks (need all 0 — the always-on \
             fault ports must stay inert without a plan)",
            run.rack_power.fault_events,
            run.facility.fault_events,
            run.rack_power.failed_tasks,
            run.facility.failed_tasks,
        );
        println!(
            "perf-smoke gate: event core {:.1}x over the lockstep oracle \
             (need >= {CHECK_MIN_EVENT_SPEEDUP}x), digest {:016x} byte-identical",
            run.event_core.speedup, run.event_core.digest,
        );
        println!(
            "perf-smoke gate: hetero rack dup+cancel p99 {:.2} ms vs retry p99 \
             {:.2} ms (need dup < retry), {} losers cancelled",
            run.hetero.dup_p99_ms, run.hetero.retry_p99_ms, run.hetero.cancelled_copies,
        );
        let solver_ok = case32.speedup >= CHECK_MIN_SPEEDUP && case32.max_dev_k < CHECK_MAX_DEV_K;
        let threaded_ok = !threaded_gated || run.threaded.speedup >= CHECK_MIN_THREADED_SPEEDUP;
        let scheduler_ok = run.rack_power.tasks_per_s >= CHECK_MIN_TASKS_PER_S
            && run.facility.tasks_per_s >= CHECK_MIN_TASKS_PER_S
            && run.rack_power.supply_aborts == 0
            && run.facility.supply_aborts == 0;
        let faults_ok = run.rack_power.fault_events == 0
            && run.rack_power.failed_tasks == 0
            && run.facility.fault_events == 0
            && run.facility.failed_tasks == 0;
        let event_ok = run.event_core.speedup >= CHECK_MIN_EVENT_SPEEDUP;
        let hetero_ok = run.hetero.dup_p99_ms < run.hetero.retry_p99_ms;
        if !solver_ok || !threaded_ok || !scheduler_ok || !faults_ok || !event_ok || !hetero_ok {
            eprintln!("perf-smoke gate FAILED");
            std::process::exit(1);
        }
        println!("perf-smoke gate passed");
    }
}
