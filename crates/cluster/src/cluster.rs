//! The lockstep cluster stepper: many node sessions, one rack, one
//! admission scheduler.
//!
//! [`ClusterSession`] drives one [`SprintSession`] per server node
//! against a shared [`RackThermal`] grid, in lockstep sampling windows.
//! Each window the scheduler:
//!
//! 1. moves newly-arrived tasks into the ready queue;
//! 2. assigns ready tasks to idle nodes, asking the [`ClusterPolicy`]
//!    whether each task may *sprint* (the node's session is re-armed
//!    under the sprint or the sustained configuration accordingly, via
//!    `SprintSession::set_config` + `begin_burst`);
//! 3. runs the shed passes: if the rack-global *thermal* headroom has
//!    shrunk below the policy's allowance for the current sprinting
//!    population, nodes are preempted (`SprintSession::preempt_sprint`)
//!    in the policy's shed *order* — hottest-first, rotation order, … —
//!    the cluster generalization of `HotspotPolicy::ShedCores`'s count
//!    ramp; then, under power rationing, the *power emergency* pass
//!    preempts the biggest drawers while the bus is overdrawn with a
//!    depleted reserve;
//! 4. steps every busy node by one window and rests every idle node
//!    (idle nodes cool, recharge their supply through the session's
//!    rest path, and keep the lockstep clock), in node-index order, so
//!    the whole simulation is deterministic.
//!
//! Admission is *jointly* thermal- and power-aware: with a shared
//! [`RackSupply`] pool and a rationing [`PowerPolicy`], a sprint must
//! clear the thermal gate **and** fit the rack feed, and a task denied
//! on either axis defers under the same sprint-or-defer machinery.
//!
//! A one-node cluster under [`ClusterPolicy::AllSprint`] performs
//! exactly the calls a standalone session makes, in the same order, so
//! it reproduces the standalone run byte-for-byte — the equivalence
//! test in `tests/cluster_api.rs` pins this.

use std::collections::VecDeque;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_core::config::{ExecutionMode, SprintConfig, SupplyPolicy};
use sprint_core::controller::{ControllerEvent, SprintState};
use sprint_core::fault::{
    FaultKind, FaultPlan, FaultResponse, FaultSensor, FaultState, FaultSupply, SensorFault,
    SupplyFault,
};
use sprint_core::session::{RunReport, SprintSession, StepOutcome};
use sprint_core::supply::{IdealSupply, PowerSupply};
use sprint_core::thermal_model::ThermalModel;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::suite_loader;

use crate::policy::{ClusterPolicy, PowerPolicy};
use crate::queue::{ClusterTask, TaskOutcome};
use crate::rack::{NodeThermalView, RackThermal};
use crate::supply::{RackSupply, RackSupplyParams};

/// What one [`ClusterSession::step`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOutcome {
    /// A window ran; tasks remain in flight or in the queue.
    Running,
    /// Every task has completed; further steps are no-ops.
    Drained,
    /// The cluster time limit elapsed with tasks outstanding.
    TimeLimit,
}

impl ClusterOutcome {
    /// True once stepping can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ClusterOutcome::Running)
    }
}

/// Scheduler decisions, recorded for traces and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// A task started on a node with sprint admission.
    SprintAdmitted {
        /// Node index.
        node: usize,
        /// Task index.
        task: usize,
        /// Decision time, seconds.
        at_s: f64,
    },
    /// A task started on a node in sustained mode (admission denied).
    SprintDenied {
        /// Node index.
        node: usize,
        /// Task index.
        task: usize,
        /// Decision time, seconds.
        at_s: f64,
    },
    /// The shed pass preempted a sprinting node.
    NodeShed {
        /// Node index.
        node: usize,
        /// Decision time, seconds.
        at_s: f64,
        /// Rack-global headroom at the decision, Kelvin.
        rack_headroom_k: f64,
    },
    /// The power-emergency shed pass preempted a sprinting node: the
    /// bus was overdrawn with the reserve below the policy's floor.
    PowerShed {
        /// Node index.
        node: usize,
        /// Decision time, seconds.
        at_s: f64,
        /// Reserve fill fraction at the decision.
        reserve_fraction: f64,
    },
}

/// Per-node supply factory for independently supplied clusters.
type SupplyFactory = Box<dyn Fn(usize) -> Box<dyn PowerSupply>>;

/// Per-node provisioning for a heterogeneous fleet: the node's machine
/// configuration plus its commissioning-time weights in the rack's two
/// shared pools.
///
/// The weights keep Porto et al.'s nameplate-vs-telemetry split intact
/// under heterogeneity: they are *commissioning-time* figures fixed
/// when the rack is racked, not live telemetry —
///
/// * `share_weight` scales the node's nameplate share of the rack feed
///   (a weight-2 node is promised twice the even `cap / nodes` cut,
///   and the total always re-normalizes to the cap);
/// * `thermal_weight` scales the node's floorplan rectangle *area*
///   about its center, which is exactly what sizes its nameplate
///   thermal sprint budget (`RackThermal` derives each node's budget
///   from its own rect).
///
/// A fleet of [`NodeSpec::standard`] specs — every weight 1.0, one
/// shared machine config — is **byte-for-byte identical** to the
/// legacy clone-one-config path; the property tests pin this on the
/// cluster and facility digests.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's machine configuration (core count, clocks, caches,
    /// energy model) — big and little servers differ here.
    pub machine: MachineConfig,
    /// Relative nameplate share of the rack feed (1.0 = the even
    /// `cap / nodes` cut). Must be finite and positive.
    pub share_weight: f64,
    /// Relative thermal-footprint area scale of the node's floorplan
    /// rectangle (1.0 = the rack preset's rect). Must be finite and
    /// positive.
    pub thermal_weight: f64,
}

impl NodeSpec {
    /// A standard node: the given machine at even weights — the spec
    /// that reproduces the clone path exactly.
    pub fn standard(machine: MachineConfig) -> Self {
        Self {
            machine,
            share_weight: 1.0,
            thermal_weight: 1.0,
        }
    }

    /// Sets the nameplate share weight.
    pub fn with_share_weight(mut self, weight: f64) -> Self {
        self.share_weight = weight;
        self
    }

    /// Sets the thermal-footprint weight.
    pub fn with_thermal_weight(mut self, weight: f64) -> Self {
        self.thermal_weight = weight;
        self
    }
}

/// How ready tasks are placed onto idle nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// The policy's own ordering: coolest-node-first for headroom-aware
    /// policies, node-index order otherwise — the pre-refactor
    /// behaviour, byte-for-byte.
    PolicyDefault,
    /// Cost-aware placement for heterogeneous fleets: idle nodes are
    /// ranked by (task affinity, joint headroom cost, index). A node
    /// too narrow for the task's `min_cores` class sorts behind every
    /// wide-enough node; among equals the task books where the joint
    /// thermal + electrical headroom is cheapest — thermal cost is the
    /// node's fraction of its own temperature range consumed,
    /// electrical cost its live draw over its nameplate share. Fully
    /// deterministic: ties break toward the lower node index.
    CheapestHeadroom,
}

/// One server node's scheduling state.
pub(crate) struct Node {
    pub(crate) session: SprintSession<FaultSensor<NodeThermalView>, Box<dyn PowerSupply>>,
    /// Task currently running, if any.
    pub(crate) task: Option<usize>,
    /// When the current task started, seconds.
    pub(crate) assigned_s: f64,
    /// Whether the current task was admitted to sprint (sticky for the
    /// task's outcome even if the shed pass later preempts the node).
    pub(crate) sprinted: bool,
}

/// Summary of a cluster run. Callable mid-run; an unfinished run simply
/// reports the completions so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Completion time of the last finished task, seconds (0 if none).
    pub makespan_s: f64,
    /// Tasks completed.
    pub completed: usize,
    /// Tasks submitted.
    pub total_tasks: usize,
    /// Mean task latency (arrival to completion), seconds (NaN if no
    /// task completed).
    pub mean_latency_s: f64,
    /// 95th-percentile task latency (nearest rank), seconds (NaN if no
    /// task completed) — the tail open-arrival studies ration for.
    pub p95_latency_s: f64,
    /// 99th-percentile task latency (nearest rank, NaN if no task
    /// completed) — the facility studies' headline tail: under bursty
    /// open arrivals the p99 is where a starved rack shows first.
    pub p99_latency_s: f64,
    /// Worst task latency, seconds (NaN if no task completed, like
    /// every other latency statistic — an empty run has no latencies,
    /// not zero-latency tasks).
    pub max_latency_s: f64,
    /// Hottest rack cell observed over the run, Celsius.
    pub peak_junction_c: f64,
    /// Tasks at least one of whose copies started with sprint
    /// admission (each task counts once, however many copies ran; the
    /// per-copy decisions are in the event log).
    pub admitted_sprints: usize,
    /// Tasks started none of whose copies was admitted (sustained).
    pub denied_sprints: usize,
    /// Thermal shed-pass preemptions.
    pub sheds: usize,
    /// Power-emergency shed-pass preemptions.
    pub power_sheds: usize,
    /// Sprints ended by the electrical supply (`SupplyLimited`
    /// controller events across all nodes) — brownout casualties the
    /// power-aware scheduler exists to prevent.
    pub supply_aborts: usize,
    /// Fault-plan events applied so far, all kinds (zero on a
    /// fault-free run — the perf gate pins that).
    pub fault_events: usize,
    /// Sensor fault onsets applied (stuck-at, bias, dropout).
    pub sensor_faults: usize,
    /// Supply fault onsets applied (collapse, brownout, death).
    pub supply_faults: usize,
    /// Node crashes applied (a crash of an already-down node is a
    /// no-op and does not count).
    pub node_crashes: usize,
    /// Sprints preempted by the sensor-fault failsafe: under
    /// [`FaultResponse::Aware`] a node whose telemetry goes bad
    /// mid-sprint is treated as already at the limit and throttled.
    pub failsafe_preemptions: usize,
    /// Tasks re-enqueued after a crash took their last running copy.
    pub requeues: usize,
    /// Losing competitive-duplicate replicas preempted through the
    /// machine-level cancel API the window their task's winner
    /// committed (zero under `cancel_losers: false`, where losers run
    /// to completion and are discarded).
    pub cancelled_copies: usize,
    /// Crash-retry tasks handed off to a facility tier for cross-rack
    /// re-placement ([`ClusterSession::drain_stranded_requeues`]) —
    /// resolved elsewhere, no longer this rack's to account. Zero
    /// unless a facility routes requeues.
    pub migrated_tasks: usize,
    /// Tasks that exhausted their crash-retry budget.
    pub failed_tasks: usize,
    /// Nodes quarantined after crashing mid-task (their stranded
    /// threads make the node untrustworthy for the rest of the run).
    pub quarantined_nodes: usize,
    /// Tasks neither completed nor failed: queued, in flight, waiting
    /// out a retry backoff, or not yet arrived. Nonzero only mid-run
    /// or at the time limit.
    pub outstanding_tasks: usize,
    /// Per-task outcomes, in completion order.
    pub outcomes: Vec<TaskOutcome>,
    /// Per-node coupled reports.
    pub node_reports: Vec<RunReport>,
}

impl ClusterReport {
    /// FNV-1a fingerprint of the report: every scalar field, every task
    /// outcome, and every node report's scalars, all at exact `f64`
    /// bits. Two reports agree on this digest exactly when they are
    /// byte-identical in every figure a study could quote — the
    /// facility determinism tests pin it across worker-thread counts,
    /// and the event-driven core's golden-equivalence tests pin it
    /// against the lockstep oracle.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            hash ^= bits;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        };
        for bits in [
            self.makespan_s.to_bits(),
            self.completed as u64,
            self.total_tasks as u64,
            self.mean_latency_s.to_bits(),
            self.p95_latency_s.to_bits(),
            self.p99_latency_s.to_bits(),
            self.max_latency_s.to_bits(),
            self.peak_junction_c.to_bits(),
            self.admitted_sprints as u64,
            self.denied_sprints as u64,
            self.sheds as u64,
            self.power_sheds as u64,
            self.supply_aborts as u64,
            self.fault_events as u64,
            self.sensor_faults as u64,
            self.supply_faults as u64,
            self.node_crashes as u64,
            self.failsafe_preemptions as u64,
            self.requeues as u64,
            self.cancelled_copies as u64,
            self.migrated_tasks as u64,
            self.failed_tasks as u64,
            self.quarantined_nodes as u64,
            self.outstanding_tasks as u64,
        ] {
            eat(bits);
        }
        for o in &self.outcomes {
            for bits in [
                o.task as u64,
                o.node as u64,
                o.arrival_s.to_bits(),
                o.assigned_s.to_bits(),
                o.completed_s.to_bits(),
                o.sprinted as u64,
                o.copies as u64,
            ] {
                eat(bits);
            }
        }
        for node in &self.node_reports {
            for bits in [
                node.completion_s.to_bits(),
                node.energy_j.to_bits(),
                node.instructions,
                node.max_junction_c.to_bits(),
                node.sprint_end_s.map_or(u64::MAX, f64::to_bits),
                node.finished as u64,
                node.events.len() as u64,
            ] {
                eat(bits);
            }
        }
        hash
    }

    /// The task-conservation invariant: every submitted task is
    /// accounted for — completed, failed after exhausting its crash
    /// retries, migrated to another rack by a facility requeue router,
    /// or still outstanding — never lost. Holds at every window of
    /// every run, faulted or not; once a run drains,
    /// `outstanding_tasks` is zero and arrivals = finished + failed +
    /// migrated exactly.
    pub fn task_conservation_holds(&self) -> bool {
        self.completed + self.failed_tasks + self.migrated_tasks + self.outstanding_tasks
            == self.total_tasks
    }
}

/// Nearest-rank percentile of completed-task latencies (NaN when no
/// task has completed; `q` in `(0, 1]`). Sorted with `f64::total_cmp`:
/// `partial_cmp(..).unwrap_or(Equal)` would leave a NaN latency
/// wherever the sort happened to strand it, silently corrupting the
/// order around it and poisoning an arbitrary rank instead of the top
/// one. Completed outcomes are debug-asserted finite at completion, so
/// a NaN here is already a bug — total order keeps it deterministic
/// (NaN sorts above every number) instead of compounding it.
fn latency_percentile_s(outcomes: &[TaskOutcome], q: f64) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.latency_s()).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
    lat[rank - 1]
}

/// A [`ClusterBuilder`] provisioning error: the requested cluster is
/// contradictory or unsatisfiable (a sprint draw no feed can carry, an
/// admission threshold no cold node can meet, a fault plan naming
/// nodes the rack does not have, …). [`ClusterBuilder::try_build`]
/// returns these as values; [`ClusterBuilder::build`] panics with the
/// same `Display` message, so existing panic-message expectations keep
/// holding either way.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterBuildError {
    /// `max_time_s` was zero, negative or NaN.
    NonPositiveTimeLimit,
    /// Both a shared rack supply and per-node supplies were requested.
    ConflictingSupplies,
    /// A shared rack supply under `SupplyPolicy::Ignore` would never
    /// see a watt of telemetry.
    InertRackSupply,
    /// Power rationing was requested without a shared rack supply.
    RationingWithoutPool,
    /// The provisioned sprint draw exceeds the rack feed cap.
    UnsatisfiableSprintDraw {
        /// Provisioned per-sprint draw, watts.
        sprint_draw_w: f64,
        /// Rack feed cap, watts.
        cap_w: f64,
    },
    /// The admission headroom threshold exceeds a cold node's headroom.
    UnsatisfiableAdmission {
        /// Required admission headroom, Kelvin.
        admit_headroom_k: f64,
        /// A cold node's headroom (`t_max - ambient`), Kelvin.
        max_headroom_k: f64,
    },
    /// A task arrival was negative, NaN or infinite.
    BadTaskArrival,
    /// A task demanded zero threads.
    ZeroThreadTask,
    /// The fault plan names a node the rack does not have.
    FaultNodeOutOfRange {
        /// Offending node index.
        node: u32,
        /// Nodes in the rack.
        nodes: usize,
    },
    /// The fault plan's retry backoff is zero windows.
    ZeroFaultBackoff,
    /// The fault plan's events are not sorted by `(window, node)`.
    UnsortedFaultPlan,
    /// The per-node spec list does not match the rack's node count.
    NodeSpecCountMismatch {
        /// Specs supplied.
        specs: usize,
        /// Nodes in the rack.
        nodes: usize,
    },
    /// A node spec's share or thermal weight is non-finite or
    /// non-positive.
    BadNodeSpecWeight,
}

impl std::fmt::Display for ClusterBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonPositiveTimeLimit => f.write_str("cluster time limit must be positive"),
            Self::ConflictingSupplies => {
                f.write_str("rack_supply and node_supply are mutually exclusive")
            }
            Self::InertRackSupply => f.write_str(
                "a shared rack supply requires SupplyPolicy::EndSprint: \
                 under SupplyPolicy::Ignore sessions never report draws, \
                 so the pool's telemetry, reserve and brownout model are \
                 all inert",
            ),
            Self::RationingWithoutPool => {
                f.write_str("power rationing needs a shared rack supply to read telemetry from")
            }
            Self::UnsatisfiableSprintDraw {
                sprint_draw_w,
                cap_w,
            } => write!(
                f,
                "provisioned sprint draw {sprint_draw_w} W is unsatisfiable: \
                 the rack feed caps at {cap_w} W"
            ),
            Self::UnsatisfiableAdmission {
                admit_headroom_k,
                max_headroom_k,
            } => write!(
                f,
                "admission threshold {admit_headroom_k} K is unsatisfiable: a cold node's \
                 headroom tops out at t_max - ambient = {max_headroom_k} K"
            ),
            Self::BadTaskArrival => f.write_str("task arrivals must be finite and non-negative"),
            Self::ZeroThreadTask => f.write_str("a task needs at least one thread"),
            Self::FaultNodeOutOfRange { node, nodes } => write!(
                f,
                "fault plan targets node {node} but the cluster has {nodes}"
            ),
            Self::ZeroFaultBackoff => f.write_str("retry backoff must be at least one window"),
            Self::UnsortedFaultPlan => f.write_str("fault plan must be sorted by (window, node)"),
            Self::NodeSpecCountMismatch { specs, nodes } => write!(
                f,
                "node spec list has {specs} entries but the rack has {nodes} nodes"
            ),
            Self::BadNodeSpecWeight => f.write_str("node spec weights must be finite and positive"),
        }
    }
}

impl std::error::Error for ClusterBuildError {}

/// Composes a rack, per-node machines, a policy and a task queue into a
/// [`ClusterSession`].
pub struct ClusterBuilder {
    rack_params: GridThermalParams,
    machine_config: MachineConfig,
    node_specs: Option<Vec<NodeSpec>>,
    placement: Placement,
    config: SprintConfig,
    policy: ClusterPolicy,
    power: PowerPolicy,
    supply_params: Option<RackSupplyParams>,
    node_supplies: Option<SupplyFactory>,
    fault_plan: Option<FaultPlan>,
    tasks: Vec<ClusterTask>,
    trace_capacity: usize,
    max_time_s: f64,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("nodes", &self.rack_params.floorplan.core_count())
            .field("policy", &self.policy)
            .field("power", &self.power)
            .field("tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Starts from a rack parameter set (typically
    /// `GridThermalParams::rack(cols, rows)`, time-scaled to taste);
    /// one node per floorplan core. Defaults: the paper's 16-core
    /// machine per node, `SprintConfig::hpca_parallel` for admitted
    /// sprints, greedy-headroom admission, no tasks.
    pub fn new(rack_params: GridThermalParams) -> Self {
        Self {
            rack_params,
            machine_config: MachineConfig::hpca(),
            node_specs: None,
            placement: Placement::PolicyDefault,
            config: SprintConfig::hpca_parallel(),
            policy: ClusterPolicy::greedy_default(),
            power: PowerPolicy::Oblivious,
            supply_params: None,
            node_supplies: None,
            fault_plan: None,
            tasks: Vec::new(),
            trace_capacity: 2048,
            max_time_s: 10.0,
        }
    }

    /// Sets the per-node machine configuration (every node identical —
    /// the homogeneous-fleet shorthand; [`Self::node_specs`] overrides
    /// it per node).
    pub fn machine(mut self, config: MachineConfig) -> Self {
        self.machine_config = config;
        self
    }

    /// Provisions the fleet heterogeneously: one [`NodeSpec`] per rack
    /// node, in node-index order — each node gets its own machine
    /// config, nameplate share weight and thermal-footprint weight.
    /// Overrides [`Self::machine`]. A list of [`NodeSpec::standard`]
    /// specs reproduces the homogeneous path byte-for-byte.
    pub fn node_specs(mut self, specs: impl IntoIterator<Item = NodeSpec>) -> Self {
        self.node_specs = Some(specs.into_iter().collect());
        self
    }

    /// Sets the placement strategy (default
    /// [`Placement::PolicyDefault`], the pre-refactor ordering).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the sprint configuration admitted tasks run under (denied
    /// tasks run the same configuration with `ExecutionMode::Sustained`).
    pub fn config(mut self, config: SprintConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the admission policy.
    pub fn policy(mut self, policy: ClusterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the power-admission policy (default
    /// [`PowerPolicy::Oblivious`]). Rationing requires a shared rack
    /// supply ([`Self::rack_supply`]) to read telemetry from.
    pub fn power_policy(mut self, power: PowerPolicy) -> Self {
        self.power = power;
        self
    }

    /// Puts every node on a shared rack power-delivery pool: each node
    /// receives a [`Regulator`](sprint_core::supply::Regulator) over
    /// its [`NodeSupplyView`](crate::supply::NodeSupplyView), carrying
    /// `params`' loss curve. Mutually exclusive with
    /// [`Self::node_supply`].
    pub fn rack_supply(mut self, params: RackSupplyParams) -> Self {
        self.supply_params = Some(params);
        self
    }

    /// Gives each node an *independent* supply from `factory` (e.g. a
    /// per-server `HybridSupply`) instead of the shared pool. Mutually
    /// exclusive with [`Self::rack_supply`]; idle nodes recharge these
    /// supplies through the lockstep rest path exactly as a standalone
    /// session's `rest` does.
    pub fn node_supply(
        mut self,
        factory: impl Fn(usize) -> Box<dyn PowerSupply> + 'static,
    ) -> Self {
        self.node_supplies = Some(Box::new(factory));
        self
    }

    /// Installs a window-stamped fault plan (see [`FaultPlan`]):
    /// sensor faults, supply faults and node crashes fire at their
    /// stamped windows and the scheduler degrades instead of
    /// corrupting. Every node's thermal and supply ports are wrapped
    /// in the fault ports whether or not a plan is installed — the
    /// healthy wrappers are bit-identical passthroughs, so a cluster
    /// without a plan reproduces its pre-fault digests exactly.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Appends tasks to the arrival queue.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = ClusterTask>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Limits each node's retained trace (0 disables tracing).
    pub fn trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Hard wall on cluster simulated time, seconds.
    pub fn max_time_s(mut self, limit_s: f64) -> Self {
        self.max_time_s = limit_s;
        self
    }

    /// Builds the cluster: the shared rack grid, one sustained-armed
    /// session per node, and the arrival order.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration/policy (their own
    /// `validate`), and on any provisioning edge [`Self::try_build`]
    /// rejects — with that [`ClusterBuildError`]'s `Display` message.
    pub fn build(self) -> ClusterSession {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::build`], returning unsatisfiable provisioning edges as
    /// typed [`ClusterBuildError`] values instead of panicking.
    /// Config, policy and supply-parameter invariants still panic via
    /// their own `validate` — those are malformed *inputs*, not
    /// unsatisfiable *combinations*.
    pub fn try_build(self) -> Result<ClusterSession, ClusterBuildError> {
        self.config.validate();
        self.policy.validate();
        self.power.validate();
        if self.max_time_s <= 0.0 || self.max_time_s.is_nan() {
            return Err(ClusterBuildError::NonPositiveTimeLimit);
        }
        if self.supply_params.is_some() && self.node_supplies.is_some() {
            return Err(ClusterBuildError::ConflictingSupplies);
        }
        // `SupplyPolicy::Ignore` makes sessions skip `supply.draw`
        // entirely, so a shared pool would never see a watt of
        // telemetry: no reserve drain, no brownouts, no power
        // admission signal. A study that configures a rack feed but
        // silently disconnects it reports vacuous zero-abort results —
        // reject the contradiction up front.
        if self.supply_params.is_some() && self.config.supply_policy != SupplyPolicy::EndSprint {
            return Err(ClusterBuildError::InertRackSupply);
        }
        if let PowerPolicy::Rationed { sprint_draw_w, .. } = self.power {
            let Some(params) = self.supply_params.as_ref() else {
                return Err(ClusterBuildError::RationingWithoutPool);
            };
            // A provisioned sprint draw the empty feed cannot carry
            // would livelock a deferring queue, exactly like an
            // unsatisfiable thermal admission threshold.
            if sprint_draw_w > params.cap_w {
                return Err(ClusterBuildError::UnsatisfiableSprintDraw {
                    sprint_draw_w,
                    cap_w: params.cap_w,
                });
            }
        }
        // An admission threshold no cold node can meet would livelock
        // a deferring queue (head-of-line tasks wait forever for
        // headroom the rack cannot physically offer).
        if let Some(admit) = self.policy.admit_headroom_k() {
            let max_headroom = self.rack_params.t_max_c - self.rack_params.ambient_c;
            if admit >= max_headroom {
                return Err(ClusterBuildError::UnsatisfiableAdmission {
                    admit_headroom_k: admit,
                    max_headroom_k: max_headroom,
                });
            }
        }
        for t in &self.tasks {
            if !(t.arrival_s.is_finite() && t.arrival_s >= 0.0) {
                return Err(ClusterBuildError::BadTaskArrival);
            }
            if t.threads < 1 {
                return Err(ClusterBuildError::ZeroThreadTask);
            }
        }
        if let Some(plan) = &self.fault_plan {
            let nodes_n = self.rack_params.floorplan.core_count();
            if plan.backoff_windows == 0 {
                return Err(ClusterBuildError::ZeroFaultBackoff);
            }
            if !plan
                .events
                .windows(2)
                .all(|p| (p[0].window, p[0].node) <= (p[1].window, p[1].node))
            {
                return Err(ClusterBuildError::UnsortedFaultPlan);
            }
            if let Some(ev) = plan.events.iter().find(|e| e.node as usize >= nodes_n) {
                return Err(ClusterBuildError::FaultNodeOutOfRange {
                    node: ev.node,
                    nodes: nodes_n,
                });
            }
        }
        if let Some(specs) = &self.node_specs {
            let nodes_n = self.rack_params.floorplan.core_count();
            if specs.len() != nodes_n {
                return Err(ClusterBuildError::NodeSpecCountMismatch {
                    specs: specs.len(),
                    nodes: nodes_n,
                });
            }
            if !specs.iter().all(|s| {
                s.share_weight.is_finite()
                    && s.share_weight > 0.0
                    && s.thermal_weight.is_finite()
                    && s.thermal_weight > 0.0
            }) {
                return Err(ClusterBuildError::BadNodeSpecWeight);
            }
        }
        // Heterogeneous thermal footprints: scale each node's rack-plane
        // rectangle by its spec's weight before the grid is built —
        // `RackThermal` derives every node's nameplate sprint budget
        // from its own rect, so the budget follows the footprint. A
        // weight of exactly 1.0 is a guaranteed no-op (`scale_core`
        // early-outs), keeping homogeneous specs byte-identical.
        let mut rack_params = self.rack_params;
        if let Some(specs) = &self.node_specs {
            for (n, s) in specs.iter().enumerate() {
                rack_params.floorplan.scale_core(n, s.thermal_weight);
            }
        }
        // One env var (`SPRINT_SOLVER_THREADS`) sweeps every cluster's
        // ADI lane count; threaded sweeps are byte-identical to serial,
        // so this is a pure wall-clock knob (and the CI determinism
        // matrix relies on exactly that).
        let rack = RackThermal::new(rack_params.with_env_solver_threads().build());
        let nodes_n = rack.nodes();
        // Weighted nameplate cuts for a heterogeneous fleet; the unit-
        // weight cut is bitwise `cap / nodes`, so a homogeneous spec
        // list commissions the identical pool.
        let supply_pool = self.supply_params.as_ref().map(|p| match &self.node_specs {
            Some(specs) => {
                let weights: Vec<f64> = specs.iter().map(|s| s.share_weight).collect();
                RackSupply::new_weighted(*p, &weights)
            }
            None => RackSupply::new(*p, nodes_n),
        });
        let mut sustained = self.config.clone();
        sustained.mode = ExecutionMode::Sustained;
        let window_s = self.config.sample_window_ps as f64 * 1e-12;
        let fault_states: Vec<Rc<FaultState>> = (0..nodes_n)
            .map(|_| Rc::new(FaultState::default()))
            .collect();
        let nodes = (0..nodes_n)
            .map(|n| {
                // Both ports wear the fault wrappers unconditionally:
                // a healthy wrapper is a bit-identical passthrough, so
                // plan-free clusters keep their pre-fault digests.
                let supply: Box<dyn PowerSupply> =
                    match (&self.supply_params, &supply_pool, &self.node_supplies) {
                        (Some(params), Some(pool), _) => Box::new(FaultSupply::new(
                            params.node_supply(pool, n),
                            Rc::clone(&fault_states[n]),
                        )),
                        (_, _, Some(factory)) => {
                            Box::new(FaultSupply::new(factory(n), Rc::clone(&fault_states[n])))
                        }
                        _ => Box::new(FaultSupply::new(IdealSupply, Rc::clone(&fault_states[n]))),
                    };
                let machine_config = match &self.node_specs {
                    Some(specs) => specs[n].machine.clone(),
                    None => self.machine_config.clone(),
                };
                Node {
                    session: SprintSession::new(
                        Machine::new(machine_config),
                        FaultSensor::new(rack.node_view(n), Rc::clone(&fault_states[n])),
                        supply,
                        sustained.clone(),
                        self.trace_capacity,
                        Vec::new(),
                    ),
                    task: None,
                    assigned_s: 0.0,
                    sprinted: false,
                }
            })
            .collect();
        let mut arrival_order: Vec<usize> = (0..self.tasks.len()).collect();
        arrival_order.sort_by(|&a, &b| {
            self.tasks[a]
                .arrival_s
                .partial_cmp(&self.tasks[b].arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let task_count = self.tasks.len();
        Ok(ClusterSession {
            rack,
            supply: supply_pool,
            power: self.power,
            nodes,
            tasks: self.tasks,
            arrival_order,
            next_arrival: 0,
            ready: VecDeque::new(),
            policy: self.policy,
            placement: self.placement,
            sprint_config: self.config,
            sustained_config: sustained,
            window_s,
            windows: 0,
            max_windows: (self.max_time_s / window_s).ceil() as u64,
            outcomes: Vec::new(),
            task_done: vec![false; task_count],
            task_copies: vec![0; task_count],
            task_sprinted: vec![false; task_count],
            task_failed: vec![false; task_count],
            task_migrated: vec![false; task_count],
            task_retries: vec![0; task_count],
            events: Vec::new(),
            grant_order: Vec::new(),
            peak_junction_c: f64::NEG_INFINITY,
            temps_buf: vec![0.0; nodes_n],
            fault_plan: self.fault_plan,
            next_fault: 0,
            fault_states,
            node_down: vec![false; nodes_n],
            node_quarantined: vec![false; nodes_n],
            requeue: Vec::new(),
            next_requeue: 0,
            requeue_seq: 0,
            crashed_scratch: Vec::new(),
            cancelled_scratch: Vec::new(),
            cancelled_after_run: Vec::new(),
            duplicates_cancelled: 0,
            fault_events_applied: 0,
            sensor_fault_count: 0,
            supply_fault_count: 0,
            node_crash_count: 0,
            failsafe_preemptions: 0,
            requeue_count: 0,
            migrated_count: 0,
        })
    }
}

/// Many sprint sessions, one shared rack, one admission scheduler. See
/// the module docs for the per-window protocol.
pub struct ClusterSession {
    pub(crate) rack: RackThermal,
    /// The shared electrical pool, when the cluster runs on one.
    pub(crate) supply: Option<RackSupply>,
    pub(crate) power: PowerPolicy,
    pub(crate) nodes: Vec<Node>,
    pub(crate) tasks: Vec<ClusterTask>,
    /// Task indices sorted by (arrival, index).
    pub(crate) arrival_order: Vec<usize>,
    pub(crate) next_arrival: usize,
    pub(crate) ready: VecDeque<usize>,
    pub(crate) policy: ClusterPolicy,
    placement: Placement,
    sprint_config: SprintConfig,
    sustained_config: SprintConfig,
    pub(crate) window_s: f64,
    pub(crate) windows: u64,
    pub(crate) max_windows: u64,
    outcomes: Vec<TaskOutcome>,
    task_done: Vec<bool>,
    task_copies: Vec<usize>,
    /// Whether any copy of the task was admitted to sprint.
    task_sprinted: Vec<bool>,
    /// Tasks that exhausted their crash-retry budget.
    task_failed: Vec<bool>,
    /// Tasks handed off to a facility requeue router — resolved
    /// elsewhere, terminal for this rack.
    task_migrated: Vec<bool>,
    /// Crash-retry attempts consumed per task.
    task_retries: Vec<u32>,
    events: Vec<ClusterEvent>,
    /// Sprinting nodes, oldest admission first (round-robin shed order).
    pub(crate) grant_order: Vec<usize>,
    pub(crate) peak_junction_c: f64,
    /// Per-window node temperatures (reused; no per-step allocation).
    pub(crate) temps_buf: Vec<f64>,
    /// The installed fault plan, if any (window-stamped, sorted).
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Cursor into the plan's event list.
    pub(crate) next_fault: usize,
    /// Per-node fault state, shared with each node's wrapped thermal
    /// and supply ports.
    fault_states: Vec<Rc<FaultState>>,
    /// Nodes currently crashed (cleared by `NodeRecover` unless
    /// quarantined).
    node_down: Vec<bool>,
    /// Nodes permanently retired after crashing mid-task.
    node_quarantined: Vec<bool>,
    /// Crash-retry queue: `(due window, insertion seq, task)`, sorted;
    /// `next_requeue` is the drain cursor (mirroring `next_arrival`).
    pub(crate) requeue: Vec<(u64, u64, usize)>,
    pub(crate) next_requeue: usize,
    requeue_seq: u64,
    /// Nodes that crashed *while busy* this window — the event core
    /// must execute their first rest at the crash window itself (it
    /// zeroes their core power before the next settlement).
    pub(crate) crashed_scratch: Vec<u32>,
    /// Losing duplicate copies cancelled this window on nodes *after*
    /// the winner in index order: their rest still executes this
    /// window (the lockstep loop reaches them with `task == None`),
    /// and the event core must do the same.
    pub(crate) cancelled_scratch: Vec<u32>,
    /// Losing duplicate copies cancelled this window on nodes *before*
    /// the winner: they already ran their window while still busy, so
    /// their first rest lands next window — the event core schedules
    /// them a retirement tick and drops them from its busy list.
    pub(crate) cancelled_after_run: Vec<u32>,
    /// Losing replicas preempted through the machine-level cancel API
    /// the window their task's winner committed.
    duplicates_cancelled: usize,
    fault_events_applied: usize,
    sensor_fault_count: usize,
    supply_fault_count: usize,
    node_crash_count: usize,
    failsafe_preemptions: usize,
    requeue_count: usize,
    migrated_count: usize,
}

impl std::fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSession")
            .field("nodes", &self.nodes.len())
            .field("policy", &self.policy)
            .field("windows", &self.windows)
            .field("completed", &self.outcomes.len())
            .field("total_tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl ClusterSession {
    /// Cluster simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.windows as f64 * self.window_s
    }

    /// Sampling windows stepped so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The shared rack.
    pub fn rack(&self) -> &RackThermal {
        &self.rack
    }

    /// The shared electrical pool, when the cluster runs on one.
    pub fn supply(&self) -> Option<&RackSupply> {
        self.supply.as_ref()
    }

    /// The power-admission policy.
    pub fn power_policy(&self) -> PowerPolicy {
        self.power
    }

    /// Scheduler events so far.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Task outcomes so far, in completion order.
    pub fn outcomes(&self) -> &[TaskOutcome] {
        &self.outcomes
    }

    /// One node's coupled report so far.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_report(&self, node: usize) -> RunReport {
        self.nodes[node].session.report()
    }

    /// One node's controller state.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn node_state(&self, node: usize) -> SprintState {
        self.nodes[node].session.state()
    }

    /// True once every submitted task has been resolved: completed,
    /// failed after exhausting its crash-retry budget, or migrated to
    /// another rack by a facility requeue router. Losing
    /// competitive-duplicate copies do not count as outstanding work —
    /// their result is discarded by definition, so the queue is
    /// drained the moment every task has a winner (a loser may still
    /// be mid-run on its node when stepping stops).
    pub fn drained(&self) -> bool {
        self.task_done
            .iter()
            .zip(&self.task_failed)
            .zip(&self.task_migrated)
            .all(|((&done, &failed), &migrated)| done || failed || migrated)
    }

    /// Tasks that have arrived but not yet been assigned to a node —
    /// the ready-queue depth a facility-level admission tier rations
    /// headroom by (`sprint-facility`).
    pub fn ready_backlog(&self) -> usize {
        self.ready.len()
    }

    /// Nodes currently holding a sprint grant.
    pub fn sprinting_count(&self) -> usize {
        self.grant_order.len()
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Total heat the rack currently injects into its thermal grid,
    /// watts — the row-coupling input a facility sums to model warm
    /// recirculated air raising downstream rack inlets.
    pub fn rack_heat_w(&self) -> f64 {
        self.rack.with_grid(|g| g.chip_power_w())
    }

    /// Advances the whole cluster by one sampling window.
    pub fn step(&mut self) -> ClusterOutcome {
        if self.drained() {
            return ClusterOutcome::Drained;
        }
        if self.windows >= self.max_windows {
            return ClusterOutcome::TimeLimit;
        }
        // The cancellation scratches are per-window: populated by
        // `complete` during the node phase, consumed by the event core
        // through the end of its step — so both engines clear them at
        // the top of the *next* window (the event core cannot rely on
        // `apply_faults`, which it only runs on fault ticks).
        self.cancelled_scratch.clear();
        self.cancelled_after_run.clear();
        // 0. Faults stamped for this window fire before anything reads
        // a sensor or places work.
        self.apply_faults();
        let now = self.now_s();
        // Refresh the per-node temperature snapshot once per window
        // (the slice-based accessor keeps this allocation-free), then
        // overlay what faulted sensors actually report.
        self.rack.node_temps_c_into(&mut self.temps_buf);
        self.mask_faulted_temps();
        // 1. Arrivals, then crash-retry requeues whose backoff expired.
        self.pop_arrivals(now);
        self.pop_requeues();
        // 2. Assignment (and 3., the shed passes: thermal, then the
        // power emergency).
        self.assign_ready(now);
        self.shed_pass(now);
        self.power_shed_pass(now);
        // 4. Step busy nodes, rest idle ones, in index order (node 0 is
        // the lockstep leader that advances the shared grid).
        for i in 0..self.nodes.len() {
            self.run_node_window(i);
        }
        self.windows += 1;
        let junction = self.rack.junction_temp_c();
        if junction > self.peak_junction_c {
            self.peak_junction_c = junction;
        }
        if self.drained() {
            ClusterOutcome::Drained
        } else {
            ClusterOutcome::Running
        }
    }

    /// Moves every task whose arrival time has come (`arrival_s <= now`)
    /// from the arrival order into the ready queue.
    pub(crate) fn pop_arrivals(&mut self, now: f64) {
        while self.next_arrival < self.arrival_order.len() {
            let task = self.arrival_order[self.next_arrival];
            if self.tasks[task].arrival_s > now {
                break;
            }
            self.ready.push_back(task);
            self.next_arrival += 1;
        }
    }

    /// Drains crash-retry requeues whose backoff window has come into
    /// the ready queue (after `pop_arrivals`, so a same-window arrival
    /// always queues ahead of a same-window retry — in both engines).
    pub(crate) fn pop_requeues(&mut self) {
        while let Some(&(due, _seq, task)) = self.requeue.get(self.next_requeue) {
            if due > self.windows {
                break;
            }
            self.next_requeue += 1;
            if !self.task_done[task] && !self.task_failed[task] && !self.task_migrated[task] {
                self.ready.push_back(task);
            }
        }
    }

    /// Removes every crash-retry task still waiting out its backoff and
    /// hands it back (original arrival time and class intact) for a
    /// facility tier to re-place — possibly on another rack, which is
    /// the fix for retry-in-place head-of-line blocking on a degraded
    /// rack. Each drained task is marked migrated: terminal for this
    /// rack's accounting ([`ClusterReport::migrated_tasks`]), resolved
    /// wherever [`Self::inject_task`] lands it. Tasks already resolved
    /// (a duplicate copy won after the requeue was booked) are simply
    /// dropped from the backoff list. Empty — and completely free —
    /// when nothing is waiting, so a facility that never routes
    /// requeues is byte-identical to one that polls this every epoch.
    pub fn drain_stranded_requeues(&mut self) -> Vec<ClusterTask> {
        let mut stranded = Vec::new();
        for idx in self.next_requeue..self.requeue.len() {
            let (_, _, task) = self.requeue[idx];
            if !self.task_done[task] && !self.task_failed[task] && !self.task_migrated[task] {
                self.task_migrated[task] = true;
                self.migrated_count += 1;
                stranded.push(self.tasks[task]);
            }
        }
        self.requeue.truncate(self.next_requeue);
        stranded
    }

    /// Admits a task mid-run as if it had just arrived: it joins the
    /// back of the ready queue this window and counts toward this
    /// rack's submitted total. The facility requeue router uses this to
    /// land a stranded crash-retry on a healthier rack; the task keeps
    /// its original `arrival_s`, so its eventual latency spans the
    /// crash and the migration, not just the new rack's service time.
    /// Returns the task's index on this rack.
    pub fn inject_task(&mut self, task: ClusterTask) -> usize {
        let id = self.tasks.len();
        self.tasks.push(task);
        self.task_done.push(false);
        self.task_copies.push(0);
        self.task_sprinted.push(false);
        self.task_failed.push(false);
        self.task_migrated.push(false);
        self.task_retries.push(0);
        self.ready.push_back(id);
        id
    }

    /// Applies every fault-plan event stamped for the current window,
    /// in `(window, node)` order — shared verbatim between the
    /// lockstep loop and the event-driven core (which runs it on fault
    /// ticks). Fills [`Self::crashed_scratch`] with nodes that crashed
    /// while busy, which the event core must execute this window.
    pub(crate) fn apply_faults(&mut self) {
        self.crashed_scratch.clear();
        let Some(plan) = self.fault_plan.as_ref() else {
            return;
        };
        let (response, max_retries, backoff) =
            (plan.response, plan.max_retries, plan.backoff_windows);
        let w = self.windows;
        while let Some(&ev) = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.events.get(self.next_fault))
        {
            if ev.window != w {
                debug_assert!(ev.window > w, "a fault event was scheduled in the past");
                break;
            }
            self.next_fault += 1;
            self.fault_events_applied += 1;
            let node = ev.node as usize;
            match ev.kind {
                FaultKind::SensorStuck(v) => {
                    self.sensor_fault_on(node, SensorFault::StuckAt(v), response)
                }
                FaultKind::SensorBias(d) => {
                    self.sensor_fault_on(node, SensorFault::Bias(d), response)
                }
                FaultKind::SensorDropout => {
                    self.sensor_fault_on(node, SensorFault::Dropout, response)
                }
                FaultKind::SensorClear => self.fault_states[node].set_sensor(None),
                FaultKind::SupplyCollapse(scale) => {
                    self.supply_fault_count += 1;
                    self.fault_states[node].set_supply(Some(SupplyFault::Collapsed(scale)));
                }
                FaultKind::SupplyBrownout => {
                    self.supply_fault_count += 1;
                    self.fault_states[node].set_supply(Some(SupplyFault::Brownout));
                }
                FaultKind::SupplyDead => {
                    self.supply_fault_count += 1;
                    self.fault_states[node].set_supply(Some(SupplyFault::Dead));
                }
                // Dead-sticky: `FaultState::set_supply` ignores the
                // clear when the regulator died outright.
                FaultKind::SupplyClear => self.fault_states[node].set_supply(None),
                FaultKind::NodeCrash => self.crash_node(node, response, max_retries, backoff),
                FaultKind::NodeRecover => {
                    if !self.node_quarantined[node] {
                        self.node_down[node] = false;
                    }
                }
            }
        }
    }

    /// A sensor fault onset: corrupt the node's reported telemetry
    /// and, under [`FaultResponse::Aware`], fire the conservative
    /// failsafe — a node mid-sprint on telemetry that just went bad is
    /// treated as already at the limit and preempted on the spot
    /// (the throttle analogue of `HotspotPolicy`'s hardware failsafe).
    fn sensor_fault_on(&mut self, node: usize, fault: SensorFault, response: FaultResponse) {
        self.sensor_fault_count += 1;
        self.fault_states[node].set_sensor(Some(fault));
        if response == FaultResponse::Aware {
            let n = &mut self.nodes[node];
            if n.task.is_some()
                && matches!(
                    n.session.state(),
                    SprintState::Ramping | SprintState::Sprinting
                )
            {
                n.session.preempt_sprint();
                self.failsafe_preemptions += 1;
                // The stale grant falls out of the rotation in this
                // window's shed pass (its retain keeps only live
                // sprints) — which runs this window in both engines,
                // because a fault tick forces the scheduler phase.
            }
        }
    }

    /// A node crash. An idle node just goes down (recoverable); a busy
    /// node's stranded threads make it untrustworthy for the rest of
    /// the run (there is no thread-kill API), so it is quarantined
    /// permanently and — under [`FaultResponse::Aware`] — its
    /// nameplate share is returned to the rack pool. The in-flight
    /// task, if no duplicate copy survives elsewhere, re-enters the
    /// queue after an exponential window backoff, up to the plan's
    /// retry budget; past that it is recorded failed.
    fn crash_node(&mut self, node: usize, response: FaultResponse, max_retries: u32, backoff: u64) {
        if self.node_down[node] || self.node_quarantined[node] {
            return;
        }
        self.node_crash_count += 1;
        self.node_down[node] = true;
        let Some(task) = self.nodes[node].task.take() else {
            return;
        };
        self.node_quarantined[node] = true;
        self.crashed_scratch.push(node as u32);
        if response == FaultResponse::Aware {
            if let Some(pool) = &self.supply {
                pool.decommission_node(node);
            }
        }
        if self.task_done[task] || self.task_failed[task] {
            return;
        }
        if self.nodes.iter().any(|n| n.task == Some(task)) {
            return; // a duplicate copy is still racing elsewhere
        }
        if self.task_retries[task] < max_retries {
            self.task_retries[task] += 1;
            let shift = (self.task_retries[task] - 1).min(32);
            let delay = backoff.saturating_mul(1u64 << shift).max(1);
            self.requeue_count += 1;
            let due = self.windows.saturating_add(delay);
            let seq = self.requeue_seq;
            self.requeue_seq += 1;
            let entry = (due, seq, task);
            let tail = &self.requeue[self.next_requeue..];
            let pos = self.next_requeue + tail.partition_point(|&e| e <= entry);
            self.requeue.insert(pos, entry);
        } else {
            self.task_failed[task] = true;
        }
    }

    /// Overlays faulted sensors onto the per-window temperature
    /// snapshot. Aware scheduling substitutes the failsafe reading
    /// (treat-as-hot: `t_max`, zero admission headroom); oblivious
    /// scheduling consumes whatever the broken sensor reports —
    /// including a stuck-cold value that makes a hot node look like
    /// the best sprint candidate in the rack.
    pub(crate) fn mask_faulted_temps(&mut self) {
        let Some(plan) = self.fault_plan.as_ref() else {
            return;
        };
        let aware = plan.response == FaultResponse::Aware;
        for i in 0..self.nodes.len() {
            if let Some(fault) = self.fault_states[i].sensor() {
                self.temps_buf[i] = if aware {
                    self.nodes[i].session.thermal().t_max_c()
                } else {
                    match fault {
                        SensorFault::StuckAt(v) => v,
                        SensorFault::Bias(d) => self.temps_buf[i] + d,
                        SensorFault::Dropout => f64::NAN,
                    }
                };
            }
        }
    }

    /// Whether the installed fault plan reacts to faults
    /// ([`FaultResponse::Aware`]); false without a plan.
    fn fault_aware(&self) -> bool {
        self.fault_plan
            .as_ref()
            .is_some_and(|p| p.response == FaultResponse::Aware)
    }

    /// Fraction of the fleet not quarantined, in `(0, 1]` — the
    /// degradation signal a facility tier re-deals the feed by.
    pub fn alive_fraction(&self) -> f64 {
        let quarantined = self.node_quarantined.iter().filter(|&&q| q).count();
        (self.nodes.len() - quarantined) as f64 / self.nodes.len() as f64
    }

    /// Executes node `i`'s share of the current window: one session
    /// step when busy, one rest when idle. Shared verbatim between the
    /// lockstep loop and the event-driven core so the two paths cannot
    /// drift — this is the `tick` of the node component.
    pub(crate) fn run_node_window(&mut self, i: usize) {
        if self.nodes[i].task.is_some() {
            match self.nodes[i].session.step() {
                StepOutcome::Running => {}
                StepOutcome::Finished => self.complete(i),
                StepOutcome::TimeLimit => {
                    // The per-burst wall tripped with work left.
                    // Abandoning would strand the task's live
                    // threads on the machine (there is no
                    // thread-kill API), corrupting every later
                    // task on this node — so re-arm and keep
                    // draining, but *sustained*: the task already
                    // spent its sprint grant, and a fresh sprint
                    // here would bypass policy admission (and the
                    // grant bookkeeping the shed order works
                    // from). The step below keeps the node on the
                    // lockstep clock; truly runaway tasks are
                    // bounded by the cluster-level time limit.
                    self.nodes[i]
                        .session
                        .set_config(self.sustained_config.clone());
                    self.nodes[i].session.begin_burst();
                    if self.nodes[i].session.step() == StepOutcome::Finished {
                        self.complete(i);
                    }
                }
            }
        } else {
            self.nodes[i].session.rest(self.window_s);
        }
    }

    /// Steps until the queue drains or the time limit trips.
    pub fn run_to_completion(&mut self) -> ClusterOutcome {
        loop {
            let outcome = self.step();
            if outcome.is_terminal() {
                return outcome;
            }
        }
    }

    /// Builds the cluster summary for the run so far.
    pub fn report(&self) -> ClusterReport {
        let makespan_s = self
            .outcomes
            .iter()
            .map(|o| o.completed_s)
            .fold(0.0f64, f64::max);
        // NaN when empty, like the mean and the percentiles: an empty
        // run has no latencies, and a 0 here would read as "some task
        // finished instantly" to anything ranking policies by tail.
        let max_latency_s = if self.outcomes.is_empty() {
            f64::NAN
        } else {
            self.outcomes
                .iter()
                .map(|o| o.latency_s())
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let mean_latency_s = if self.outcomes.is_empty() {
            f64::NAN
        } else {
            self.outcomes.iter().map(|o| o.latency_s()).sum::<f64>() / self.outcomes.len() as f64
        };
        ClusterReport {
            makespan_s,
            completed: self.outcomes.len(),
            total_tasks: self.tasks.len(),
            mean_latency_s,
            p95_latency_s: latency_percentile_s(&self.outcomes, 0.95),
            p99_latency_s: latency_percentile_s(&self.outcomes, 0.99),
            max_latency_s,
            peak_junction_c: if self.peak_junction_c.is_finite() {
                self.peak_junction_c
            } else {
                self.rack.junction_temp_c()
            },
            // Per *task*, not per copy: a competitively duplicated
            // task counts once however many copies raced (the per-copy
            // decisions remain in the event log).
            admitted_sprints: self
                .task_copies
                .iter()
                .zip(&self.task_sprinted)
                .filter(|&(&copies, &sprinted)| copies > 0 && sprinted)
                .count(),
            denied_sprints: self
                .task_copies
                .iter()
                .zip(&self.task_sprinted)
                .filter(|&(&copies, &sprinted)| copies > 0 && !sprinted)
                .count(),
            sheds: self
                .events
                .iter()
                .filter(|e| matches!(e, ClusterEvent::NodeShed { .. }))
                .count(),
            power_sheds: self
                .events
                .iter()
                .filter(|e| matches!(e, ClusterEvent::PowerShed { .. }))
                .count(),
            supply_aborts: self
                .nodes
                .iter()
                .flat_map(|n| n.session.events().iter())
                .filter(|e| matches!(e, ControllerEvent::SupplyLimited { .. }))
                .count(),
            fault_events: self.fault_events_applied,
            sensor_faults: self.sensor_fault_count,
            supply_faults: self.supply_fault_count,
            node_crashes: self.node_crash_count,
            failsafe_preemptions: self.failsafe_preemptions,
            requeues: self.requeue_count,
            cancelled_copies: self.duplicates_cancelled,
            migrated_tasks: self.migrated_count,
            failed_tasks: self.task_failed.iter().filter(|&&f| f).count(),
            quarantined_nodes: self.node_quarantined.iter().filter(|&&q| q).count(),
            outstanding_tasks: self.outstanding_tasks(),
            outcomes: self.outcomes.clone(),
            node_reports: self.nodes.iter().map(|n| n.session.report()).collect(),
        }
    }

    /// Tasks neither completed nor failed, counted *structurally* —
    /// every place an unresolved task can live (not yet arrived, the
    /// ready queue, a pending crash-retry, a node) is scanned, so a
    /// task the bookkeeping lost would make the conservation invariant
    /// fail rather than silently balance.
    fn outstanding_tasks(&self) -> usize {
        let mut seen = vec![false; self.tasks.len()];
        for &t in &self.arrival_order[self.next_arrival..] {
            seen[t] = true;
        }
        for &t in &self.ready {
            seen[t] = true;
        }
        for &(_, _, t) in &self.requeue[self.next_requeue..] {
            seen[t] = true;
        }
        for n in &self.nodes {
            if let Some(t) = n.task {
                seen[t] = true;
            }
        }
        seen.iter()
            .zip(&self.task_done)
            .zip(&self.task_failed)
            .zip(&self.task_migrated)
            .filter(|(((&held, &done), &failed), &migrated)| held && !done && !failed && !migrated)
            .count()
    }

    /// Nodes currently in a sprint (ramping counts: the admission slot
    /// is taken the moment the burst starts).
    pub(crate) fn sprinting_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.task.is_some()
                    && matches!(
                        n.session.state(),
                        SprintState::Ramping | SprintState::Sprinting
                    )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Assigns ready tasks to idle nodes (coolest-first for headroom-
    /// aware policies), duplicating onto spare nodes under competitive
    /// policies. Under a deferring policy, a head-of-line task that
    /// cannot be admitted *waits for headroom* (until its defer window
    /// expires) instead of burning an order of magnitude longer in
    /// sustained mode — the sprint-or-defer trade that makes rationed
    /// sprinting beat the unmanaged rack.
    pub(crate) fn assign_ready(&mut self, now: f64) {
        while !self.ready.is_empty() {
            // Down and quarantined nodes cannot take work in either
            // response mode — a crashed server is gone, not slow.
            let down = &self.node_down;
            let quarantined = &self.node_quarantined;
            let mut idle: Vec<usize> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(i, n)| n.task.is_none() && !down[i] && !quarantined[i])
                .map(|(i, _)| i)
                .collect();
            if idle.is_empty() {
                return;
            }
            let task = *self.ready.front().expect("checked non-empty");
            match self.placement {
                Placement::PolicyDefault => {
                    if self.policy.places_coolest_first() {
                        let temps = &self.temps_buf;
                        idle.sort_by(|&a, &b| {
                            temps[a]
                                .partial_cmp(&temps[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        });
                    }
                }
                Placement::CheapestHeadroom => {
                    let min_cores = self.tasks[task].min_cores;
                    let mut keyed: Vec<(bool, f64, usize)> = idle
                        .iter()
                        .map(|&n| {
                            let narrow = self.nodes[n].session.machine().config().cores < min_cores;
                            (narrow, self.placement_cost(n), n)
                        })
                        .collect();
                    keyed.sort_by(|a, b| {
                        a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2))
                    });
                    idle = keyed.into_iter().map(|(_, _, n)| n).collect();
                }
            }
            // Admission is judged on the best (first-placed) candidate:
            // if even the coolest idle node cannot sprint, the task
            // defers rather than degrade — unless its window expired.
            let admit_primary = self.admits_on(idle[0]);
            let mut force_sustained = false;
            if !admit_primary {
                if let Some(defer_s) = self.policy.defer_window_s() {
                    if now - self.tasks[task].arrival_s < defer_s {
                        return; // hold the queue; retry next window
                    }
                    force_sustained = true; // waited long enough
                }
            }
            self.ready.pop_front();
            // Duplicate only onto nodes no waiting task needs
            // (Yonezawa's spare-capacity condition); a deferred task
            // falling back to sustained never duplicates, and a task
            // whose class forbids replication always runs one copy.
            let copies = if force_sustained || !self.tasks[task].duplicable {
                1
            } else {
                let spare = idle.len().saturating_sub(self.ready.len());
                self.policy.duplicates().min(spare.max(1)).min(idle.len())
            };
            self.task_copies[task] = copies;
            for &node in idle.iter().take(copies) {
                self.start_task_on(node, task, now, force_sustained);
            }
        }
    }

    /// The joint headroom cost [`Placement::CheapestHeadroom`] ranks
    /// idle nodes by: the fraction of the node's own temperature range
    /// already consumed, plus (on a shared feed) its live upstream
    /// draw over its *nameplate* share — both dimensionless, so a node
    /// that is thermally cool but electrically over-share ranks behind
    /// one comfortable on both axes. A broken sensor (NaN snapshot)
    /// reads as maximally hot: placement avoids what it cannot see.
    fn placement_cost(&self, node: usize) -> f64 {
        let thermal_port = self.nodes[node].session.thermal();
        let ambient = thermal_port.ambient_c();
        let range = thermal_port.t_max_c() - ambient;
        let mut thermal = if range > 0.0 {
            ((self.temps_buf[node] - ambient) / range).clamp(0.0, 1.0)
        } else {
            1.0
        };
        if thermal.is_nan() {
            thermal = 1.0;
        }
        let electrical = match &self.supply {
            Some(pool) => {
                let share = pool.nameplate_share_w(node);
                if share.is_finite() && share > 0.0 {
                    (pool.node_draw_w(node) / share).clamp(0.0, 4.0)
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        thermal + electrical
    }

    /// Whether the policy would admit a sprint on `node` right now: the
    /// thermal gate (local headroom + rack allowance) *and* the power
    /// gate must both clear — a task denied on either axis defers under
    /// the same sprint-or-defer machinery.
    fn admits_on(&self, node: usize) -> bool {
        if self.node_down[node] || self.node_quarantined[node] {
            return false;
        }
        // Aware scheduling never grants a sprint on a node whose
        // telemetry is known-bad: the masked snapshot already reads
        // t_max (zero headroom), but headroom-blind policies like
        // `AllSprint` need the explicit veto too.
        if self.fault_aware() && self.fault_states[node].sensor().is_some() {
            return false;
        }
        let allowance = self
            .policy
            .max_sprinting_at(self.nodes.len(), self.rack.headroom_k());
        let sprinting = self.sprinting_nodes();
        let node_headroom = self.nodes[node].session.thermal().t_max_c() - self.temps_buf[node];
        self.policy
            .admits(node_headroom, sprinting.len(), allowance)
            && self.power_admits(&sprinting)
    }

    /// The power gate: under rationing, one more provisioned sprint
    /// must fit the rack feed. Sprinting nodes are booked at the
    /// policy's provisioned draw (their telemetry lags admission by the
    /// ramp — booking, not measuring, is what keeps the scheduler ahead
    /// of the physics); everyone else is carried at live telemetry.
    fn power_admits(&self, sprinting: &[usize]) -> bool {
        let PowerPolicy::Rationed { sprint_draw_w, .. } = self.power else {
            return true;
        };
        let pool = self
            .supply
            .as_ref()
            .expect("rationing requires a pool (enforced at build)");
        let provisioned: f64 = (0..self.nodes.len())
            .map(|n| {
                if sprinting.contains(&n) {
                    sprint_draw_w
                } else {
                    pool.node_draw_w(n)
                }
            })
            .sum();
        provisioned + sprint_draw_w <= pool.cap_w()
    }

    /// Starts `task` on `node`, consulting the policy for sprint
    /// admission (unless the task already fell back to sustained).
    fn start_task_on(&mut self, node: usize, task: usize, now: f64, force_sustained: bool) {
        let admit = !force_sustained && self.admits_on(node);
        let spec = self.tasks[task];
        let config = if admit {
            self.sprint_config.clone()
        } else {
            self.sustained_config.clone()
        };
        let n = &mut self.nodes[node];
        n.session.set_config(config);
        suite_loader(spec.kind, spec.size, spec.threads)(n.session.machine_mut());
        n.session.begin_burst();
        n.task = Some(task);
        n.assigned_s = now;
        n.sprinted = admit;
        if admit {
            self.task_sprinted[task] = true;
            // A node re-admitted in the same window its previous grant
            // lapsed may still carry a stale rotation entry (the shed
            // pass's retain runs after assignment): drop it so the new
            // grant takes a fresh, single slot.
            self.grant_order.retain(|&n| n != node);
            self.grant_order.push(node);
            self.events.push(ClusterEvent::SprintAdmitted {
                node,
                task,
                at_s: now,
            });
        } else {
            self.events.push(ClusterEvent::SprintDenied {
                node,
                task,
                at_s: now,
            });
        }
    }

    /// Preempts sprinting nodes beyond the policy's allowance, in the
    /// policy's shed order.
    pub(crate) fn shed_pass(&mut self, now: f64) {
        let sprinting = self.sprinting_nodes();
        // Grants whose sprints already ended (budget, completion) fall
        // out of the rotation here.
        self.grant_order.retain(|n| sprinting.contains(n));
        let rack_headroom = self.rack.headroom_k();
        let allowance = self
            .policy
            .max_sprinting_at(self.nodes.len(), rack_headroom);
        if sprinting.len() <= allowance {
            return;
        }
        let order = self
            .policy
            .shed_order(&sprinting, &self.temps_buf, &self.grant_order);
        let excess = sprinting.len() - allowance;
        for &node in order.iter().take(excess) {
            self.nodes[node].session.preempt_sprint();
            self.grant_order.retain(|&n| n != node);
            self.events.push(ClusterEvent::NodeShed {
                node,
                at_s: now,
                rack_headroom_k: rack_headroom,
            });
        }
    }

    /// The power-emergency shed pass: when the bus is overdrawn and
    /// the reserve has fallen below the policy's floor, preempt
    /// sprinting nodes until demand fits the feed again. The shed
    /// *order* is the cluster policy's, fed per-node upstream draws in
    /// place of temperatures — greedy policies shed the biggest
    /// drawers first, round-robin walks its rotation — so one ordering
    /// mechanism serves both emergencies. Admission should keep this
    /// pass idle; it is the backstop against provisioning error.
    pub(crate) fn power_shed_pass(&mut self, now: f64) {
        let PowerPolicy::Rationed {
            shed_reserve_fraction,
            ..
        } = self.power
        else {
            return;
        };
        let Some(pool) = self.supply.clone() else {
            return;
        };
        let reserve_fraction = pool.reserve_fraction();
        if pool.headroom_w() >= 0.0 || reserve_fraction >= shed_reserve_fraction {
            return;
        }
        let sprinting = self.sprinting_nodes();
        let draws: Vec<f64> = (0..self.nodes.len()).map(|n| pool.node_draw_w(n)).collect();
        let order = self
            .policy
            .shed_order(&sprinting, &draws, &self.grant_order);
        let mut total = pool.total_draw_w();
        for &node in &order {
            if total <= pool.cap_w() {
                break;
            }
            self.nodes[node].session.preempt_sprint();
            self.grant_order.retain(|&n| n != node);
            // A preempted node keeps drawing sustained power, so
            // crediting its full draw as relief would under-shed and
            // prolong the brownout. The exact post-preemption draw is
            // the node's business, but it stays within the nameplate
            // share (in-share draws ride out brownouts by design), so
            // credit only the over-share excess — an emergency pass
            // should err toward shedding one node too many, never one
            // too few.
            total -= (draws[node] - pool.nameplate_share_w(node)).max(0.0);
            self.events.push(ClusterEvent::PowerShed {
                node,
                at_s: now,
                reserve_fraction,
            });
        }
    }

    /// Records a finished node's task (first finisher wins under
    /// duplication) and frees the node.
    fn complete(&mut self, node: usize) {
        let task = self.nodes[node]
            .task
            .take()
            .expect("complete() requires a running task");
        if self.task_done[task] {
            return; // a duplicate copy lost the race
        }
        self.task_done[task] = true;
        let outcome = TaskOutcome {
            task,
            node,
            arrival_s: self.tasks[task].arrival_s,
            assigned_s: self.nodes[node].assigned_s,
            completed_s: self.nodes[node].session.now_s(),
            sprinted: self.nodes[node].sprinted,
            copies: self.task_copies[task],
        };
        // The percentile machinery assumes finite latencies; a NaN or
        // infinite one here means a session clock went bad, not a tail.
        debug_assert!(
            outcome.latency_s().is_finite(),
            "completed task {task} on node {node} has non-finite latency \
             (arrival {} s, completed {} s)",
            outcome.arrival_s,
            outcome.completed_s,
        );
        self.outcomes.push(outcome);
        // Competitive-duplicate cancellation: the window the winner
        // commits, every losing replica is preempted through the
        // machine-level cancel API and its node reclaimed — the loser
        // stops burning feed watts *now*, not when it happens to
        // finish. Off (`cancel_losers: false`), losers run to
        // completion and are discarded on arrival here — the
        // pre-cancel baseline the duplication studies compare against.
        if self.task_copies[task] > 1 && self.policy.cancels_losers() {
            for j in 0..self.nodes.len() {
                if self.nodes[j].task == Some(task) {
                    self.nodes[j].task = None;
                    self.nodes[j].session.cancel_workload();
                    self.grant_order.retain(|&g| g != j);
                    self.duplicates_cancelled += 1;
                    // Losers after the winner in index order still get
                    // their rest this window (the lockstep loop reaches
                    // them task-less); losers before it already ran, so
                    // their first rest lands next window. The event
                    // core consumes both lists to stay in lockstep.
                    if j > node {
                        self.cancelled_scratch.push(j as u32);
                    } else {
                        self.cancelled_after_run.push(j as u32);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::suite::{InputSize, WorkloadKind};

    fn outcome_with_latency(task: usize, latency_s: f64) -> TaskOutcome {
        TaskOutcome {
            task,
            node: 0,
            arrival_s: 0.0,
            assigned_s: 0.0,
            completed_s: latency_s,
            sprinted: false,
            copies: 1,
        }
    }

    /// Regression for the NaN-ordering bug: under the old
    /// `partial_cmp(..).unwrap_or(Equal)` sort a NaN latency was left
    /// wherever the comparison happened to strand it, corrupting the
    /// order of the *finite* latencies around it. `total_cmp` pins NaN
    /// above every number, so the finite ranks stay correct and
    /// deterministic even in the presence of a poisoned outcome.
    #[test]
    fn latency_percentile_is_nan_robust() {
        let outcomes: Vec<TaskOutcome> = [3.0, 1.0, f64::NAN, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &l)| outcome_with_latency(i, l))
            .collect();
        // Sorted under total order: [1, 2, 3, NaN].
        assert_eq!(latency_percentile_s(&outcomes, 0.5), 2.0);
        assert_eq!(latency_percentile_s(&outcomes, 0.75), 3.0);
        assert!(latency_percentile_s(&outcomes, 1.0).is_nan());
        // All-finite ranks are unaffected.
        let finite: Vec<TaskOutcome> = [5.0, 4.0, 6.0]
            .iter()
            .enumerate()
            .map(|(i, &l)| outcome_with_latency(i, l))
            .collect();
        assert_eq!(latency_percentile_s(&finite, 0.95), 6.0);
        assert_eq!(latency_percentile_s(&finite, 0.34), 5.0);
    }

    /// The whole empty-run report contract in one place: every latency
    /// statistic — mean, p95, p99 *and* max — is NaN when no task
    /// completed (an empty run has no latencies, not zero-latency
    /// tasks), while the counters and times report their natural
    /// zeros.
    #[test]
    fn empty_report_contract() {
        let report = ClusterBuilder::new(
            sprint_thermal::grid::GridThermalParams::rack(2, 2).time_scaled(3000.0),
        )
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 2))
        .build()
        .report();
        assert_eq!(report.completed, 0);
        assert_eq!(report.total_tasks, 2);
        assert!(report.mean_latency_s.is_nan());
        assert!(report.p95_latency_s.is_nan());
        assert!(report.p99_latency_s.is_nan());
        assert!(report.max_latency_s.is_nan());
        assert_eq!(report.makespan_s, 0.0);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.admitted_sprints, 0);
        assert_eq!(report.denied_sprints, 0);
        assert_eq!(report.sheds + report.power_sheds + report.supply_aborts, 0);
        // A plan-free run must report all-zero fault counters, and the
        // conservation invariant must hold with every task outstanding.
        assert_eq!(
            report.fault_events
                + report.sensor_faults
                + report.supply_faults
                + report.node_crashes
                + report.failsafe_preemptions
                + report.requeues
                + report.cancelled_copies
                + report.migrated_tasks
                + report.failed_tasks
                + report.quarantined_nodes,
            0
        );
        assert_eq!(report.outstanding_tasks, report.total_tasks);
        assert!(report.task_conservation_holds());
    }
}
