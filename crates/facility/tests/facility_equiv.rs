//! The facility layer's observer-effect contract: a one-rack facility
//! with coupling left at defaults reproduces a standalone
//! [`ClusterSession`] run byte for byte.

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

#[test]
fn one_rack_facility_reproduces_standalone_cluster() {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let tasks = ClusterTask::arrivals(WorkloadKind::Sobel, InputSize::A, 16, 8, 0.0, 5e-5);

    let facility = FacilityBuilder::new(1)
        .rack_thermal(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(4).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::greedy_default())
        .tasks_on(0, tasks)
        .build();

    // The standalone comparator is built from the very same spec — the
    // ClusterBuilder call a hand-written study would make.
    let mut standalone = facility.spec(0).build();
    assert_eq!(standalone.run_to_completion(), ClusterOutcome::Drained);
    let expected = standalone.report();

    let report = facility.run(1);
    assert!(report.all_drained);
    assert_eq!(report.racks, 1);
    let rack = &report.rack_reports[0];

    // Spot-check the headline figures at exact bits...
    assert_eq!(rack.makespan_s.to_bits(), expected.makespan_s.to_bits());
    assert_eq!(
        rack.p99_latency_s.to_bits(),
        expected.p99_latency_s.to_bits()
    );
    assert_eq!(
        rack.peak_junction_c.to_bits(),
        expected.peak_junction_c.to_bits()
    );
    // ...then everything at once: scalars, outcomes, node reports.
    assert_eq!(
        cluster_report_digest(rack),
        cluster_report_digest(&expected),
        "a one-rack facility must be bit-for-bit a standalone cluster"
    );

    // The facility rollup of a single rack is that rack's own tail.
    assert_eq!(
        report.p95_latency_s.to_bits(),
        expected.p95_latency_s.to_bits()
    );
    assert_eq!(
        report.p99_latency_s.to_bits(),
        expected.p99_latency_s.to_bits()
    );
    assert_eq!(report.completed, expected.completed);
    assert_eq!(report.supply_aborts, expected.supply_aborts);
}

/// The same contract holds with more worker threads than racks (the
/// pool clamps) and regardless of epoch length: chunked stepping is
/// still the same step sequence.
#[test]
fn epoch_length_and_thread_clamp_do_not_perturb_one_rack() {
    let build = |epoch_windows: u64| {
        FacilityBuilder::new(1)
            .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
            .policy(ClusterPolicy::AllSprint)
            .tasks_on(
                0,
                ClusterTask::arrivals(WorkloadKind::Sobel, InputSize::A, 16, 4, 0.0, 5e-5),
            )
            .epoch_windows(epoch_windows)
            .build()
    };
    let short = build(7).run(4);
    let long = build(512).run(1);
    assert_eq!(
        cluster_report_digest(&short.rack_reports[0]),
        cluster_report_digest(&long.rack_reports[0]),
        "epoch chunking must not change the step sequence"
    );
    assert!(short.epochs > long.epochs, "sanity: epochs actually differ");
}
