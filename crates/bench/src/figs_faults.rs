//! Fault-degradation figure: latency degradation vs casualties under
//! seeded crash/sensor/supply faults, degradation-aware vs oblivious
//! (`repro faults`).
//!
//! The facility is the cap-sweep study's (16 racks of 16 servers,
//! globally rationed feed, rotating diurnal peaks) with one change:
//! every rack runs under a seeded `FaultPlan` — sensors stick, bias and
//! drop out; regulators collapse, brown out and die; nodes crash, and a
//! node that crashes mid-task is quarantined for good. The sweep
//! crosses fault intensity (none / light / heavy) with the scheduler's
//! response mode:
//!
//! * **aware** (`FaultResponse::Aware`) — a faulted sensor reads as
//!   already-at-the-limit (conservative treat-as-hot failsafe), crash
//!   victims are re-enqueued under a bounded retry budget, quarantined
//!   nodes cede their nameplate share back to the rack pool and the
//!   facility tier re-deals the feed around degraded racks;
//! * **oblivious** — the scheduler believes whatever the faulted
//!   telemetry says and keeps booking the full nameplate of dead iron
//!   (crash re-enqueue still works: losing a task silently is not a
//!   policy choice, it is a bug — conservation holds in both modes).
//!
//! The figures of merit are the facility p99 and the casualty count
//! (tasks failed after retries plus tasks still outstanding at the
//! time limit). Every row asserts task conservation: arrivals are
//! never lost, only finished, failed, or shed at the horizon.

use std::time::Instant;

use sprint_core::fault::{FaultRates, FaultResponse};
use sprint_facility::prelude::*;

use crate::figs_facility::{
    facility_threads, study_facility_with, FACILITY_FLOOR_W, FACILITY_RACKS, FACILITY_SLOT_W,
};
use crate::output::{Csv, TextTable};

/// Per-rack share of the facility feed for the fault study, watts —
/// tight enough that the rationing tier is live, so re-dealing a
/// degraded rack's ceded share is observable.
pub const FAULTS_SHARE_W: f64 = 40.0;
/// Tasks per full-scale run (the quick sweep trims racks and tasks).
pub const FAULTS_TASKS: usize = 3_200;
/// Time limit, seconds: quarantine can strand part of a queue, and a
/// stranded rack must hit this wall rather than run the full cap-sweep
/// horizon.
pub const FAULTS_MAX_TIME_S: f64 = 10.0;
/// The `--quick` time limit, seconds — stranded racks simulate to the
/// horizon whatever their size, so the quick matrix must shorten the
/// horizon itself, not just the task count. Still an order of
/// magnitude past the fault-free quick drain.
pub const FAULTS_QUICK_MAX_TIME_S: f64 = 2.0;

/// The light fault intensity, in the study's 20 µs sampling windows:
/// a handful of onsets per node over the ~5k-window drain.
pub fn light_rates() -> FaultRates {
    FaultRates {
        mean_sensor_gap_windows: 3_000,
        sensor_hold_windows: 1_500,
        mean_crash_gap_windows: 8_000,
        crash_hold_windows: 2_000,
        mean_supply_gap_windows: 5_000,
        supply_hold_windows: 1_500,
    }
}

/// The heavy intensity: every gap quartered — most nodes see sensor
/// faults, and crashes claim a visible fraction of each rack.
pub fn heavy_rates() -> FaultRates {
    FaultRates {
        mean_sensor_gap_windows: 750,
        sensor_hold_windows: 1_500,
        mean_crash_gap_windows: 2_000,
        crash_hold_windows: 2_000,
        mean_supply_gap_windows: 1_250,
        supply_hold_windows: 1_500,
    }
}

/// One (intensity, response) point of the sweep.
pub struct FaultRow {
    /// Intensity label.
    pub level: &'static str,
    /// Response label.
    pub response: &'static str,
    /// Facility report.
    pub report: FacilityReport,
    /// Wall-clock for the run, seconds.
    pub wall_s: f64,
}

impl FaultRow {
    /// Tasks the run lost to faults: failed after exhausting retries,
    /// plus shed at the time limit (stranded by quarantine).
    pub fn casualties(&self) -> usize {
        self.report.failed_tasks + self.report.outstanding_tasks
    }
}

/// Runs one sweep point: the cap-sweep facility under `rates`, on the
/// event-driven core (quarantined racks idle at event cost, not
/// lockstep cost). Asserts task conservation before reporting.
pub fn run_fault_point(
    level: &'static str,
    rates: Option<FaultRates>,
    response: FaultResponse,
    racks: usize,
    tasks: usize,
    max_time_s: f64,
) -> FaultRow {
    let facility = study_facility_with(
        FacilityPolicy::GlobalRationed {
            floor_w: FACILITY_FLOOR_W,
            slot_w: FACILITY_SLOT_W,
        },
        FAULTS_SHARE_W,
        racks,
        tasks,
        |builder| {
            let builder = builder.max_time_s(max_time_s).event_driven(true);
            match rates {
                Some(rates) => builder.fault_rates(rates).fault_response(response),
                None => builder,
            }
        },
    );
    let start = Instant::now();
    let report = facility.run(facility_threads());
    let wall_s = start.elapsed().as_secs_f64();
    assert!(
        report.task_conservation_holds(),
        "{level}/{response:?}: a task was lost: {} completed + {} failed + {} \
         outstanding != {}",
        report.completed,
        report.failed_tasks,
        report.outstanding_tasks,
        report.total_tasks,
    );
    if rates.is_none() {
        assert_eq!(
            report.fault_events + report.node_crashes + report.sensor_faults,
            0,
            "a fault-free run injected faults"
        );
        assert!(report.all_drained, "the fault-free baseline must drain");
    }
    FaultRow {
        level,
        response: match response {
            FaultResponse::Aware => "aware",
            FaultResponse::Oblivious => "oblivious",
        },
        report,
        wall_s,
    }
}

/// The fault sweep at explicit scale: none/light/heavy crossed with
/// aware/oblivious (the fault-free baseline runs once — without a
/// plan the response mode is dead code).
pub fn fig_faults_at(racks: usize, tasks: usize, max_time_s: f64) -> (Vec<FaultRow>, String) {
    let mut rows = vec![run_fault_point(
        "none",
        None,
        FaultResponse::Aware,
        racks,
        tasks,
        max_time_s,
    )];
    for (level, rates) in [("light", light_rates()), ("heavy", heavy_rates())] {
        for response in [FaultResponse::Aware, FaultResponse::Oblivious] {
            rows.push(run_fault_point(
                level,
                Some(rates),
                response,
                racks,
                tasks,
                max_time_s,
            ));
        }
    }
    let mut out = format!(
        "Fault injection and graceful degradation — {racks} racks, {tasks} tasks, \
         globally rationed {:.0} W/rack feed\n",
        FAULTS_SHARE_W,
    );
    let mut table = TextTable::new();
    table.row(&[
        &"faults",
        &"response",
        &"p99 ms",
        &"mean ms",
        &"done",
        &"failed",
        &"shed",
        &"crashes",
        &"quarantined",
        &"failsafes",
        &"peak C",
    ]);
    let mut csv = Csv::new(
        "fig_faults",
        &[
            "level",
            "response",
            "racks",
            "tasks",
            "completed",
            "failed_tasks",
            "outstanding_tasks",
            "casualties",
            "mean_latency_ms",
            "p95_latency_ms",
            "p99_latency_ms",
            "fault_events",
            "sensor_faults",
            "supply_faults",
            "node_crashes",
            "quarantined_nodes",
            "failsafe_preemptions",
            "requeues",
            "peak_junction_c",
            "all_drained",
            "wall_s",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.level,
            &r.response,
            &format!("{:.2}", r.report.p99_latency_s * 1e3),
            &format!("{:.2}", r.report.mean_latency_s * 1e3),
            &r.report.completed,
            &r.report.failed_tasks,
            &r.report.outstanding_tasks,
            &r.report.node_crashes,
            &r.report.quarantined_nodes,
            &r.report.failsafe_preemptions,
            &format!("{:.1}", r.report.peak_junction_c),
        ]);
        csv.row(&[
            &r.level,
            &r.response,
            &r.report.racks,
            &r.report.total_tasks,
            &r.report.completed,
            &r.report.failed_tasks,
            &r.report.outstanding_tasks,
            &r.casualties(),
            &format!("{:.4}", r.report.mean_latency_s * 1e3),
            &format!("{:.4}", r.report.p95_latency_s * 1e3),
            &format!("{:.4}", r.report.p99_latency_s * 1e3),
            &r.report.fault_events,
            &r.report.sensor_faults,
            &r.report.supply_faults,
            &r.report.node_crashes,
            &r.report.quarantined_nodes,
            &r.report.failsafe_preemptions,
            &r.report.requeues,
            &format!("{:.2}", r.report.peak_junction_c),
            &r.report.all_drained,
            &format!("{:.2}", r.wall_s),
        ]);
    }
    out.push_str(&table.render());
    // The degradation narrative, from this run's own numbers: what the
    // heavy-fault regime costs in latency and casualties, and what the
    // aware response buys back relative to oblivious.
    let baseline = &rows[0];
    let heavy_aware = rows
        .iter()
        .find(|r| r.level == "heavy" && r.response == "aware")
        .expect("sweep always runs heavy/aware");
    let heavy_obl = rows
        .iter()
        .find(|r| r.level == "heavy" && r.response == "oblivious")
        .expect("sweep always runs heavy/oblivious");
    out.push_str(&format!(
        "heavy faults degrade the fault-free p99 ({:.2} ms) to {:.2} ms aware vs \
         {:.2} ms oblivious, at {} vs {} casualties ({} tasks); every arrival is \
         accounted for — finished, failed after retries, or shed at the horizon —\n\
         in every cell of the matrix.\n",
        baseline.report.p99_latency_s * 1e3,
        heavy_aware.report.p99_latency_s * 1e3,
        heavy_obl.report.p99_latency_s * 1e3,
        heavy_aware.casualties(),
        heavy_obl.casualties(),
        heavy_aware.report.total_tasks,
    ));
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    (rows, out)
}

/// The fault figure (`repro faults`): the 16-rack matrix, or a 4-rack
/// reduced matrix under `--quick`.
pub fn fig_faults(quick: bool) -> String {
    if quick {
        fig_faults_at(4, 400, FAULTS_QUICK_MAX_TIME_S).1
    } else {
        fig_faults_at(FACILITY_RACKS, FAULTS_TASKS, FAULTS_MAX_TIME_S).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the matrix: faults bite, conservation holds, and
    /// the fault-free baseline stays all-zero on every fault counter.
    #[test]
    fn reduced_fault_matrix_conserves_tasks() {
        let clean = run_fault_point("none", None, FaultResponse::Aware, 2, 32, 2.0);
        assert_eq!(clean.casualties(), 0);
        assert_eq!(clean.report.completed, 32);

        let faulted = run_fault_point(
            "heavy",
            Some(heavy_rates()),
            FaultResponse::Aware,
            2,
            32,
            2.0,
        );
        assert!(faulted.report.fault_events > 0, "the plan never fired");
        assert!(faulted.report.task_conservation_holds());
    }
}
