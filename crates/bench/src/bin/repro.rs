//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro <experiment>... [--quick] [--full] [--bw2x] [--oracle] [--size A|B|C|D]
//! repro all [--quick]
//! ```
//!
//! `--oracle` makes the facility sweep re-run every point on the
//! lockstep golden oracle and assert the event-driven report digest
//! matches it byte for byte.
//!
//! Tables print to stdout; series are written to `results/*.csv`
//! (override the directory with `SPRINT_RESULTS_DIR`).

use std::time::Instant;

use sprint_bench::{
    figs_arch, figs_facility, figs_faults, figs_grid, figs_hetero, figs_model, figs_perf, figs_rack,
};
use sprint_workloads::suite::InputSize;

struct Options {
    quick: bool,
    full: bool,
    bw2x: bool,
    oracle: bool,
    size: InputSize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut opts = Options {
        quick: false,
        full: false,
        bw2x: false,
        oracle: false,
        size: InputSize::C,
    };
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.full = true,
            "--bw2x" => opts.bw2x = true,
            "--oracle" => opts.oracle = true,
            "--size" => {
                let v = iter.next().expect("--size needs A|B|C|D");
                opts.size = match v.as_str() {
                    "A" => InputSize::A,
                    "B" => InputSize::B,
                    "C" => InputSize::C,
                    "D" => InputSize::D,
                    other => {
                        eprintln!("unknown size {other}; use A|B|C|D");
                        std::process::exit(2);
                    }
                };
            }
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!(
            "usage: repro <experiment>... | all  [--quick] [--full] [--bw2x] [--oracle] [--size A|B|C|D]"
        );
        eprintln!(
            "experiments: fig1 fig2 table1 fig4a fig4b fig5 fig6 fig7 fig8 fig9 fig10 power grid perf rack rack_power facility faults hetero"
        );
        eprintln!("             ablation_tmelt ablation_metal ablation_budget ablation_abort ablation_pacing");
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig1",
            "table1",
            "fig2",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "power",
            "grid",
            "perf",
            "rack",
            "rack_power",
            "facility",
            "faults",
            "hetero",
            "ablation_tmelt",
            "ablation_metal",
            "ablation_budget",
            "ablation_abort",
            "ablation_pacing",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for exp in &experiments {
        let start = Instant::now();
        println!("==================================================================");
        let text = match exp.as_str() {
            "fig1" => figs_model::fig1(),
            "fig2" => figs_arch::fig2(),
            "table1" => figs_arch::table1(),
            "fig4a" => figs_model::fig4a(),
            "fig4b" => figs_model::fig4b(),
            "fig5" => figs_model::fig5(),
            "fig6" => figs_model::fig6(opts.full),
            "fig7" => figs_arch::fig7(),
            "fig8" => figs_arch::fig8(opts.quick),
            "fig9" => figs_arch::fig9(opts.quick),
            "fig10" | "fig11" => figs_arch::fig10_fig11(opts.size, opts.bw2x),
            "power" | "table_power" => figs_model::table_power(),
            "grid" | "fig_grid" => figs_grid::fig_grid(),
            "perf" | "fig_perf" => figs_perf::fig_perf(opts.quick, opts.full),
            "rack" | "fig_rack" => figs_rack::fig_rack(),
            "rack_power" | "fig_rack_power" => figs_rack::fig_rack_power(),
            "facility" | "fig_facility" => figs_facility::fig_facility(opts.quick, opts.oracle),
            "faults" | "fig_faults" => figs_faults::fig_faults(opts.quick),
            "hetero" | "fig_hetero" => figs_hetero::fig_hetero(opts.quick),
            "ablation_tmelt" => figs_model::ablation_tmelt(),
            "ablation_metal" => figs_model::ablation_metal(),
            "ablation_budget" => figs_arch::ablation_budget(),
            "ablation_abort" => figs_arch::ablation_abort(),
            "ablation_pacing" => figs_arch::ablation_pacing(),
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        };
        println!("{text}");
        println!("[{exp} took {:.1} s]", start.elapsed().as_secs_f64());
    }
}
