//! Simulated address-space allocation for workloads.
//!
//! Simulated memory carries *no contents* — kernels compute natively on
//! data they own and emit addresses purely for timing. This allocator hands
//! out disjoint, line-aligned address ranges so different arrays (and
//! different threads' private data) land in distinct cache lines exactly as
//! a real allocator would arrange.

use serde::{Deserialize, Serialize};

/// A contiguous simulated array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    base: u64,
    bytes: u64,
}

impl Region {
    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of element `index` with `elem_bytes`-byte elements.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the element lies outside the region.
    #[inline]
    pub fn addr(&self, index: u64, elem_bytes: u64) -> u64 {
        debug_assert!(
            (index + 1) * elem_bytes <= self.bytes,
            "element {index} x {elem_bytes} B outside region of {} B",
            self.bytes
        );
        self.base + index * elem_bytes
    }

    /// Address of a 4-byte element (the common case: f32/u32 pixels).
    #[inline]
    pub fn addr4(&self, index: u64) -> u64 {
        self.addr(index, 4)
    }
}

/// A bump allocator over the simulated address space.
///
/// # Examples
///
/// ```
/// use sprint_archsim::memmap::AddressSpace;
///
/// let mut mem = AddressSpace::new();
/// let image = mem.alloc_bytes(1920 * 1080 * 4);
/// let histogram = mem.alloc_bytes(256 * 4);
/// assert_ne!(image.base(), histogram.base());
/// assert_eq!(image.base() % 64, 0); // line aligned
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    next: u64,
    line_bytes: u64,
}

impl AddressSpace {
    /// Creates an address space with 64-byte line alignment, starting at a
    /// non-zero base (so address 0 never aliases a real array).
    pub fn new() -> Self {
        Self {
            next: 1 << 20,
            line_bytes: 64,
        }
    }

    /// Allocates `bytes` bytes, line-aligned, padded so no two regions
    /// share a cache line (avoiding accidental false sharing between
    /// logically separate arrays).
    pub fn alloc_bytes(&mut self, bytes: u64) -> Region {
        assert!(bytes > 0, "allocation must be non-empty");
        let base = self.next;
        let padded = bytes.div_ceil(self.line_bytes) * self.line_bytes;
        self.next += padded;
        Region {
            base,
            bytes: padded,
        }
    }

    /// Allocates an array of `count` elements of `elem_bytes` bytes.
    pub fn alloc_elems(&mut self, count: u64, elem_bytes: u64) -> Region {
        self.alloc_bytes(count * elem_bytes)
    }

    /// Total simulated bytes allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - (1 << 20)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut mem = AddressSpace::new();
        let a = mem.alloc_bytes(100);
        let b = mem.alloc_bytes(1);
        assert_eq!(a.base() % 64, 0);
        assert_eq!(b.base() % 64, 0);
        assert!(b.base() >= a.base() + 128, "100 B pads to 128 B");
    }

    #[test]
    fn element_addressing() {
        let mut mem = AddressSpace::new();
        let a = mem.alloc_elems(10, 4);
        assert_eq!(a.addr4(3), a.base() + 12);
        assert_eq!(a.addr(2, 8), a.base() + 16);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_allocation_rejected() {
        let mut mem = AddressSpace::new();
        let _ = mem.alloc_bytes(0);
    }

    #[test]
    fn allocated_bytes_tracks_padding() {
        let mut mem = AddressSpace::new();
        mem.alloc_bytes(1);
        assert_eq!(mem.allocated_bytes(), 64);
    }
}
