//! Event-driven cluster core vs the lockstep golden oracle.
//!
//! The lockstep scheduler advances every node every window — correct by
//! construction, and the reference the rest of the stack is pinned to,
//! but on a mostly-idle rack almost all of that work is bookkeeping for
//! nodes whose next thermally-relevant instant is far away. The
//! event-driven core keeps a time-ordered event heap instead and only
//! touches the nodes a window actually concerns, catching sleepers up
//! in bulk when a scheduling decision needs their state.
//!
//! The contract is not "close": the event core must reproduce the
//! lockstep [`ClusterReport`] digest **byte for byte** on the same
//! configuration. This example drains the same sparse open-arrival
//! trickle through both cores on a 4096-server rack, asserts the
//! digests match, and prints the wall-clock ratio (the `perfbench
//! --check` perf-smoke job gates the same configuration at >= 5x).
//!
//! Run with: `cargo run --release --example event_core`

use std::time::Instant;

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// Rack edge in servers (64x64 = 4096 nodes: big enough that idle
/// fleet bookkeeping, not thermal physics, dominates the lockstep
/// bill).
const EDGE: usize = 64;
/// Open-arrival tasks to drain.
const TASKS: usize = 2;
/// Arrival spacing, seconds — sparse, so all-idle windows dominate.
const SPACING_S: f64 = 8_000e-6;
/// Thermal/supply time compression (the rack figure's standard knob).
const COMPRESS: f64 = 6000.0;

/// One cluster, fully configured. Both cores get an identical copy —
/// byte-for-byte digest equality is only meaningful on identical
/// inputs.
fn build() -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let nodes = EDGE * EDGE;
    ClusterBuilder::new(
        GridThermalParams::rack(EDGE, EDGE)
            .with_grid(8, 8)
            .time_scaled(COMPRESS),
    )
    .policy(ClusterPolicy::greedy_default())
    .power_policy(PowerPolicy::rationed_default())
    .rack_supply(RackSupplyParams::rack(nodes).time_scaled(COMPRESS))
    .config(cfg)
    .tasks(ClusterTask::arrivals(
        WorkloadKind::Sobel,
        InputSize::A,
        16,
        TASKS,
        0.0,
        SPACING_S,
    ))
    .trace_capacity(0)
    .build()
}

fn main() {
    println!(
        "event core vs lockstep oracle: {} servers, {TASKS} sobel bursts {} ms apart",
        EDGE * EDGE,
        SPACING_S * 1e3,
    );

    let mut lockstep = build();
    let start = Instant::now();
    let outcome = lockstep.run_to_completion();
    let lockstep_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome, ClusterOutcome::Drained, "oracle run must drain");
    let lockstep_report = lockstep.report();

    let mut event = EventDrivenCluster::new(build());
    let start = Instant::now();
    let outcome = event.run_to_completion();
    let event_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome, ClusterOutcome::Drained, "event run must drain");
    let event_report = event.report();

    println!(
        "  lockstep: {:7.0} ms over {} windows ({:.1} us/window)",
        lockstep_s * 1e3,
        lockstep.windows(),
        lockstep_s * 1e6 / lockstep.windows() as f64,
    );
    println!(
        "  event:    {:7.0} ms over {} windows ({:.1} us/window)",
        event_s * 1e3,
        event.windows(),
        event_s * 1e6 / event.windows() as f64,
    );

    // The headline claim of the example: same digest, same windows,
    // same completed work — the event core is an optimization of the
    // schedule's *execution*, never of its *outcome*.
    assert_eq!(lockstep.windows(), event.windows(), "window counts differ");
    assert_eq!(
        lockstep_report.completed, event_report.completed,
        "completed-task counts differ"
    );
    assert_eq!(
        lockstep_report.digest(),
        event_report.digest(),
        "event core diverged from the lockstep oracle"
    );
    println!(
        "  report digests byte-identical ({:016x}), {} tasks completed by both",
        lockstep_report.digest(),
        lockstep_report.completed,
    );
    println!("  speedup: {:.1}x", lockstep_s / event_s);
}
