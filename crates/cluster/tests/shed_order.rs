//! Shed-order determinism and monotonicity: the per-die
//! `HotspotPolicy::ShedCores` ramp and its cluster generalization must
//! be deterministic functions of thermal state, monotone as headroom
//! shrinks, and reproduce the exact same shed sequence run-for-run
//! under both grid solvers.

use proptest::prelude::*;
use sprint_cluster::prelude::*;
use sprint_core::config::{HotspotPolicy, SprintConfig};
use sprint_thermal::grid::{GridSolver, GridThermalParams};
use sprint_workloads::suite::{InputSize, WorkloadKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-die core-shed cap is monotone non-decreasing in
    /// headroom and stays within [floor, start] for arbitrary policy
    /// parameters.
    #[test]
    fn shed_cores_cap_is_monotone_in_headroom(
        start_headroom in 0.5f64..20.0,
        min_cores in 1usize..8,
        start_cores in 1usize..33,
        h_lo in -5.0f64..25.0,
        dh in 0.0f64..10.0,
    ) {
        let policy = HotspotPolicy::ShedCores {
            start_headroom_k: start_headroom,
            min_cores,
        };
        policy.validate();
        let h_hi = h_lo + dh;
        let at_lo = policy.max_cores_at(start_cores, h_lo);
        let at_hi = policy.max_cores_at(start_cores, h_hi);
        prop_assert!(
            at_lo <= at_hi,
            "cap must not grow as headroom shrinks: {at_lo} @ {h_lo} vs {at_hi} @ {h_hi}"
        );
        let floor = min_cores.min(start_cores).max(1);
        prop_assert!(at_lo >= floor && at_lo <= start_cores);
        prop_assert!(at_hi >= floor && at_hi <= start_cores);
        // Determinism: the cap is a pure function of its inputs.
        prop_assert_eq!(at_lo, policy.max_cores_at(start_cores, h_lo));
    }

    /// The cluster sprinting allowance (the same ramp lifted from cores
    /// to nodes) is monotone non-decreasing in rack headroom for every
    /// policy variant, and bounded by the node count.
    #[test]
    fn cluster_allowance_is_monotone_in_headroom(
        shed_headroom in 0.5f64..20.0,
        min_sprinting in 1usize..6,
        nodes in 1usize..33,
        cap in 1usize..33,
        h_lo in -5.0f64..25.0,
        dh in 0.0f64..10.0,
    ) {
        let policies = [
            ClusterPolicy::NoSprint,
            ClusterPolicy::AllSprint,
            ClusterPolicy::RoundRobin { max_sprinting: cap },
            ClusterPolicy::GreedyHeadroom {
                admit_headroom_k: shed_headroom + 1.0,
                shed_headroom_k: shed_headroom,
                min_sprinting,
                defer_s: f64::INFINITY,
            },
        ];
        let h_hi = h_lo + dh;
        for policy in policies {
            policy.validate();
            let at_lo = policy.max_sprinting_at(nodes, h_lo);
            let at_hi = policy.max_sprinting_at(nodes, h_hi);
            prop_assert!(
                at_lo <= at_hi,
                "{policy:?}: allowance must not grow as headroom shrinks"
            );
            prop_assert!(at_hi <= nodes);
            prop_assert_eq!(at_lo, policy.max_sprinting_at(nodes, h_lo));
        }
    }

    /// The shed order is a deterministic function of the temperature
    /// snapshot: hottest first with index tie-breaks, every sprinting
    /// node ranked exactly once.
    #[test]
    fn shed_order_is_deterministic_and_complete(
        temps in prop::collection::vec(25.0f64..70.0, 16..17),
        mask in 1u32..65536,
    ) {
        let sprinting: Vec<usize> =
            (0..16).filter(|i| mask & (1 << i) != 0).collect();
        let policy = ClusterPolicy::greedy_default();
        let order = policy.shed_order(&sprinting, &temps, &sprinting);
        prop_assert_eq!(order.clone(), policy.shed_order(&sprinting, &temps, &sprinting));
        prop_assert_eq!(order.len(), sprinting.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, sprinting.clone(), "a permutation of the sprinting set");
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                temps[a] > temps[b] || (temps[a] == temps[b] && a < b),
                "hottest-first with index ties: {a} before {b}"
            );
        }
    }
}

/// Runs a small shared-rack scenario hot enough to force sheds and
/// returns the shed sequence (node indices in event order).
fn shed_sequence(solver: GridSolver) -> (Vec<usize>, f64) {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let mut cluster = ClusterBuilder::new(
        GridThermalParams::rack(2, 2)
            .with_solver(solver)
            .time_scaled(6000.0),
    )
    .policy(ClusterPolicy::GreedyHeadroom {
        // Generous admission with an aggressive shed ramp: everyone is
        // admitted cold, then the allowance collapses as the rack
        // heats, so the shed order is exercised repeatedly.
        admit_headroom_k: 2.0,
        shed_headroom_k: 30.0,
        min_sprinting: 1,
        defer_s: 0.0,
    })
    .config(cfg)
    .tasks(ClusterTask::batch(
        WorkloadKind::Sobel,
        InputSize::A,
        16,
        12,
    ))
    .trace_capacity(0)
    .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let sheds: Vec<usize> = cluster
        .events()
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::NodeShed { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    (sheds, cluster.report().makespan_s)
}

/// Same cluster, same solver, run twice: the shed sequence (which
/// nodes, in which order) and the makespan must be identical — under
/// the explicit solver and under ADI.
#[test]
fn shed_sequence_is_reproducible_under_both_solvers() {
    for solver in [GridSolver::Explicit, GridSolver::Adi] {
        let (sheds_a, makespan_a) = shed_sequence(solver);
        let (sheds_b, makespan_b) = shed_sequence(solver);
        assert!(
            !sheds_a.is_empty(),
            "{solver:?}: the scenario must actually shed"
        );
        assert_eq!(
            sheds_a, sheds_b,
            "{solver:?}: shed order must be reproducible"
        );
        assert_eq!(
            makespan_a.to_bits(),
            makespan_b.to_bits(),
            "{solver:?}: makespan must be bit-reproducible"
        );
    }
}

/// The two solvers agree on the *behaviour*: both shed, and their
/// makespans agree to a few percent (they are different integrators,
/// so bit-identity across solvers is not expected — determinism within
/// each solver is pinned above).
#[test]
fn solvers_agree_on_shed_behaviour() {
    let (sheds_explicit, makespan_explicit) = shed_sequence(GridSolver::Explicit);
    let (sheds_adi, makespan_adi) = shed_sequence(GridSolver::Adi);
    assert!(!sheds_explicit.is_empty() && !sheds_adi.is_empty());
    let rel = (makespan_explicit - makespan_adi).abs() / makespan_explicit.max(makespan_adi);
    assert!(
        rel < 0.05,
        "solver makespans must agree within 5%: explicit {makespan_explicit:.6} vs adi {makespan_adi:.6}"
    );
}
