//! Coherence-protocol integration tests: directory/L1 invariants hold
//! under randomized sharing patterns.

use proptest::prelude::*;
use sprint_archsim::config::MachineConfig;
use sprint_archsim::isa::{Op, OpClass};
use sprint_archsim::machine::Machine;
use sprint_archsim::program::{FnKernel, Inbox, KernelStatus};

/// A kernel producing a pseudo-random mix of loads/stores over a small
/// shared region (maximizing coherence churn) plus private work.
#[allow(clippy::type_complexity)]
fn churn_kernel(
    seed: u64,
    iters: u32,
) -> Box<
    FnKernel<impl FnMut(sprint_archsim::ThreadId, &mut Inbox, &mut Vec<Op>) -> KernelStatus + Send>,
> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut remaining = iters;
    Box::new(FnKernel(
        move |_tid, _inbox: &mut Inbox, out: &mut Vec<Op>| {
            if remaining == 0 {
                return KernelStatus::Done;
            }
            remaining -= 1;
            for _ in 0..16 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // 16 shared lines + per-thread private lines.
                let shared = (state >> 33) % 16;
                let addr = 0x10_0000 + shared * 64;
                if state & 1 == 0 {
                    out.push(Op::Load { addr });
                } else {
                    out.push(Op::Store { addr });
                }
                out.push(Op::Compute {
                    class: OpClass::IntAlu,
                    count: 4,
                });
            }
            KernelStatus::Running
        },
    ))
}

#[test]
fn invariants_hold_under_heavy_sharing() {
    let mut m = Machine::new(MachineConfig::hpca().with_cores(8));
    for t in 0..8 {
        m.spawn(churn_kernel(t as u64 + 1, 200));
    }
    let mut windows = 0;
    while !m.all_done() {
        m.run_window(10_000);
        windows += 1;
        if windows % 50 == 0 {
            m.check_coherence()
                .expect("coherence invariant violated mid-run");
        }
        assert!(windows < 1_000_000);
    }
    m.check_coherence()
        .expect("coherence invariant violated at end");
    assert!(
        m.stats().invalidations > 0,
        "sharing must cause invalidations"
    );
    assert!(
        m.stats().owner_interventions > 0,
        "dirty sharing must intervene"
    );
}

#[test]
fn invariants_hold_across_migration() {
    let mut m = Machine::new(MachineConfig::hpca().with_cores(8));
    for t in 0..8 {
        m.spawn(churn_kernel(t as u64 + 100, 400));
    }
    for step in 0..10_000 {
        if m.all_done() {
            break;
        }
        m.run_window(10_000);
        match step {
            50 => m.set_active_cores(2),
            120 => m.set_active_cores(8),
            200 => m.set_active_cores(1),
            300 => m.set_active_cores(4),
            _ => {}
        }
        if step % 25 == 0 {
            m.check_coherence()
                .expect("coherence broken around migration");
        }
    }
    m.check_coherence().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random thread counts, iteration counts and window sizes never break
    /// the protocol.
    #[test]
    fn random_configs_stay_coherent(
        threads in 2usize..8,
        iters in 20u32..200,
        window in 2_000u64..50_000,
    ) {
        let mut m = Machine::new(MachineConfig::hpca().with_cores(threads));
        for t in 0..threads {
            m.spawn(churn_kernel((t as u64 + 7) * 31, iters));
        }
        let mut n = 0;
        while !m.all_done() {
            m.run_window(window);
            n += 1;
            prop_assert!(n < 2_000_000, "livelock");
        }
        prop_assert!(m.check_coherence().is_ok());
    }
}
