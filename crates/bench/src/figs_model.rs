//! Model-level figure reproductions: Figure 1 (scaling trends), Figure 4
//! (thermal transients), Figure 5/6 (power grid), the Section 6 power
//! source table, and the thermal ablations.

use sprint_powergrid::activation::{ActivationExperiment, ActivationSchedule};
use sprint_powersource::feasibility::{evaluate_pins, evaluate_sources};
use sprint_scaling::model::ScalingModel;
use sprint_scaling::node::NODES;
use sprint_thermal::analysis::{simulate_cooldown, simulate_sprint};
use sprint_thermal::material::Material;
use sprint_thermal::phone::PhoneThermalParams;

use crate::output::{Csv, TextTable};

/// Figure 1: power density and dark-silicon fraction per node.
pub fn fig1() -> String {
    let mut csv = Csv::new("fig1", &["model", "nm", "power_density", "percent_dark"]);
    let mut table = TextTable::new();
    table.row(&[&"model", &"node", &"power density", &"% dark Si"]);
    for model in ScalingModel::ALL {
        for (nm, pd, dark) in model.series() {
            csv.row(&[
                &model.label(),
                &nm,
                &format!("{pd:.3}"),
                &format!("{dark:.1}"),
            ]);
            table.row(&[
                &model.label(),
                &format!("{nm} nm"),
                &format!("{pd:.2}x"),
                &format!("{dark:.0}%"),
            ]);
        }
    }
    let path = csv.finish();
    format!(
        "Figure 1 — power density & dark silicon (45→6 nm)\n{}\nwrote {}\n\
         paper anchor: ARM CTO prediction of ~9% active (91% dark) silicon by 2019;\n\
         the pessimistic curve reaches {:.0}% dark at the final node.\n",
        TextTable::render(&table),
        path.display(),
        ScalingModel::ItrsWithBorkarVdd.percent_dark_silicon(NODES.len() - 1)
    )
}

/// Figure 4(a): sprint-initiation transient at 16 W on the full design.
pub fn fig4a() -> String {
    let mut phone = PhoneThermalParams::hpca().build();
    let sprint = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
    let mut csv = Csv::new("fig4a", &["time_s", "junction_c", "pcm_c", "melt_fraction"]);
    for p in sprint.trace.downsample(250) {
        csv.row(&[
            &format!("{:.4}", p.time_s),
            &format!("{:.2}", p.junction_c),
            &format!("{:.2}", p.pcm_c),
            &format!("{:.3}", p.melt_fraction),
        ]);
    }
    let path = csv.finish();
    format!(
        "Figure 4(a) — sprint initiation (16 W, 140 mg PCM, Tmelt 60 C, Tmax 70 C)\n\
         melt begins      {:>6.2} s   (paper: shortly after onset)\n\
         melt completes   {:>6.2} s\n\
         plateau length   {:>6.2} s   (paper: 0.95 s)\n\
         sprint duration  {:>6.2} s   (paper: 'a little over 1 s')\n\
         wrote {}\n",
        sprint.t_melt_start_s.unwrap_or(f64::NAN),
        sprint.t_melt_end_s.unwrap_or(f64::NAN),
        sprint.plateau_s().unwrap_or(f64::NAN),
        sprint.duration_s.unwrap_or(f64::NAN),
        path.display()
    )
}

/// Figure 4(b): post-sprint cooldown.
pub fn fig4b() -> String {
    let mut phone = PhoneThermalParams::hpca().build();
    let _ = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
    let cooldown = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 120.0);
    let mut csv = Csv::new("fig4b", &["time_s", "junction_c", "melt_fraction"]);
    for p in cooldown.trace.downsample(250) {
        csv.row(&[
            &format!("{:.3}", p.time_s),
            &format!("{:.2}", p.junction_c),
            &format!("{:.3}", p.melt_fraction),
        ]);
    }
    let path = csv.finish();
    format!(
        "Figure 4(b) — post-sprint cooldown\n\
         refreeze starts   {:>6.1} s\n\
         refreeze complete {:>6.1} s\n\
         near ambient      {:>6.1} s   (paper: ~24 s; rule of thumb 16 s)\n\
         wrote {}\n",
        cooldown.t_freeze_start_s.unwrap_or(f64::NAN),
        cooldown.t_freeze_end_s.unwrap_or(f64::NAN),
        cooldown.t_near_ambient_s.unwrap_or(f64::NAN),
        path.display()
    )
}

/// Figure 5: print the PDN structure (element inventory).
pub fn fig5() -> String {
    let pdn = sprint_powergrid::grid::PdnParams::hpca();
    let built = pdn.build();
    format!(
        "Figure 5 — sprint power distribution network\n\
         cores: {}   nominal: {} V   per-core load: {} A\n\
         round-trip series resistance: {:.2} mΩ (expected IR droop {:.1} mV)\n\
         netlist: {} nodes, {} elements ({} current sources)\n",
        pdn.cores,
        pdn.nominal_v,
        pdn.core_current_a,
        pdn.round_trip_resistance_ohms() * 1e3,
        pdn.expected_ir_droop_v() * 1e3,
        built.circuit().node_count(),
        built.circuit().element_count(),
        built.circuit().isource_count(),
    )
}

/// Figure 6: activation schedules vs. supply integrity.
pub fn fig6(full_horizon: bool) -> String {
    let mut out =
        String::from("Figure 6 — supply voltage during core activation (2% tolerance at 1.2 V)\n");
    let mut table = TextTable::new();
    table.row(&[
        &"schedule",
        &"min V",
        &"% nominal",
        &"droop mV",
        &"settle us",
        &"verdict",
    ]);
    let horizon = if full_horizon { 2000e-6 } else { 320e-6 };
    for (name, schedule) in [
        ("abrupt", ActivationSchedule::Simultaneous),
        (
            "ramp-1.28us",
            ActivationSchedule::LinearRamp { total_s: 1.28e-6 },
        ),
        (
            "ramp-128us",
            ActivationSchedule::LinearRamp { total_s: 128e-6 },
        ),
    ] {
        let mut exp = ActivationExperiment::hpca(schedule);
        exp.horizon_s = horizon;
        let result = exp.run().expect("PDN must compile");
        let mut csv = Csv::new(
            &format!("fig6_{name}"),
            &["time_us", "supply_v", "min_supply_v", "load_a"],
        );
        for s in result.samples.iter().step_by(8) {
            csv.row(&[
                &format!("{:.3}", s.time_s * 1e6),
                &format!("{:.5}", s.supply_v),
                &format!("{:.5}", s.min_supply_v),
                &format!("{:.3}", s.load_a),
            ]);
        }
        let path = csv.finish();
        let r = &result.report;
        table.row(&[
            &name,
            &format!("{:.4}", r.min_v),
            &format!("{:.2}%", 100.0 * r.min_fraction_of_nominal()),
            &format!("{:.1}", r.droop_v() * 1e3),
            &format!("{:.2}", r.settle_time_s * 1e6),
            &(if r.violated { "VIOLATES" } else { "ok" }),
        ]);
        out.push_str(&format!("wrote {}\n", path.display()));
    }
    out.push_str(&table.render());
    out.push_str(
        "paper anchors: abrupt bounces to 1.171 V (97.5%) settling in 2.53 us;\n\
         1.28 us ramp still violates; 128 us ramp passes, settling ~10 mV low.\n",
    );
    out
}

/// Section 6 power-source feasibility table.
pub fn table_power() -> String {
    let mut out = String::from("Section 6 — power sources for a 16 W x 1 s sprint\n");
    let mut table = TextTable::new();
    table.row(&[
        &"source",
        &"max W",
        &"peak ok",
        &"energy ok",
        &"mass g",
        &"max cores",
    ]);
    let mut csv = Csv::new(
        "table_power",
        &[
            "source",
            "max_w",
            "covers_peak",
            "covers_energy",
            "mass_g",
            "max_cores",
        ],
    );
    for v in evaluate_sources(16.0, 1.0) {
        table.row(&[
            &v.source,
            &format!("{:.1}", v.max_power_w),
            &v.covers_peak,
            &v.covers_energy,
            &format!("{:.1}", v.mass_g),
            &v.max_sprint_cores,
        ]);
        csv.row(&[
            &v.source,
            &format!("{:.1}", v.max_power_w),
            &v.covers_peak,
            &v.covers_energy,
            &format!("{:.1}", v.mass_g),
            &v.max_sprint_cores,
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut pins = TextTable::new();
    pins.row(&[
        &"package",
        &"pins needed (16 A @ 1 V)",
        &"fraction of package",
    ]);
    for (name, needed, fraction) in evaluate_pins(16.0) {
        pins.row(&[&name, &needed, &format!("{:.0}%", fraction * 100.0)]);
    }
    out.push_str(&pins.render());
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

/// Ablation: PCM melting point vs. sprint capacity, TDP and cooldown.
pub fn ablation_tmelt() -> String {
    let mut out = String::from("Ablation — PCM melting point (140 mg, 16 W sprint, Tmax 70 C)\n");
    let mut table = TextTable::new();
    table.row(&[&"Tmelt", &"TDP W", &"sprint s", &"plateau s", &"cooldown s"]);
    let mut csv = Csv::new(
        "ablation_tmelt",
        &["tmelt_c", "tdp_w", "sprint_s", "plateau_s", "cooldown_s"],
    );
    for melt_c in [40.0, 50.0, 60.0, 65.0] {
        let mut params = PhoneThermalParams::hpca();
        params.pcm_material =
            Material::new(format!("pcm-{melt_c}"), 0.3, 1.0, 100.0, Some(melt_c), 5.0);
        let tdp = params.clone().build().tdp_w();
        let mut phone = params.build();
        let sprint = simulate_sprint(&mut phone, 16.0, 0.002, 10.0);
        let cooldown = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 300.0);
        let (s, p, c) = (
            sprint.duration_s.unwrap_or(f64::NAN),
            sprint.plateau_s().unwrap_or(f64::NAN),
            cooldown.t_near_ambient_s.unwrap_or(f64::NAN),
        );
        table.row(&[
            &format!("{melt_c:.0} C"),
            &format!("{tdp:.2}"),
            &format!("{s:.2}"),
            &format!("{p:.2}"),
            &format!("{c:.0}"),
        ]);
        csv.row(&[
            &melt_c,
            &format!("{tdp:.3}"),
            &format!("{s:.3}"),
            &format!("{p:.3}"),
            &format!("{c:.1}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "higher melting points trade sustained power (TDP) against cooldown speed\n\
         (hotter PCM rejects heat faster), matching the Section 4.5 discussion.\n",
    );
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

/// Ablation: solid metal heat storage vs. phase-change storage (§4.1/4.2).
pub fn ablation_metal() -> String {
    let mut out = String::from(
        "Ablation — heat storage media at equal package volume (2.3 mm over 64 mm2)\n",
    );
    let mut table = TextTable::new();
    table.row(&[
        &"medium",
        &"mass g",
        &"capacity J",
        &"sprint s",
        &"pre-heated sprint s",
    ]);
    let volume_cm3 = 0.1472; // 2.3 mm x 64 mm^2
    let cases = [
        ("copper", Material::copper()),
        ("aluminum", Material::aluminum()),
        ("reference-pcm", Material::reference_pcm()),
    ];
    let mut csv = Csv::new(
        "ablation_metal",
        &[
            "medium",
            "mass_g",
            "capacity_j",
            "sprint_s",
            "preheated_sprint_s",
        ],
    );
    for (name, material) in cases {
        let mass = material.density_g_per_cm3() * volume_cm3;
        let capacity =
            material.block_latent_heat_j(mass) + material.block_heat_capacity_j_per_k(mass) * 10.0;
        let mut params = PhoneThermalParams::hpca();
        params.pcm_material = material.clone();
        params.pcm_mass_g = mass;
        // Cold-start sprint.
        let mut phone = params.clone().build();
        let cold = simulate_sprint(&mut phone, 16.0, 0.002, 20.0)
            .duration_s
            .unwrap_or(f64::NAN);
        // Sprint after sustained operation: the drawback the paper notes
        // for metals — the block is already warm, shrinking headroom.
        let mut warm_phone = params.build();
        warm_phone.set_chip_power_w(1.0);
        warm_phone.advance(600.0);
        let warm = simulate_sprint(&mut warm_phone, 16.0, 0.002, 20.0)
            .duration_s
            .unwrap_or(f64::NAN);
        table.row(&[
            &name,
            &format!("{mass:.2}"),
            &format!("{capacity:.1}"),
            &format!("{cold:.2}"),
            &format!("{warm:.2}"),
        ]);
        csv.row(&[
            &name,
            &format!("{mass:.3}"),
            &format!("{capacity:.2}"),
            &format!("{cold:.3}"),
            &format!("{warm:.3}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "the PCM's latent heat packs far more sprint capacity into the same volume,\n\
         and melting-point storage is immune to pre-heating from sustained load.\n",
    );
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_mentions_all_models() {
        std::env::set_var(
            "SPRINT_RESULTS_DIR",
            std::env::temp_dir().join("sprint-bench-t1"),
        );
        let s = fig1();
        for m in ScalingModel::ALL {
            assert!(s.contains(m.label()));
        }
    }

    #[test]
    fn fig5_reports_structure() {
        let s = fig5();
        assert!(s.contains("cores: 16"));
    }

    #[test]
    fn power_table_flags_li_ion() {
        std::env::set_var(
            "SPRINT_RESULTS_DIR",
            std::env::temp_dir().join("sprint-bench-t2"),
        );
        let s = table_power();
        assert!(s.contains("phone-li-ion"));
        assert!(
            s.contains("false"),
            "the phone cell must fail the peak check"
        );
    }
}
