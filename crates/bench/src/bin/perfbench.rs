//! `perfbench` — the grid-solver performance harness.
//!
//! Times the explicit and ADI solvers through one sprint-and-rest cycle
//! across grid resolutions, plus two rack-scale points — the thermal
//! `rack_case` and the power-aware scheduler loop (`rack_power_case`:
//! shared-supply settlement, regulator math and joint thermal+power
//! admission on the 16-node rack) — prints the comparison table, and
//! writes `BENCH_grid.json` at the repository root (override the
//! location with `SPRINT_BENCH_OUT`).
//!
//! Usage:
//! ```text
//! perfbench [--quick] [--full] [--check]
//! ```
//!
//! * `--quick` — the CI pair (8x8 and 32x32) only.
//! * `--full`  — adds the 64x64 rack-scale preview (explicit there is
//!   minutes of wall-clock; that cost is the figure's point).
//! * `--check` — perf-smoke gate: exit non-zero unless the 32x32 case
//!   shows ADI at least 5x faster than explicit at matched accuracy
//!   (max junction deviation below 0.1 K).

use sprint_bench::figs_perf;

/// The `--check` gate: minimum acceptable 32x32 speedup. The committed
/// baseline sits well above this; 5x leaves headroom for noisy CI
/// runners while still catching a regression that re-couples the ADI
/// sub-step to the cell time constant.
const CHECK_MIN_SPEEDUP: f64 = 5.0;
/// The `--check` gate: matched-accuracy bar, Kelvin.
const CHECK_MAX_DEV_K: f64 = 0.1;

fn main() {
    let mut quick = false;
    let mut full = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--check" => check = true,
            other => {
                eprintln!("unknown flag {other}; usage: perfbench [--quick] [--full] [--check]");
                std::process::exit(2);
            }
        }
    }
    let (cases, report) = figs_perf::fig_perf_cases(quick, full);
    print!("{report}");
    if check {
        // Judge this run's in-memory measurement, never whatever
        // BENCH_grid.json happened to be on disk (a failed write must
        // not let the gate pass on a stale committed baseline).
        let case32 = cases
            .iter()
            .find(|c| c.n == 32)
            .expect("--check needs the 32x32 case in the sweep");
        println!(
            "perf-smoke gate: 32x32 speedup {:.1}x (need >= {CHECK_MIN_SPEEDUP}x), \
             max dev {:.4} K (need < {CHECK_MAX_DEV_K} K)",
            case32.speedup, case32.max_dev_k
        );
        if case32.speedup < CHECK_MIN_SPEEDUP || case32.max_dev_k >= CHECK_MAX_DEV_K {
            eprintln!("perf-smoke gate FAILED");
            std::process::exit(1);
        }
        println!("perf-smoke gate passed");
    }
}
