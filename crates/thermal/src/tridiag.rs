//! Thomas-algorithm solver for tridiagonal linear systems.
//!
//! The ADI grid solver ([`crate::grid`]) reduces each implicit sweep to
//! one tridiagonal system per grid line (a row, a column, or a vertical
//! layer stack), solved in O(n) time and O(n) scratch. A dense
//! factorization such as `powergrid::linalg::LuFactor` is the wrong tool
//! here on every axis: it stores the full `n x n` matrix (the ADI
//! systems are three-diagonal, everything else is structurally zero),
//! factors in O(n^3), and must refactor whenever a coefficient changes —
//! but the ADI coefficients change *every sub-step* (the PCM phase-state
//! linearization moves cells between sensible and plateau rows), so
//! nothing would ever amortize. Thomas is the textbook O(n) elimination
//! specialized to this band structure, and [`Tridiag`] keeps its two
//! scratch vectors alive across calls so the per-line solve allocates
//! nothing.
//!
//! No pivoting is performed; the caller must supply a system with
//! non-vanishing pivots. Diagonally dominant systems (every implicit
//! heat-conduction step produces one: `diag = C + dt * sum(G)` against
//! off-diagonals `-dt * G`) are always safe.
//!
//! When the *matrix* is reused across many right-hand sides — the ADI
//! sweeps of a PCM-free layer solve the identical system for every grid
//! line of every sub-step, because only melting-plateau rows ever change
//! a coefficient — [`TridiagFactor`] precomputes the forward-elimination
//! multipliers once and replays them per solve, eliminating the per-row
//! division. Its solutions are bit-identical to [`Tridiag::solve`] on
//! the same system (the arithmetic is the same, in the same order), so
//! switching between the two paths cannot perturb a trace.

/// A reusable Thomas solver. Holds the forward-elimination scratch so
/// repeated solves (one per grid line per sweep) allocate nothing after
/// the first call at a given size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tridiag {
    /// Modified super-diagonal coefficients.
    cp: Vec<f64>,
    /// Modified right-hand side.
    dp: Vec<f64>,
}

impl Tridiag {
    /// Creates a solver with no pre-reserved scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with scratch pre-reserved for systems up to
    /// `n` unknowns.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            cp: Vec::with_capacity(n),
            dp: Vec::with_capacity(n),
        }
    }

    /// Solves the tridiagonal system `A x = rhs` into `x`.
    ///
    /// Row `i` of `A` is `sub[i] * x[i-1] + diag[i] * x[i] + sup[i] *
    /// x[i+1] = rhs[i]`; `sub[0]` and `sup[n-1]` are ignored. All slices
    /// must have the same non-zero length. The inputs are not modified,
    /// so a caller may keep constant coefficient arrays across lines.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ or the system is empty.
    /// Numerical validity (non-vanishing pivots) is the caller's
    /// contract; a zero pivot yields non-finite output rather than a
    /// panic.
    pub fn solve(&mut self, sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64], x: &mut [f64]) {
        let n = diag.len();
        assert!(n > 0, "empty tridiagonal system");
        assert!(
            sub.len() == n && sup.len() == n && rhs.len() == n && x.len() == n,
            "tridiagonal slice lengths must match"
        );
        self.cp.clear();
        self.cp.resize(n, 0.0);
        self.dp.clear();
        self.dp.resize(n, 0.0);
        let m0 = 1.0 / diag[0];
        self.cp[0] = sup[0] * m0;
        self.dp[0] = rhs[0] * m0;
        for i in 1..n {
            // One reciprocal per row: the two eliminations share it.
            let m = 1.0 / (diag[i] - sub[i] * self.cp[i - 1]);
            self.cp[i] = sup[i] * m;
            self.dp[i] = (rhs[i] - sub[i] * self.dp[i - 1]) * m;
        }
        x[n - 1] = self.dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = self.dp[i] - self.cp[i] * x[i + 1];
        }
    }

    /// Solves `lanes` independent tridiagonal systems in one interleaved
    /// pass, each with its *own* coefficients. Every array is a
    /// transposed (structure-of-arrays) plane: row `i` of lane `j` lives
    /// at index `i * lanes + j`, so the inner loops stream over unit
    /// stride and the auto-vectorizer can chew whole `f64` lanes at
    /// once. Lane `j` performs exactly the operations of [`Self::solve`]
    /// on its gathered line, in the same order — the batching only
    /// changes which lane runs next, never the arithmetic within a lane
    /// — so each lane's solution is bit-identical to the per-line call.
    ///
    /// This is the general-coefficient batch the ADI sweeps of a PCM
    /// layer need: melting-plateau cells become per-lane Dirichlet rows
    /// (`diag 1`, zero couplings), which is just another coefficient
    /// pattern here.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, the slice lengths differ, or they are
    /// not a multiple of `lanes`.
    pub fn solve_batch(
        &mut self,
        sub: &[f64],
        diag: &[f64],
        sup: &[f64],
        rhs: &[f64],
        x: &mut [f64],
        lanes: usize,
    ) {
        assert!(lanes > 0, "batched solve needs at least one lane");
        let total = diag.len();
        assert!(
            total.is_multiple_of(lanes) && total > 0,
            "batched slice lengths must be a non-zero multiple of the lane count"
        );
        let n = total / lanes;
        assert!(
            sub.len() == total && sup.len() == total && rhs.len() == total && x.len() == total,
            "tridiagonal slice lengths must match"
        );
        self.cp.clear();
        self.cp.resize(total, 0.0);
        self.dp.clear();
        self.dp.resize(total, 0.0);
        for j in 0..lanes {
            let m0 = 1.0 / diag[j];
            self.cp[j] = sup[j] * m0;
            self.dp[j] = rhs[j] * m0;
        }
        for i in 1..n {
            let row = i * lanes;
            for j in 0..lanes {
                let m = 1.0 / (diag[row + j] - sub[row + j] * self.cp[row - lanes + j]);
                self.cp[row + j] = sup[row + j] * m;
                self.dp[row + j] = (rhs[row + j] - sub[row + j] * self.dp[row - lanes + j]) * m;
            }
        }
        let last = (n - 1) * lanes;
        x[last..last + lanes].copy_from_slice(&self.dp[last..last + lanes]);
        for i in (0..n - 1).rev() {
            let row = i * lanes;
            for j in 0..lanes {
                x[row + j] = self.dp[row + j] - self.cp[row + j] * x[row + lanes + j];
            }
        }
    }
}

/// A prefactored tridiagonal matrix: the Thomas forward-elimination
/// state (`1/pivot` reciprocals and modified super-diagonal) captured
/// once, replayed against any number of right-hand sides.
///
/// Solutions are bit-identical to [`Tridiag::solve`] on the same
/// coefficients — same operations, same order — with the per-row
/// division amortized into construction.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TridiagFactor {
    /// Sub-diagonal (needed to eliminate each rhs).
    sub: Vec<f64>,
    /// Modified super-diagonal coefficients (`cp` of the Thomas pass).
    cp: Vec<f64>,
    /// Pivot reciprocals, one per row.
    m: Vec<f64>,
}

impl TridiagFactor {
    /// Factors the system once. Slice conventions (and the pivot
    /// contract) match [`Tridiag::solve`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ or the system is empty.
    pub fn new(sub: &[f64], diag: &[f64], sup: &[f64]) -> Self {
        let n = diag.len();
        assert!(n > 0, "empty tridiagonal system");
        assert!(
            sub.len() == n && sup.len() == n,
            "tridiagonal slice lengths must match"
        );
        let mut cp = vec![0.0; n];
        let mut m = vec![0.0; n];
        m[0] = 1.0 / diag[0];
        cp[0] = sup[0] * m[0];
        for i in 1..n {
            m[i] = 1.0 / (diag[i] - sub[i] * cp[i - 1]);
            cp[i] = sup[i] * m[i];
        }
        Self {
            sub: sub.to_vec(),
            cp,
            m,
        }
    }

    /// Number of unknowns the factorization was built for.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// True for a zero-unknown factorization (never constructible via
    /// [`Self::new`], which rejects empty systems).
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Solves `A x = rhs` for the prefactored `A`. The forward pass
    /// runs in `x` itself, so no scratch is needed.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` or `x` disagree with the factored size.
    pub fn solve(&self, rhs: &[f64], x: &mut [f64]) {
        let n = self.m.len();
        assert!(
            rhs.len() == n && x.len() == n,
            "tridiagonal slice lengths must match"
        );
        x[0] = rhs[0] * self.m[0];
        for i in 1..n {
            x[i] = (rhs[i] - self.sub[i] * x[i - 1]) * self.m[i];
        }
        for i in (0..n - 1).rev() {
            x[i] -= self.cp[i] * x[i + 1];
        }
    }

    /// Solves `width` independent systems sharing this factorization in
    /// one interleaved pass: lane `j` of system row `i` lives at
    /// `rhs[i * width + j]` (and likewise in `x`). Each lane performs
    /// exactly the operations of [`Self::solve`] in the same order, so
    /// lane `j`'s solution is bit-identical to a per-lane `solve` on the
    /// strided gather — the batching only changes which *lane* runs
    /// next, never the arithmetic within a lane. The ADI grid sweeps use
    /// this to walk column and stack systems plane-by-plane with unit
    /// stride instead of line-by-line with grid stride.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the slices are not `len() * width`.
    pub fn solve_planar(&self, rhs: &[f64], x: &mut [f64], width: usize) {
        let n = self.m.len();
        assert!(width > 0, "planar solve needs at least one lane");
        assert!(
            rhs.len() == n * width && x.len() == n * width,
            "tridiagonal slice lengths must match"
        );
        let m0 = self.m[0];
        for j in 0..width {
            x[j] = rhs[j] * m0;
        }
        for i in 1..n {
            let mi = self.m[i];
            let si = self.sub[i];
            let row = i * width;
            for j in 0..width {
                x[row + j] = (rhs[row + j] - si * x[row - width + j]) * mi;
            }
        }
        for i in (0..n - 1).rev() {
            let ci = self.cp[i];
            let row = i * width;
            for j in 0..width {
                x[row + j] -= ci * x[row + width + j];
            }
        }
    }

    /// Solves a bundle of *contiguous* lines sharing this factorization:
    /// `rhs` holds `count = rhs.len() / len()` whole lines back to back
    /// (line `j` at `rhs[j * len() ..][.. len()]`), the layout ADI row
    /// sweeps produce naturally. The bundle is staged through `scratch`
    /// into the transposed (structure-of-arrays) layout, swept with
    /// [`Self::solve_planar`] — whose unit-stride inner loops the
    /// auto-vectorizer turns into whole-`f64`-lane arithmetic — and
    /// transposed back. The transposes move data without touching it,
    /// and each planar lane is bit-identical to [`Self::solve`], so
    /// line `j`'s solution matches a per-line `solve` bit for bit.
    ///
    /// `scratch` is resized as needed and holds no state between calls;
    /// keep one per caller (or per worker thread) to amortize the
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` and `x` differ in length, or their length is not
    /// a non-zero multiple of the factored size.
    pub fn solve_batch(&self, rhs: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        let n = self.m.len();
        assert!(
            rhs.len() == x.len() && !rhs.is_empty() && rhs.len().is_multiple_of(n),
            "batched slice lengths must be a non-zero multiple of the factored size"
        );
        let count = rhs.len() / n;
        scratch.clear();
        scratch.resize(2 * n * count, 0.0);
        let (staged, solved) = scratch.split_at_mut(n * count);
        for j in 0..count {
            let line = &rhs[j * n..(j + 1) * n];
            for (i, &v) in line.iter().enumerate() {
                staged[i * count + j] = v;
            }
        }
        self.solve_planar(staged, solved, count);
        for j in 0..count {
            let line = &mut x[j * n..(j + 1) * n];
            for (i, out) in line.iter_mut().enumerate() {
                *out = solved[i * count + j];
            }
        }
    }

    /// The factorization's raw parts `(sub, cp, m)` — the sub-diagonal,
    /// modified super-diagonal and pivot reciprocals — for callers that
    /// replay the [`Self::solve_planar`] recurrences over a *subrange*
    /// of lanes (the threaded ADI sweeps partition a planar solve by
    /// lane ranges; each lane's arithmetic is unchanged, so the split is
    /// bit-identical to the whole-plane call).
    pub(crate) fn parts(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.sub, &self.cp, &self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `A x` for a tridiagonal `A` given as (sub, diag, sup).
    fn apply(sub: &[f64], diag: &[f64], sup: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        (0..n)
            .map(|i| {
                let mut v = diag[i] * x[i];
                if i > 0 {
                    v += sub[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += sup[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    #[test]
    fn solves_a_scalar_system() {
        let mut t = Tridiag::new();
        let mut x = [0.0];
        t.solve(&[0.0], &[4.0], &[0.0], &[8.0], &mut x);
        assert!((x[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn solves_a_known_3x3_system() {
        // [ 2 -1  0 ] [x0]   [1]
        // [-1  2 -1 ] [x1] = [0]   => x = [3/4, 1/2, 1/4]
        // [ 0 -1  2 ] [x2]   [0]
        let mut t = Tridiag::new();
        let mut x = [0.0; 3];
        t.solve(
            &[0.0, -1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0, 0.0],
            &[1.0, 0.0, 0.0],
            &mut x,
        );
        for (got, want) in x.iter().zip([0.75, 0.5, 0.25]) {
            assert!((got - want).abs() < 1e-14, "got {x:?}");
        }
    }

    #[test]
    fn dirichlet_rows_pass_through() {
        // A "plateau" row (diag 1, zero couplings) must return its rhs
        // exactly, while neighbours still feel its fixed value.
        let n = 5;
        let sub = vec![-0.3; n];
        let mut diag = vec![2.0; n];
        let mut sup = vec![-0.3; n];
        let mut rhs = vec![1.0; n];
        diag[2] = 1.0;
        sup[2] = 0.0;
        rhs[2] = 42.0;
        let mut sub2 = sub.clone();
        sub2[2] = 0.0;
        let mut x = vec![0.0; n];
        Tridiag::new().solve(&sub2, &diag, &sup, &rhs, &mut x);
        assert!((x[2] - 42.0).abs() < 1e-12);
        let back = apply(&sub2, &diag, &sup, &x);
        for (got, want) in back.iter().zip(rhs.iter()) {
            assert!((got - want).abs() < 1e-10, "residual too large: {back:?}");
        }
    }

    #[test]
    fn random_diagonally_dominant_systems_round_trip() {
        // Deterministic LCG coefficients: no external PRNG needed, and
        // the residual check catches any indexing slip.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let mut solver = Tridiag::with_capacity(33);
        for n in 1..=33usize {
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            let mut rhs = vec![0.0; n];
            for i in 0..n {
                if i > 0 {
                    sub[i] = next();
                }
                if i + 1 < n {
                    sup[i] = next();
                }
                // Strict dominance keeps the pivots healthy.
                diag[i] = 2.5 + next().abs() + sub[i].abs() + sup[i].abs();
                rhs[i] = 10.0 * next();
            }
            let mut x = vec![0.0; n];
            solver.solve(&sub, &diag, &sup, &rhs, &mut x);
            let back = apply(&sub, &diag, &sup, &x);
            for i in 0..n {
                assert!(
                    (back[i] - rhs[i]).abs() < 1e-9,
                    "n={n} row {i}: residual {}",
                    back[i] - rhs[i]
                );
            }
        }
    }

    #[test]
    fn factored_solve_is_bit_identical_to_direct() {
        // The ADI cache swaps `Tridiag::solve` for a prefactored replay;
        // the swap must not move a single bit, or cached and uncached
        // sweeps would diverge.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let mut solver = Tridiag::new();
        for n in [1usize, 2, 3, 8, 33] {
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            for i in 0..n {
                if i > 0 {
                    sub[i] = next();
                }
                if i + 1 < n {
                    sup[i] = next();
                }
                diag[i] = 2.5 + next().abs() + sub[i].abs() + sup[i].abs();
            }
            let factor = TridiagFactor::new(&sub, &diag, &sup);
            assert_eq!(factor.len(), n);
            for _ in 0..3 {
                let rhs: Vec<f64> = (0..n).map(|_| 10.0 * next()).collect();
                let mut x_direct = vec![0.0; n];
                let mut x_factored = vec![0.0; n];
                solver.solve(&sub, &diag, &sup, &rhs, &mut x_direct);
                factor.solve(&rhs, &mut x_factored);
                for i in 0..n {
                    assert_eq!(
                        x_direct[i].to_bits(),
                        x_factored[i].to_bits(),
                        "n={n} row {i}: {} vs {}",
                        x_direct[i],
                        x_factored[i]
                    );
                }
            }
        }
    }

    #[test]
    fn planar_solve_is_bit_identical_per_lane() {
        // The batched ADI sweeps rely on every lane of `solve_planar`
        // matching a strided per-line `solve` bit-for-bit.
        let mut state = 0x853c_49e6_748f_ea9b_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        for (n, width) in [(1usize, 3usize), (2, 1), (5, 4), (16, 16)] {
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            for i in 0..n {
                if i > 0 {
                    sub[i] = next();
                }
                if i + 1 < n {
                    sup[i] = next();
                }
                diag[i] = 2.5 + next().abs() + sub[i].abs() + sup[i].abs();
            }
            let factor = TridiagFactor::new(&sub, &diag, &sup);
            let rhs: Vec<f64> = (0..n * width).map(|_| 10.0 * next()).collect();
            let mut x_planar = vec![0.0; n * width];
            factor.solve_planar(&rhs, &mut x_planar, width);
            for lane in 0..width {
                let lane_rhs: Vec<f64> = (0..n).map(|i| rhs[i * width + lane]).collect();
                let mut lane_x = vec![0.0; n];
                factor.solve(&lane_rhs, &mut lane_x);
                for i in 0..n {
                    assert_eq!(
                        lane_x[i].to_bits(),
                        x_planar[i * width + lane].to_bits(),
                        "n={n} width={width} lane={lane} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_factor_solve_is_bit_identical_per_line() {
        // `solve_batch` stages contiguous lines through the transposed
        // layout; every line must come back bit-identical to a per-line
        // `solve`, or the batched ADI row sweeps would perturb traces.
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let mut scratch = Vec::new();
        for (n, count) in [(1usize, 4usize), (3, 1), (8, 5), (16, 16), (33, 7)] {
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            for i in 0..n {
                if i > 0 {
                    sub[i] = next();
                }
                if i + 1 < n {
                    sup[i] = next();
                }
                diag[i] = 2.5 + next().abs() + sub[i].abs() + sup[i].abs();
            }
            let factor = TridiagFactor::new(&sub, &diag, &sup);
            let rhs: Vec<f64> = (0..n * count).map(|_| 10.0 * next()).collect();
            let mut x_batch = vec![0.0; n * count];
            factor.solve_batch(&rhs, &mut x_batch, &mut scratch);
            for line in 0..count {
                let mut x_line = vec![0.0; n];
                factor.solve(&rhs[line * n..(line + 1) * n], &mut x_line);
                for i in 0..n {
                    assert_eq!(
                        x_line[i].to_bits(),
                        x_batch[line * n + i].to_bits(),
                        "n={n} count={count} line={line} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_general_solve_is_bit_identical_per_lane() {
        // The general batch carries per-lane coefficients (the PCM path:
        // melting-plateau cells become Dirichlet rows in *some* lanes);
        // every lane must match a per-line `solve` bit for bit.
        let mut state = 0xfeed_face_cafe_beef_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let mut solver = Tridiag::new();
        let mut batch = Tridiag::new();
        for (n, lanes) in [(1usize, 3usize), (4, 1), (8, 8), (16, 5)] {
            let total = n * lanes;
            let mut sub = vec![0.0; total];
            let mut diag = vec![0.0; total];
            let mut sup = vec![0.0; total];
            let mut rhs = vec![0.0; total];
            for j in 0..lanes {
                for i in 0..n {
                    let k = i * lanes + j;
                    if i > 0 {
                        sub[k] = next();
                    }
                    if i + 1 < n {
                        sup[k] = next();
                    }
                    diag[k] = 2.5 + next().abs() + sub[k].abs() + sup[k].abs();
                    rhs[k] = 10.0 * next();
                }
                // Sprinkle Dirichlet (plateau) rows into odd lanes, the
                // exact pattern the linearized PCM sweeps produce.
                if j % 2 == 1 && n > 2 {
                    let k = (n / 2) * lanes + j;
                    sub[k] = 0.0;
                    diag[k] = 1.0;
                    sup[k] = 0.0;
                    rhs[k] = 0.0;
                }
            }
            let mut x_batch = vec![0.0; total];
            batch.solve_batch(&sub, &diag, &sup, &rhs, &mut x_batch, lanes);
            for j in 0..lanes {
                let gather =
                    |plane: &[f64]| -> Vec<f64> { (0..n).map(|i| plane[i * lanes + j]).collect() };
                let (s, d, u, r) = (gather(&sub), gather(&diag), gather(&sup), gather(&rhs));
                let mut x_line = vec![0.0; n];
                solver.solve(&s, &d, &u, &r, &mut x_line);
                for i in 0..n {
                    assert_eq!(
                        x_line[i].to_bits(),
                        x_batch[i * lanes + j].to_bits(),
                        "n={n} lanes={lanes} lane={j} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty tridiagonal system")]
    fn empty_system_rejected() {
        Tridiag::new().solve(&[], &[], &[], &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "slice lengths must match")]
    fn mismatched_lengths_rejected() {
        let mut x = [0.0; 2];
        Tridiag::new().solve(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0], &mut x);
    }
}
