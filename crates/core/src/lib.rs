//! Computational sprinting: the paper's primary contribution.
//!
//! This crate implements the sprint *mechanism* of Raghavan et al.'s
//! *Computational Sprinting* (HPCA 2012): briefly exceeding a mobile
//! chip's sustainable thermal budget by an order of magnitude — activating
//! up to 16 otherwise-dark cores — to compress a burst of computation,
//! then migrating back to a single core to cool down.
//!
//! The pieces map onto the paper's design, now behind a backend-generic
//! session API:
//!
//! * [`thermal_model::ThermalModel`] — the thermal-backend *port*; the
//!   paper's phone package ([`sprint_thermal::phone::PhoneThermal`])
//!   implements it, as does the single-node
//!   [`thermal_model::LumpedThermal`] reference backend. Blanket impls
//!   for `&mut T` and `Box<T>` mean a session need not own its backend:
//!   it can borrow one, erase one, or (via a view type like
//!   `sprint-cluster`'s per-node rack views) share one with many other
//!   sessions.
//! * [`supply::PowerSupply`] — the electrical side (Section 6)
//!   consulted every sampling window; batteries, ultracapacitors,
//!   hybrids, pin-count ceilings and lossy [`supply::Regulator`]
//!   conversion stages can clamp or abort a sprint. Like the thermal
//!   port, it carries blanket `&mut S`/`Box<S>` impls, so a session can
//!   borrow, erase, or (via `sprint-cluster`'s per-node rack supply
//!   views) share its supply.
//! * [`fault::FaultPlan`] and the fault ports [`fault::FaultSensor`] /
//!   [`fault::FaultSupply`] — seeded, deterministic fault injection
//!   composed over the thermal and supply ports: sensor stuck-at /
//!   bias / dropout, supply collapse / brownout / death, node
//!   crash/recovery. Healthy wrappers are bit-identical passthroughs,
//!   so fault tolerance never costs the determinism contract.
//! * [`budget::ThermalBudget`] — the activity-based estimator that
//!   integrates dissipated energy against the package's joule capacity.
//! * [`controller::SprintController`] — activation ramp, sprint
//!   termination (thread migration to one core) and the hardware
//!   frequency-throttle failsafe.
//! * [`session::SprintSession`] — the steppable architecture ⇄ thermal ⇄
//!   power-delivery co-simulation (energy sampled every 1000 cycles,
//!   exactly as in Section 8.1), composed via
//!   [`session::ScenarioBuilder`].
//! * [`system::SprintSystem`] — the original one-shot facade, kept as a
//!   thin wrapper over the session.
//! * [`config::SprintConfig`] — the paper's three configurations:
//!   sustained, 16-core parallel sprint, and idealized DVFS sprint.
//!
//! # Quick start
//!
//! ```
//! use sprint_archsim::{MachineConfig, SyntheticKernel};
//! use sprint_core::config::SprintConfig;
//! use sprint_core::session::ScenarioBuilder;
//! use sprint_thermal::phone::PhoneThermalParams;
//!
//! // 16 threads of bursty work on a 16-core chip, under the paper's
//! // flagship sprint configuration. The thermal model is compressed
//! // 1000x so this doc-test runs instantly.
//! let mut session = ScenarioBuilder::new()
//!     .machine(MachineConfig::hpca())
//!     .load(|m| {
//!         for t in 0..16u64 {
//!             m.spawn(Box::new(SyntheticKernel::new(32, 5_000, (t + 1) << 26, 0)));
//!         }
//!     })
//!     .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
//!     .config(SprintConfig::hpca_parallel())
//!     .build();
//! session.run_to_completion();
//! let report = session.report();
//! assert!(report.finished);
//! ```
//!
//! Electrically-limited scenarios plug a supply into the same builder:
//!
//! ```
//! use sprint_archsim::{MachineConfig, SyntheticKernel};
//! use sprint_core::session::ScenarioBuilder;
//! use sprint_core::ControllerEvent;
//! use sprint_powersource::Battery;
//! use sprint_thermal::phone::PhoneThermalParams;
//!
//! // A phone Li-ion cell cannot feed a 16 W sprint (Section 6): the
//! // sprint aborts on the first full-width window and the work finishes
//! // on one core.
//! let mut session = ScenarioBuilder::new()
//!     .load(|m| {
//!         for t in 0..16u64 {
//!             m.spawn(Box::new(SyntheticKernel::new(32, 5_000, (t + 1) << 26, 0)));
//!         }
//!     })
//!     .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
//!     .supply(Battery::phone_li_ion())
//!     .build();
//! session.run_to_completion();
//! assert!(session
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e, ControllerEvent::SupplyLimited { .. })));
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod conceptual;
pub mod config;
pub mod controller;
pub mod fault;
pub mod metrics;
pub mod session;
pub mod supply;
pub mod system;
pub mod thermal_model;

pub use budget::ThermalBudget;
pub use config::{
    AbortPolicy, BudgetEstimator, ExecutionMode, HotspotPolicy, PacingPolicy, SprintConfig,
    SupplyPolicy,
};
pub use controller::{ControllerEvent, SprintController, SprintState};
pub use fault::{
    FaultEvent, FaultKind, FaultPlan, FaultRates, FaultResponse, FaultSensor, FaultState,
    FaultSupply, SensorFault, SupplyFault,
};
pub use metrics::{arithmetic_mean, geometric_mean, Comparison};
pub use session::{
    RunReport, RunSample, ScenarioBuilder, SessionObserver, SprintSession, StepOutcome,
};
pub use supply::{EfficiencyCurve, IdealSupply, PinLimited, PowerSupply, Regulator};
pub use system::SprintSystem;
pub use thermal_model::{LumpedThermal, ThermalModel};
