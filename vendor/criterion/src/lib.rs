//! Offline stand-in for `criterion`, covering the API the workspace's
//! benches use: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — median of wall-clock samples,
//! printed to stdout — but the bench targets compile and run under
//! `cargo bench` exactly as they would against the real crate.

use std::time::Instant;

/// Top-level bench driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Timing loop handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times one invocation of `routine` per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.samples_ns.push(start.elapsed().as_nanos());
    }
}

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples_ns.sort_unstable();
    let median_ns = b
        .samples_ns
        .get(b.samples_ns.len() / 2)
        .copied()
        .unwrap_or(0);
    println!("bench {id:<50} median {:>12.3} ms", median_ns as f64 / 1e6);
}

/// Bundles bench functions into a named runner, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
        c.bench_function("flat", |b| b.iter(|| 40 + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_api_runs() {
        benches();
    }
}
