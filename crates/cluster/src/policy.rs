//! Cluster-level sprint admission and shed-order policies.
//!
//! [`HotspotPolicy::ShedCores`] (in `sprint-core`) answers *how many*
//! cores may keep sprinting as headroom shrinks. At rack scale the
//! question generalizes: not just how many *nodes* may sprint, but
//! *which ones* — admission picks who starts, and the shed order picks
//! who is demoted first when shared headroom runs out. [`ClusterPolicy`]
//! bundles the three decisions:
//!
//! * **admission** — may this task sprint on this node right now?
//! * **allowance** — how many nodes may sprint at the current
//!   rack-global headroom (the [`HotspotPolicy::ShedCores`] linear ramp,
//!   lifted from cores to nodes)?
//! * **shed order** — when the sprinting population exceeds the
//!   allowance, in what order are nodes preempted?
//!
//! [`HotspotPolicy::ShedCores`]: sprint_core::config::HotspotPolicy

use serde::{Deserialize, Serialize};

/// How cluster admission treats the shared electrical pool
/// (`RackSupply`) — the power axis of the joint thermal-and-power
/// admission decision. Orthogonal to [`ClusterPolicy`], which keeps
/// answering the thermal questions: a sprint must clear *both* gates,
/// and a task denied on either axis defers under the same
/// sprint-or-defer machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// Power-oblivious admission (the pre-supply behaviour): sprints
    /// are granted on thermal headroom alone, the bus overdraws, the
    /// reserve drains, and brownouts end sprints mid-flight — the
    /// electrical analogue of the unmanaged rack's thermal collapse.
    Oblivious,
    /// Power-aware rationing: a sprint is admitted only when the feed's
    /// *provisioned* draw — every sprinting node booked at
    /// `sprint_draw_w`, everyone else at live telemetry — leaves room
    /// for one more `sprint_draw_w` under the rack cap, so the reserve
    /// is never spent on scheduled load. The shed pass gains a power
    /// emergency: when the reserve falls below `shed_reserve_fraction`
    /// while the bus is overdrawn, sprinting nodes are preempted
    /// largest-draw-first until demand fits the cap again.
    Rationed {
        /// Provisioned upstream draw booked per sprinting node, watts
        /// (size it at or above the regulated sprint draw; the demo
        /// rack's 16 W sprint regulates to ~17.7 W upstream).
        sprint_draw_w: f64,
        /// Reserve fill fraction below which the power-emergency shed
        /// engages (the admission gate should keep it from ever
        /// tripping; it is the backstop against provisioning error).
        shed_reserve_fraction: f64,
    },
}

impl PowerPolicy {
    /// A reasonable rationing default for the `RackSupplyParams::rack`
    /// preset: books 18 W per sprint (just above the ~17.7 W regulated
    /// draw) and sheds if the reserve ever drops below half.
    pub fn rationed_default() -> Self {
        PowerPolicy::Rationed {
            sprint_draw_w: 18.0,
            shed_reserve_fraction: 0.5,
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive provisioned draw or a shed fraction
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        if let PowerPolicy::Rationed {
            sprint_draw_w,
            shed_reserve_fraction,
        } = self
        {
            assert!(
                sprint_draw_w.is_finite() && *sprint_draw_w > 0.0,
                "provisioned sprint draw must be positive"
            );
            assert!(
                (0.0..=1.0).contains(shed_reserve_fraction),
                "shed reserve fraction must be in [0, 1]"
            );
        }
    }

    /// True when this policy consults the pool at all.
    pub fn is_rationed(&self) -> bool {
        matches!(self, PowerPolicy::Rationed { .. })
    }
}

/// A cluster sprint-admission policy. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterPolicy {
    /// Baseline: no task ever sprints; every node runs sustained.
    NoSprint,
    /// Unmanaged: every task sprints, nothing is ever shed — the
    /// "furious" regime whose thermal collapse motivates admission
    /// control (Porto et al.).
    AllSprint,
    /// Greedy headroom admission with *sprint-or-defer* semantics: a
    /// task sprints only if its node has at least `admit_headroom_k` of
    /// local headroom and the rack-wide allowance is not yet full.
    /// A task that cannot be admitted **waits in the queue** for
    /// headroom (up to `defer_s` from its arrival) rather than burning
    /// an order of magnitude longer in sustained mode — the scheduler
    /// trades a short queueing delay for a full-budget sprint, which is
    /// what makes rationing beat unmanaged sprinting. Tasks are placed
    /// coolest-node-first, and nodes are shed hottest-first as rack
    /// headroom shrinks below `shed_headroom_k`.
    GreedyHeadroom {
        /// Minimum node-local headroom (Kelvin) to admit a sprint.
        admit_headroom_k: f64,
        /// Rack-global headroom (Kelvin) at which shedding begins; the
        /// allowance ramps linearly from every node down to
        /// `min_sprinting` at zero headroom.
        shed_headroom_k: f64,
        /// Floor on the sprinting-node allowance.
        min_sprinting: usize,
        /// Longest a task may wait for admission, seconds; after this
        /// it runs sustained. `INFINITY` waits indefinitely (safe: an
        /// idle rack always cools back into admission range).
        defer_s: f64,
    },
    /// Rotating admission: at most `max_sprinting` nodes sprint at
    /// once, granted in task-arrival order; sheds (if the fixed
    /// allowance is ever exceeded, e.g. after a policy hand-off) walk
    /// the same rotation, oldest grant first.
    RoundRobin {
        /// Fixed cap on concurrently sprinting nodes.
        max_sprinting: usize,
    },
    /// Competitive duplication (Yonezawa's competitive parallel
    /// computing): when idle nodes outnumber waiting tasks, a task is
    /// replicated onto up to `copies` nodes and the earliest finisher
    /// wins; the rest of each decision follows `GreedyHeadroom` with
    /// the same admission threshold. Trades thermal budget (duplicate
    /// heat) for latency (the coolest copy sprints longest).
    ///
    /// With `cancel_losers` set, the window the winning copy commits
    /// every losing replica is killed through the machine-level cancel
    /// API (`SprintSession::cancel_workload`) and its node returns to
    /// the idle pool immediately — duplication stops paying for the
    /// losers' full runs, which is what turns it from a hedge that
    /// burns the shared feed into a provable latency win. Unset, the
    /// losers run to completion and are discarded (the pre-cancel
    /// behaviour, kept as the comparison baseline).
    CompetitiveDuplicate {
        /// Maximum copies of one task (including the original).
        copies: usize,
        /// Minimum node-local headroom (Kelvin) to admit a sprint.
        admit_headroom_k: f64,
        /// Kill losing replicas the window the winner commits.
        cancel_losers: bool,
    },
}

impl ClusterPolicy {
    /// A reasonable greedy-headroom default for the `rack` preset:
    /// admission stops granting sprints once a node is within 15 K of
    /// the limit, and the shed pass is an emergency backstop (4 K) —
    /// admission should be the binding constraint, with sheds rare.
    pub fn greedy_default() -> Self {
        ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            defer_s: f64::INFINITY,
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-positive thresholds, a zero allowance floor, a
    /// zero round-robin cap, or fewer than two duplicate copies.
    pub fn validate(&self) {
        match self {
            ClusterPolicy::NoSprint | ClusterPolicy::AllSprint => {}
            ClusterPolicy::GreedyHeadroom {
                admit_headroom_k,
                shed_headroom_k,
                min_sprinting,
                defer_s,
            } => {
                assert!(
                    admit_headroom_k.is_finite() && *admit_headroom_k > 0.0,
                    "admission threshold must be positive"
                );
                assert!(
                    shed_headroom_k.is_finite() && *shed_headroom_k > 0.0,
                    "shed threshold must be positive"
                );
                assert!(
                    *min_sprinting >= 1,
                    "allowance floor needs at least one node"
                );
                assert!(
                    !defer_s.is_nan() && *defer_s >= 0.0,
                    "defer window must be non-negative"
                );
            }
            ClusterPolicy::RoundRobin { max_sprinting } => {
                assert!(*max_sprinting >= 1, "round-robin cap must be at least one");
            }
            ClusterPolicy::CompetitiveDuplicate {
                copies,
                admit_headroom_k,
                ..
            } => {
                assert!(*copies >= 2, "duplication needs at least two copies");
                assert!(
                    admit_headroom_k.is_finite() && *admit_headroom_k > 0.0,
                    "admission threshold must be positive"
                );
            }
        }
    }

    /// Whether a task assigned to a node with `node_headroom_k` of
    /// local headroom may sprint, given `sprinting` nodes already
    /// sprinting and the current rack-wide `allowance`.
    pub fn admits(&self, node_headroom_k: f64, sprinting: usize, allowance: usize) -> bool {
        match self {
            ClusterPolicy::NoSprint => false,
            ClusterPolicy::AllSprint => true,
            ClusterPolicy::GreedyHeadroom {
                admit_headroom_k, ..
            }
            | ClusterPolicy::CompetitiveDuplicate {
                admit_headroom_k, ..
            } => node_headroom_k >= *admit_headroom_k && sprinting < allowance,
            ClusterPolicy::RoundRobin { .. } => sprinting < allowance,
        }
    }

    /// How many nodes may sprint concurrently at `rack_headroom_k` of
    /// rack-global headroom, out of `nodes` total — the
    /// `HotspotPolicy::ShedCores` linear ramp lifted from shed *count*
    /// to the cluster's sprinting allowance. Monotone non-decreasing in
    /// headroom for every variant (the shed-order property tests pin
    /// this).
    pub fn max_sprinting_at(&self, nodes: usize, rack_headroom_k: f64) -> usize {
        match self {
            ClusterPolicy::NoSprint => 0,
            ClusterPolicy::AllSprint => nodes,
            ClusterPolicy::CompetitiveDuplicate { .. } => nodes,
            ClusterPolicy::RoundRobin { max_sprinting } => (*max_sprinting).min(nodes),
            ClusterPolicy::GreedyHeadroom {
                shed_headroom_k,
                min_sprinting,
                ..
            } => {
                let floor = (*min_sprinting).min(nodes).max(1);
                if rack_headroom_k >= *shed_headroom_k || nodes <= floor {
                    return nodes;
                }
                let frac = (rack_headroom_k / shed_headroom_k).max(0.0);
                floor + ((nodes - floor) as f64 * frac).floor() as usize
            }
        }
    }

    /// Orders the currently sprinting nodes for preemption, most
    /// expendable first. `sprinting` lists node indices;
    /// `node_temps_c[n]` is node `n`'s hotspot; `grant_order` lists the
    /// same nodes oldest-grant-first (the cluster session maintains
    /// it). Greedy and competitive policies shed hottest-first (ties
    /// by lower index, so the order is fully deterministic); round-
    /// robin sheds oldest grant first; the baselines never shed (their
    /// allowance can't be exceeded) but order deterministically anyway.
    pub fn shed_order(
        &self,
        sprinting: &[usize],
        node_temps_c: &[f64],
        grant_order: &[usize],
    ) -> Vec<usize> {
        match self {
            ClusterPolicy::RoundRobin { .. } => grant_order
                .iter()
                .filter(|n| sprinting.contains(n))
                .copied()
                .collect(),
            _ => {
                let mut order: Vec<usize> = sprinting.to_vec();
                // Hottest first; equal temperatures break toward the
                // lower node index so the order never depends on the
                // incoming arrangement.
                order.sort_by(|&a, &b| {
                    node_temps_c[b]
                        .partial_cmp(&node_temps_c[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                order
            }
        }
    }

    /// Copies of each task to run (1 for every non-duplicating policy).
    pub fn duplicates(&self) -> usize {
        match self {
            ClusterPolicy::CompetitiveDuplicate { copies, .. } => *copies,
            _ => 1,
        }
    }

    /// A competitive-duplication default with loser cancellation on:
    /// two copies, the greedy 15 K admission threshold.
    pub fn competitive_default() -> Self {
        ClusterPolicy::CompetitiveDuplicate {
            copies: 2,
            admit_headroom_k: 15.0,
            cancel_losers: true,
        }
    }

    /// True when losing replicas are cancelled the window their task's
    /// winner commits.
    pub fn cancels_losers(&self) -> bool {
        matches!(
            self,
            ClusterPolicy::CompetitiveDuplicate {
                cancel_losers: true,
                ..
            }
        )
    }

    /// How long a denied task may wait in the queue for admission
    /// before falling back to a sustained run; `None` assigns denied
    /// tasks sustained immediately (no deferral).
    pub fn defer_window_s(&self) -> Option<f64> {
        match self {
            ClusterPolicy::GreedyHeadroom { defer_s, .. } => Some(*defer_s),
            ClusterPolicy::CompetitiveDuplicate { .. } => Some(f64::INFINITY),
            _ => None,
        }
    }

    /// The node-local headroom an admission requires, if this policy
    /// gates on one. The cluster builder checks it against the rack's
    /// maximum achievable headroom (`t_max - ambient`): a threshold no
    /// cold node can ever meet would head-of-line block the deferring
    /// queue forever.
    pub fn admit_headroom_k(&self) -> Option<f64> {
        match self {
            ClusterPolicy::GreedyHeadroom {
                admit_headroom_k, ..
            }
            | ClusterPolicy::CompetitiveDuplicate {
                admit_headroom_k, ..
            } => Some(*admit_headroom_k),
            _ => None,
        }
    }

    /// True when idle nodes should be filled coolest-first (headroom-
    /// aware placement); false for arrival-order placement.
    pub fn places_coolest_first(&self) -> bool {
        matches!(
            self,
            ClusterPolicy::GreedyHeadroom { .. } | ClusterPolicy::CompetitiveDuplicate { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_bracket_the_allowance() {
        assert_eq!(ClusterPolicy::NoSprint.max_sprinting_at(16, 40.0), 0);
        assert_eq!(ClusterPolicy::AllSprint.max_sprinting_at(16, 0.0), 16);
        assert!(!ClusterPolicy::NoSprint.admits(45.0, 0, 0));
        assert!(ClusterPolicy::AllSprint.admits(0.1, 15, 16));
    }

    #[test]
    fn greedy_ramp_mirrors_shed_cores() {
        let p = ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 10.0,
            shed_headroom_k: 8.0,
            min_sprinting: 2,
            defer_s: f64::INFINITY,
        };
        p.validate();
        assert_eq!(p.max_sprinting_at(16, 9.0), 16, "above threshold: all");
        assert_eq!(p.max_sprinting_at(16, 8.0), 16);
        assert_eq!(p.max_sprinting_at(16, 4.0), 9, "halfway: 2 + 14/2");
        assert_eq!(p.max_sprinting_at(16, 0.0), 2, "floor at zero headroom");
        assert_eq!(p.max_sprinting_at(16, -2.0), 2, "floor past the limit");
        assert!(p.admits(12.0, 3, 8));
        assert!(!p.admits(9.9, 3, 8), "too little local headroom");
        assert!(!p.admits(30.0, 8, 8), "allowance full");
    }

    #[test]
    fn shed_order_is_hottest_first_with_index_ties() {
        let p = ClusterPolicy::greedy_default();
        let temps = [50.0, 61.0, 55.0, 61.0];
        let order = p.shed_order(&[0, 1, 2, 3], &temps, &[0, 1, 2, 3]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn round_robin_sheds_oldest_grant_first() {
        let p = ClusterPolicy::RoundRobin { max_sprinting: 4 };
        let temps = [90.0, 10.0, 50.0, 70.0];
        // Grant order 2, 0, 3 (node 1 is not sprinting).
        let order = p.shed_order(&[0, 2, 3], &temps, &[2, 0, 3]);
        assert_eq!(order, vec![2, 0, 3], "rotation order, not temperature");
    }

    #[test]
    #[should_panic(expected = "at least two copies")]
    fn single_copy_duplication_rejected() {
        ClusterPolicy::CompetitiveDuplicate {
            copies: 1,
            admit_headroom_k: 5.0,
            cancel_losers: false,
        }
        .validate();
    }
}
