//! Helpers for emitting line-granular memory traffic.
//!
//! Kernels model streaming phases at cache-line granularity: one simulated
//! load per 64-byte line touched (compilers keep within-line reuse in
//! registers), with the per-element arithmetic batched into compute ops.
//! This keeps simulated event counts proportional to *memory traffic*
//! rather than raw instruction count, which is what the timing model needs.

use sprint_archsim::isa::{Op, OpClass};
use sprint_archsim::memmap::Region;

/// Cache-line size assumed by the emission helpers.
pub const LINE_BYTES: u64 = 64;

/// Emits one load per line overlapping `region[start_byte..start_byte+len]`.
pub fn load_span(out: &mut Vec<Op>, region: Region, start_byte: u64, len_bytes: u64) {
    span(out, region, start_byte, len_bytes, false);
}

/// Emits one store per line overlapping the span.
pub fn store_span(out: &mut Vec<Op>, region: Region, start_byte: u64, len_bytes: u64) {
    span(out, region, start_byte, len_bytes, true);
}

fn span(out: &mut Vec<Op>, region: Region, start_byte: u64, len_bytes: u64, store: bool) {
    if len_bytes == 0 {
        return;
    }
    debug_assert!(
        start_byte + len_bytes <= region.bytes(),
        "span outside region"
    );
    let first = (region.base() + start_byte) / LINE_BYTES;
    let last = (region.base() + start_byte + len_bytes - 1) / LINE_BYTES;
    for line in first..=last {
        let addr = line * LINE_BYTES;
        out.push(if store {
            Op::Store { addr }
        } else {
            Op::Load { addr }
        });
    }
}

/// Emits a batch of compute ops, splitting counts that exceed `u32::MAX`
/// (never in practice) and skipping zero counts.
pub fn compute(out: &mut Vec<Op>, class: OpClass, count: u64) {
    let mut left = count;
    while left > 0 {
        let c = left.min(u32::MAX as u64) as u32;
        out.push(Op::Compute { class, count: c });
        left -= u64::from(c);
    }
}

/// Emits the typical per-element mix for image arithmetic: `fp` FP ops,
/// `int` integer ops and `br` branches per element, over `elements`.
pub fn element_mix(out: &mut Vec<Op>, elements: u64, fp: u64, int: u64, br: u64) {
    compute(out, OpClass::FpAlu, elements * fp);
    compute(out, OpClass::IntAlu, elements * int);
    compute(out, OpClass::Branch, elements * br);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::memmap::AddressSpace;

    #[test]
    fn load_span_touches_each_line_once() {
        let mut mem = AddressSpace::new();
        let r = mem.alloc_bytes(1024);
        let mut out = Vec::new();
        load_span(&mut out, r, 10, 200); // bytes 10..210 -> lines 0..=3
        assert_eq!(out.len(), 4);
        let addrs: Vec<u64> = out
            .iter()
            .map(|op| match op {
                Op::Load { addr } => *addr,
                _ => panic!("expected load"),
            })
            .collect();
        assert_eq!(addrs[0], r.base());
        assert_eq!(addrs[3], r.base() + 192);
    }

    #[test]
    fn zero_length_span_is_empty() {
        let mut mem = AddressSpace::new();
        let r = mem.alloc_bytes(64);
        let mut out = Vec::new();
        load_span(&mut out, r, 0, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn store_span_emits_stores() {
        let mut mem = AddressSpace::new();
        let r = mem.alloc_bytes(128);
        let mut out = Vec::new();
        store_span(&mut out, r, 0, 128);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| matches!(o, Op::Store { .. })));
    }

    #[test]
    fn compute_skips_zero() {
        let mut out = Vec::new();
        compute(&mut out, OpClass::IntAlu, 0);
        assert!(out.is_empty());
        compute(&mut out, OpClass::IntAlu, 100);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn element_mix_scales_counts() {
        let mut out = Vec::new();
        element_mix(&mut out, 10, 3, 2, 1);
        let total: u64 = out.iter().map(|o| o.instruction_count()).sum();
        assert_eq!(total, 60);
    }
}
