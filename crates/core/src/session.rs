//! The steppable sprint session: architecture ⇄ thermal ⇄ power-delivery
//! co-simulation under incremental control.
//!
//! [`SprintSession`] is the non-consuming core of the co-simulation loop
//! (Section 8.1): each [`step`](SprintSession::step) runs one
//! energy-sampling window (1000 cycles), feeds the dissipated energy to
//! the electrical supply and the thermal backend, and lets the
//! [`SprintController`] reconfigure the machine. Because the session
//! survives between steps, scenarios the one-shot
//! [`SprintSystem::run`](crate::system::SprintSystem::run) could never
//! express become library-level compositions:
//!
//! * **pause–inspect–reconfigure** — step, read temperatures/budget, swap
//!   pacing, continue;
//! * **repeated bursts** — [`rest`](SprintSession::rest) cools the package
//!   and recharges the supply between bursts, and
//!   [`begin_burst`](SprintSession::begin_burst) re-arms the controller
//!   against the *current* thermal state;
//! * **electrically-limited sprints** — a [`PowerSupply`] that cannot
//!   deliver a window's power ends the sprint through
//!   [`SprintController::supply_limited`], wiring Section 6 into the
//!   simulation for the first time.
//!
//! [`ScenarioBuilder`] composes machine + workload + thermal backend +
//! supply + [`SprintConfig`] into a session.
//!
//! # Example
//!
//! ```
//! use sprint_archsim::{MachineConfig, SyntheticKernel};
//! use sprint_core::session::{ScenarioBuilder, StepOutcome};
//! use sprint_core::SprintConfig;
//! use sprint_thermal::phone::PhoneThermalParams;
//!
//! let mut session = ScenarioBuilder::new()
//!     .machine(MachineConfig::hpca())
//!     .load(|m| {
//!         for t in 0..16u64 {
//!             m.spawn(Box::new(SyntheticKernel::new(32, 5_000, (t + 1) << 26, 0)));
//!         }
//!     })
//!     .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
//!     .config(SprintConfig::hpca_parallel())
//!     .build();
//! while session.step() == StepOutcome::Running {}
//! let report = session.report();
//! assert!(report.finished);
//! ```

use serde::{Deserialize, Serialize};
use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_thermal::phone::{PhoneThermal, PhoneThermalParams};

use crate::config::{SprintConfig, SupplyPolicy};
use crate::controller::{ControllerEvent, SprintController, SprintState};
use crate::supply::{IdealSupply, PowerSupply};
use crate::thermal_model::ThermalModel;

/// One sampled point of a coupled run (for Figure 2-style traces).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSample {
    /// Time, seconds.
    pub time_s: f64,
    /// Active cores.
    pub active_cores: usize,
    /// Cumulative instructions retired.
    pub instructions: u64,
    /// Chip power over the last window, watts.
    pub power_w: f64,
    /// Junction temperature, Celsius.
    pub junction_c: f64,
    /// PCM melt fraction.
    pub melt_fraction: f64,
}

/// Result of a coupled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock completion time of the computation, seconds.
    pub completion_s: f64,
    /// Total dynamic energy, joules.
    pub energy_j: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// Time the sprint ended (migration or completion), if it was a sprint.
    pub sprint_end_s: Option<f64>,
    /// Maximum junction temperature observed, Celsius.
    pub max_junction_c: f64,
    /// Controller events.
    pub events: Vec<ControllerEvent>,
    /// Whether the run finished within the configured time limit.
    pub finished: bool,
    /// Sampled trace (decimated).
    pub trace: Vec<RunSample>,
}

impl RunReport {
    /// Responsiveness gain over a baseline completion time. Degenerate
    /// comparisons (a non-finite or non-positive completion or baseline)
    /// return NaN rather than an infinite or negative "speedup".
    pub fn speedup_over(&self, baseline_s: f64) -> f64 {
        let comparable = self.completion_s.is_finite()
            && self.completion_s > 0.0
            && baseline_s.is_finite()
            && baseline_s > 0.0;
        if !comparable {
            return f64::NAN;
        }
        baseline_s / self.completion_s
    }
}

/// What one [`SprintSession::step`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A window ran and work remains.
    Running,
    /// Every thread has finished; further steps are no-ops.
    Finished,
    /// The configured `max_time_s` elapsed with work remaining; further
    /// steps are no-ops until the limit or workload changes.
    TimeLimit,
}

impl StepOutcome {
    /// True once stepping can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, StepOutcome::Running)
    }
}

/// Observer hooks a session reports into as it advances: one call per
/// sampling window, one per controller event. Implementations are
/// composable — a session can carry any number.
pub trait SessionObserver {
    /// Called after every sampling window with the window's sample.
    fn on_sample(&mut self, sample: &RunSample) {
        let _ = sample;
    }

    /// Called for every controller event, in order.
    fn on_event(&mut self, event: &ControllerEvent) {
        let _ = event;
    }
}

/// A steppable coupled simulation, generic over the thermal backend and
/// the electrical supply.
pub struct SprintSession<T: ThermalModel = PhoneThermal, S: PowerSupply = IdealSupply> {
    machine: Machine,
    thermal: T,
    supply: S,
    config: SprintConfig,
    controller: SprintController,
    observers: Vec<Box<dyn SessionObserver>>,
    window_ps: u64,
    window_s: f64,
    max_windows: u64,
    windows: u64,
    /// Time spent resting between bursts (not advanced by the machine).
    idle_s: f64,
    max_junction_c: f64,
    finished: bool,
    /// First sprint end observed across the whole session.
    sprint_end_s: Option<f64>,
    /// Events accumulated across bursts (drained from each controller).
    events: Vec<ControllerEvent>,
    events_drained: usize,
    trace: Vec<RunSample>,
    trace_capacity: usize,
    trace_stride: u64,
}

impl<T: ThermalModel + std::fmt::Debug, S: PowerSupply + std::fmt::Debug> std::fmt::Debug
    for SprintSession<T, S>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SprintSession")
            .field("thermal", &self.thermal)
            .field("supply", &self.supply)
            .field("config", &self.config)
            .field("windows", &self.windows)
            .field("idle_s", &self.idle_s)
            .field("finished", &self.finished)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl<T: ThermalModel, S: PowerSupply> SprintSession<T, S> {
    /// Couples a loaded machine, thermal backend and supply under a sprint
    /// configuration. Most callers should use [`ScenarioBuilder`].
    pub fn new(
        machine: Machine,
        thermal: T,
        supply: S,
        config: SprintConfig,
        trace_capacity: usize,
        observers: Vec<Box<dyn SessionObserver>>,
    ) -> Self {
        config.validate();
        let mut machine = machine;
        let controller = SprintController::new(config.clone(), &thermal, &mut machine);
        let window_ps = config.sample_window_ps;
        let window_s = window_ps as f64 * 1e-12;
        let max_windows = (config.max_time_s / window_s).ceil() as u64;
        let max_junction_c = thermal.junction_temp_c();
        Self {
            machine,
            thermal,
            supply,
            config,
            controller,
            observers,
            window_ps,
            window_s,
            max_windows,
            windows: 0,
            idle_s: 0.0,
            max_junction_c,
            finished: false,
            sprint_end_s: None,
            events: Vec::new(),
            events_drained: 0,
            trace: Vec::new(),
            trace_capacity,
            trace_stride: 1,
        }
    }

    /// Advances the coupled simulation by one sampling window.
    pub fn step(&mut self) -> StepOutcome {
        if self.machine.all_done() {
            self.finished = true;
            return StepOutcome::Finished;
        }
        if self.windows >= self.max_windows {
            return StepOutcome::TimeLimit;
        }
        // The cores that dissipated this window's power — captured before
        // any controller reaction can migrate threads, so spatial
        // backends heat the footprint that actually ran.
        let window_cores = self.machine.active_cores();
        let report = self.machine.run_window(self.window_ps);
        self.windows += 1;
        let now_s = self.now_s();
        let power_w = report.energy_j / self.window_s;
        // Electrical side (Section 6): a supply that cannot deliver the
        // window's power ends the sprint. The window that tripped the
        // limit has already executed — the same one-window reaction lag
        // the thermal failsafe has.
        if self.config.supply_policy == SupplyPolicy::EndSprint {
            if let Err(e) = self.supply.draw(power_w, self.window_s) {
                use sprint_powersource::battery::SupplyError;
                let available_w = match e {
                    SupplyError::CurrentLimit { available_w, .. } => available_w,
                    SupplyError::Depleted => 0.0,
                };
                self.controller
                    .supply_limited(now_s, power_w, available_w, &mut self.machine);
            }
        }
        self.thermal.set_active_core_count(window_cores);
        self.thermal.set_chip_power_w(power_w);
        self.thermal.advance(self.window_s);
        self.max_junction_c = self.max_junction_c.max(self.thermal.junction_temp_c());
        self.controller.step(
            &self.thermal,
            report.energy_j,
            self.window_s,
            now_s,
            &mut self.machine,
        );
        self.drain_events();
        let sample = RunSample {
            time_s: now_s,
            active_cores: self.machine.active_cores(),
            instructions: self.machine.stats().instructions,
            power_w,
            junction_c: self.thermal.junction_temp_c(),
            melt_fraction: self.thermal.melt_fraction(),
        };
        for o in &mut self.observers {
            o.on_sample(&sample);
        }
        if self.trace_capacity > 0 && self.windows.is_multiple_of(self.trace_stride) {
            self.trace.push(sample);
            if self.trace.len() >= self.trace_capacity {
                // Halve resolution: keep every other sample.
                let kept: Vec<RunSample> = self.trace.iter().copied().step_by(2).collect();
                self.trace = kept;
                self.trace_stride *= 2;
            }
        }
        if report.all_done {
            self.finished = true;
            if self.controller.state() == SprintState::Sprinting {
                self.sprint_end_s.get_or_insert(now_s);
            }
            StepOutcome::Finished
        } else {
            StepOutcome::Running
        }
    }

    /// Steps until the workload finishes or the time limit is reached,
    /// returning the final outcome.
    pub fn run_to_completion(&mut self) -> StepOutcome {
        loop {
            let outcome = self.step();
            if outcome.is_terminal() {
                return outcome;
            }
        }
    }

    /// Rests the package for `dt_s` seconds with the chip idle: the
    /// thermal backend cools (the PCM refreezes) and the supply recharges.
    /// Returns the energy transferred into the supply's sprint store,
    /// joules. Simulated time advances; the machine does not run.
    pub fn rest(&mut self, dt_s: f64) -> f64 {
        assert!(
            dt_s >= 0.0 && dt_s.is_finite(),
            "rest needs a non-negative time"
        );
        self.thermal.set_chip_power_w(0.0);
        self.thermal.advance(dt_s);
        self.idle_s += dt_s;
        self.supply.idle_recharge(dt_s)
    }

    /// Rests the package through `count` consecutive intervals of `dt_s`
    /// seconds each — bit-for-bit the state `count` successive
    /// [`rest`](Self::rest)`(dt_s)` calls would leave, returning the
    /// same total recharge, but batched so shared-backend view types
    /// can amortize their per-call overhead.
    ///
    /// The batching leans on two facts: repeating `set_chip_power_w(0.0)`
    /// is state-idempotent on every backend (the power is already zero
    /// after the first call), and the thermal and supply sides touch
    /// disjoint state, so `count` thermal advances followed by `count`
    /// recharge intervals reproduce the interleaved per-call sequence
    /// exactly. `idle_s` accumulates by repeated `+= dt_s` in the same
    /// order the looped path would, not by a single `count * dt_s` add
    /// (which rounds differently).
    pub fn rest_many(&mut self, dt_s: f64, count: u64) -> f64 {
        assert!(
            dt_s >= 0.0 && dt_s.is_finite(),
            "rest needs a non-negative time"
        );
        self.thermal.set_chip_power_w(0.0);
        self.thermal.advance_many(dt_s, count);
        for _ in 0..count {
            self.idle_s += dt_s;
        }
        self.supply.idle_recharge_many(dt_s, count)
    }

    /// Re-arms the sprint controller against the *current* thermal state:
    /// the next burst's budget is whatever capacity the package has
    /// recovered, and the burst gets a fresh `max_time_s` allowance (the
    /// limit guards each run, not the session's lifetime). Spawn new work
    /// on [`machine_mut`](Self::machine_mut) before or after; previously
    /// accumulated events and trace persist.
    pub fn begin_burst(&mut self) {
        self.drain_events();
        self.controller =
            SprintController::new(self.config.clone(), &self.thermal, &mut self.machine);
        self.events_drained = 0;
        self.finished = false;
        self.windows = 0;
    }

    /// Ends an in-flight sprint on an external decision (see
    /// [`SprintController::preempt`]): the threads migrate to one core
    /// and the session continues at sustained pace. A cluster scheduler
    /// uses this to revoke a node's sprint admission when shared
    /// thermal headroom runs out; outside a sprint it is a no-op.
    pub fn preempt_sprint(&mut self) {
        let now = self.now_s();
        self.controller.preempt(now, &mut self.machine);
        self.drain_events();
    }

    /// Cancels the in-flight workload: every unfinished machine thread is
    /// killed immediately (`Machine::cancel_all`) and any in-flight sprint
    /// is preempted, returning how many threads were killed. The work
    /// already executed — retired instructions, dissipated energy, the
    /// heat in the package — stays on the books; only the *future* of the
    /// workload is reclaimed. This is the session-level half of the
    /// competitive-duplicate cancel API: a cluster scheduler calls it on
    /// the losing replica's node the window the winner commits, so the
    /// loser's nameplate power and thermal headroom return to the shared
    /// pool one window later instead of after the replica limps to its
    /// own finish. After cancellation the session is idle (step reports
    /// `Finished`); spawn fresh work and [`begin_burst`](Self::begin_burst)
    /// to reuse the node.
    pub fn cancel_workload(&mut self) -> usize {
        let killed = self.machine.cancel_all();
        self.preempt_sprint();
        killed
    }

    /// Replaces the sprint configuration. The sampling window and time
    /// limit take effect immediately; the *controller* keeps running
    /// its current burst under the old configuration until
    /// [`begin_burst`](Self::begin_burst) re-arms it — swap config,
    /// then begin the burst. This is how a cluster scheduler flips a
    /// node between sprint-admitted and sustained duty per task.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn set_config(&mut self, config: SprintConfig) {
        config.validate();
        self.window_ps = config.sample_window_ps;
        self.window_s = self.window_ps as f64 * 1e-12;
        self.max_windows = (config.max_time_s / self.window_s).ceil() as u64;
        self.config = config;
    }

    /// Current simulated time: machine time plus rested intervals, seconds.
    pub fn now_s(&self) -> f64 {
        self.machine.time_s() + self.idle_s
    }

    /// Sampling windows executed in the current burst (reset by
    /// [`begin_burst`](Self::begin_burst)).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access — spawn follow-up work, inspect stats.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The thermal backend.
    pub fn thermal(&self) -> &T {
        &self.thermal
    }

    /// Mutable thermal access.
    pub fn thermal_mut(&mut self) -> &mut T {
        &mut self.thermal
    }

    /// The electrical supply.
    pub fn supply(&self) -> &S {
        &self.supply
    }

    /// Mutable supply access.
    pub fn supply_mut(&mut self) -> &mut S {
        &mut self.supply
    }

    /// The sprint configuration.
    pub fn config(&self) -> &SprintConfig {
        &self.config
    }

    /// Controller state right now.
    pub fn state(&self) -> SprintState {
        self.controller.state()
    }

    /// Remaining budget fraction of the current burst's controller.
    pub fn budget_remaining_fraction(&self) -> f64 {
        self.controller.budget_remaining_fraction()
    }

    /// All controller events so far, across bursts.
    pub fn events(&self) -> &[ControllerEvent] {
        &self.events
    }

    /// Builds the coupled report for the session so far. Callable at any
    /// point — mid-run reports simply describe an unfinished run.
    pub fn report(&self) -> RunReport {
        let sprint_end = self.sprint_end_s.or_else(|| self.controller.sprint_end_s());
        RunReport {
            completion_s: self.now_s(),
            energy_j: self.machine.stats().dynamic_energy_j,
            instructions: self.machine.stats().instructions,
            sprint_end_s: sprint_end,
            max_junction_c: self.max_junction_c,
            events: self.events.clone(),
            finished: self.finished,
            trace: self.trace.clone(),
        }
    }

    fn drain_events(&mut self) {
        let fresh = &self.controller.events()[self.events_drained..];
        if fresh.is_empty() {
            return;
        }
        for e in fresh {
            if self.sprint_end_s.is_none() {
                if let ControllerEvent::SprintEnded { at_s, .. } = e {
                    self.sprint_end_s = Some(*at_s);
                }
            }
            self.events.push(*e);
        }
        self.events_drained = self.controller.events().len();
        let start = self.events.len() - fresh.len();
        for i in start..self.events.len() {
            let e = self.events[i];
            for o in &mut self.observers {
                o.on_event(&e);
            }
        }
    }
}

/// Composes workload + machine + thermal backend + supply +
/// [`SprintConfig`] into a [`SprintSession`].
///
/// A queued workload loader, applied to the machine at build time.
type Loader = Box<dyn FnOnce(&mut Machine)>;

/// Defaults reproduce the paper's flagship setup: an HPCA 16-core
/// machine, the 150 mg-PCM phone package, an unconstrained supply and
/// [`SprintConfig::hpca_parallel`].
pub struct ScenarioBuilder<T: ThermalModel = PhoneThermal, S: PowerSupply = IdealSupply> {
    machine_config: MachineConfig,
    loaders: Vec<Loader>,
    thermal: T,
    supply: S,
    config: SprintConfig,
    trace_capacity: usize,
    observers: Vec<Box<dyn SessionObserver>>,
}

impl<T: ThermalModel + std::fmt::Debug, S: PowerSupply + std::fmt::Debug> std::fmt::Debug
    for ScenarioBuilder<T, S>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("machine_config", &self.machine_config)
            .field("thermal", &self.thermal)
            .field("supply", &self.supply)
            .field("config", &self.config)
            .field("loaders", &self.loaders.len())
            .finish_non_exhaustive()
    }
}

impl ScenarioBuilder<PhoneThermal, IdealSupply> {
    /// Starts from the paper's flagship defaults.
    pub fn new() -> Self {
        Self {
            machine_config: MachineConfig::hpca(),
            loaders: Vec::new(),
            thermal: PhoneThermalParams::hpca().build(),
            supply: IdealSupply,
            config: SprintConfig::hpca_parallel(),
            trace_capacity: 2048,
            observers: Vec::new(),
        }
    }
}

impl Default for ScenarioBuilder<PhoneThermal, IdealSupply> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ThermalModel, S: PowerSupply> ScenarioBuilder<T, S> {
    /// Sets the machine configuration.
    pub fn machine(mut self, config: MachineConfig) -> Self {
        self.machine_config = config;
        self
    }

    /// Queues a workload loader, run against the machine at build time.
    /// Multiple loaders compose (e.g. a kernel suite plus a synthetic
    /// background thread).
    pub fn load(mut self, loader: impl FnOnce(&mut Machine) + 'static) -> Self {
        self.loaders.push(Box::new(loader));
        self
    }

    /// Swaps in a thermal backend (any [`ThermalModel`]).
    pub fn thermal<T2: ThermalModel>(self, thermal: T2) -> ScenarioBuilder<T2, S> {
        ScenarioBuilder {
            machine_config: self.machine_config,
            loaders: self.loaders,
            thermal,
            supply: self.supply,
            config: self.config,
            trace_capacity: self.trace_capacity,
            observers: self.observers,
        }
    }

    /// Swaps in an electrical supply (any [`PowerSupply`]).
    pub fn supply<S2: PowerSupply>(self, supply: S2) -> ScenarioBuilder<T, S2> {
        ScenarioBuilder {
            machine_config: self.machine_config,
            loaders: self.loaders,
            thermal: self.thermal,
            supply,
            config: self.config,
            trace_capacity: self.trace_capacity,
            observers: self.observers,
        }
    }

    /// Sets the sprint configuration.
    pub fn config(mut self, config: SprintConfig) -> Self {
        self.config = config;
        self
    }

    /// Limits the retained trace length (0 disables tracing).
    pub fn trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Attaches an observer.
    pub fn observer(mut self, observer: Box<dyn SessionObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Builds the session: constructs the machine, runs the queued
    /// loaders, and couples everything under the configuration.
    pub fn build(self) -> SprintSession<T, S> {
        let mut machine = Machine::new(self.machine_config);
        for loader in self.loaders {
            loader(&mut machine);
        }
        SprintSession::new(
            machine,
            self.thermal,
            self.supply,
            self.config,
            self.trace_capacity,
            self.observers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;
    use crate::thermal_model::LumpedThermal;
    use sprint_archsim::program::SyntheticKernel;
    use sprint_powersource::battery::Battery;

    fn spawn_threads(machine: &mut Machine, threads: u64, accesses: u64) {
        for t in 0..threads {
            machine.spawn(Box::new(SyntheticKernel::new(
                32,
                accesses,
                (t + 1) << 26,
                0,
            )));
        }
    }

    fn fast_session() -> SprintSession {
        ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 20_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .build()
    }

    #[test]
    fn stepping_finishes_and_reports() {
        let mut s = fast_session();
        let mut steps = 0u64;
        while s.step() == StepOutcome::Running {
            steps += 1;
        }
        assert!(steps > 10);
        let report = s.report();
        assert!(report.finished);
        assert!(report.energy_j > 0.0);
        assert_eq!(report.instructions, s.machine().stats().instructions);
        // Further steps are no-ops.
        assert_eq!(s.step(), StepOutcome::Finished);
    }

    #[test]
    fn mid_run_inspection_sees_the_sprint() {
        let mut s = fast_session();
        for _ in 0..200 {
            if s.step() != StepOutcome::Running {
                break;
            }
        }
        // After the 128-window ramp the session must be sprinting wide.
        assert_eq!(s.state(), SprintState::Sprinting);
        assert_eq!(s.machine().active_cores(), 16);
        assert!(s.budget_remaining_fraction() > 0.0);
        let mid = s.report();
        assert!(!mid.finished, "mid-run report describes an unfinished run");
        s.run_to_completion();
        assert!(s.report().finished);
    }

    #[test]
    fn time_limit_is_reported() {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.max_time_s = 20e-6; // 20 windows
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 1_000_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .config(cfg)
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::TimeLimit);
        assert!(!s.report().finished);
    }

    #[test]
    fn begin_burst_grants_a_fresh_time_allowance() {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.max_time_s = 30e-6; // 30 windows per burst
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 1_000_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .config(cfg)
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::TimeLimit);
        // Re-arming must reset the per-burst limit, not starve the session.
        s.begin_burst();
        assert_eq!(s.step(), StepOutcome::Running);
    }

    #[test]
    fn generic_over_a_non_phone_backend() {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.mode = ExecutionMode::ParallelSprint { cores: 16 };
        cfg.tdp_w = 100.0; // server-class sustainable power
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 10_000))
            .thermal(LumpedThermal::server_heatsink())
            .config(cfg)
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        let report = s.report();
        assert!(report.finished);
        assert!(report.max_junction_c < 85.0);
    }

    #[test]
    fn current_limited_battery_ends_the_sprint_early() {
        // A phone Li-ion cell (~10 W ceiling) cannot feed the 16-core
        // sprint: the first full-width window trips the limit and the
        // controller migrates to one core.
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 20_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .supply(Battery::phone_li_ion())
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        let report = s.report();
        assert!(report.finished);
        assert!(
            report
                .events
                .iter()
                .any(|e| matches!(e, ControllerEvent::SupplyLimited { .. })),
            "events: {:?}",
            report.events
        );
        let end = report.sprint_end_s.expect("sprint must have ended");
        assert!(
            end < report.completion_s * 0.5,
            "supply abort {end} must come well before completion {}",
            report.completion_s
        );
    }

    #[test]
    fn ignore_policy_keeps_the_seed_behaviour() {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.supply_policy = SupplyPolicy::Ignore;
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 20_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .supply(Battery::phone_li_ion())
            .config(cfg)
            .build();
        s.run_to_completion();
        assert!(s
            .report()
            .events
            .iter()
            .all(|e| !matches!(e, ControllerEvent::SupplyLimited { .. })));
    }

    #[test]
    fn rest_cools_and_rearms_the_budget() {
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 60_000))
            .thermal(PhoneThermalParams::limited().time_scaled(1000.0).build())
            .build();
        s.run_to_completion();
        let hot_budget = s.thermal().sprint_energy_budget_j();
        let t_hot = s.thermal().junction_temp_c();
        s.rest(0.5); // generous cooldown at 1000x compression
        assert!(s.thermal().junction_temp_c() < t_hot);
        assert!(s.thermal().sprint_energy_budget_j() > hot_budget);
        // A new burst against the recovered state.
        spawn_threads(s.machine_mut(), 16, 10_000);
        s.begin_burst();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        assert!(s.report().finished);
        assert!(
            s.now_s() > s.machine().time_s(),
            "rest advanced session time"
        );
    }

    #[test]
    fn preempt_migrates_like_budget_exhaustion() {
        let mut s = fast_session();
        for _ in 0..200 {
            if s.step() != StepOutcome::Running {
                break;
            }
        }
        assert_eq!(s.state(), SprintState::Sprinting);
        s.preempt_sprint();
        assert_eq!(s.state(), SprintState::Sustained);
        assert_eq!(s.machine().active_cores(), 1);
        assert!(s
            .events()
            .iter()
            .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })));
        // Preempting again is a no-op; the run still completes.
        let events = s.events().len();
        s.preempt_sprint();
        assert_eq!(s.events().len(), events);
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
    }

    #[test]
    fn cancel_workload_reclaims_the_node_mid_sprint() {
        let mut s = fast_session();
        for _ in 0..200 {
            if s.step() != StepOutcome::Running {
                break;
            }
        }
        assert_eq!(s.state(), SprintState::Sprinting);
        let retired = s.machine().stats().instructions;
        assert_eq!(s.cancel_workload(), 16);
        // The sprint ended with the workload; executed work stays on the
        // books and the session is immediately idle.
        assert_eq!(s.state(), SprintState::Sustained);
        assert_eq!(s.machine().stats().instructions, retired);
        assert_eq!(s.step(), StepOutcome::Finished);
        // Cancelling an idle session is a no-op.
        assert_eq!(s.cancel_workload(), 0);
        // The node is reusable: fresh work, fresh burst.
        spawn_threads(s.machine_mut(), 4, 2_000);
        s.begin_burst();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        assert!(s.report().finished);
    }

    #[test]
    fn set_config_governs_the_next_burst() {
        let mut s = fast_session();
        s.run_to_completion();
        let sprints_before = s
            .events()
            .iter()
            .filter(|e| matches!(e, ControllerEvent::SprintStarted { .. }))
            .count();
        assert_eq!(sprints_before, 1);
        // Flip the session to sustained duty for the next task.
        s.set_config(SprintConfig::hpca_sustained());
        spawn_threads(s.machine_mut(), 4, 5_000);
        s.begin_burst();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        assert_eq!(s.machine().active_cores(), 1, "sustained runs one core");
        let sprints_after = s
            .events()
            .iter()
            .filter(|e| matches!(e, ControllerEvent::SprintStarted { .. }))
            .count();
        assert_eq!(sprints_after, 1, "no new sprint under sustained config");
    }

    #[test]
    fn session_runs_on_a_borrowed_backend() {
        // The thermal port: the session borrows the backend, and the
        // caller still holds it (with all accumulated state) afterwards.
        let mut thermal = PhoneThermalParams::hpca().time_scaled(1000.0).build();
        let ambient = thermal.junction_temp_c();
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 10_000))
            .thermal(&mut thermal)
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        assert!(s.report().finished);
        drop(s);
        assert!(
            thermal.junction_temp_c() > ambient + 1.0,
            "the borrowed backend keeps the run's heat"
        );
    }

    #[test]
    fn session_runs_on_a_boxed_backend() {
        let boxed: Box<dyn crate::thermal_model::ThermalModel> =
            Box::new(PhoneThermalParams::hpca().time_scaled(1000.0).build());
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 10_000))
            .thermal(boxed)
            .build();
        assert_eq!(s.run_to_completion(), StepOutcome::Finished);
        assert!(s.report().finished);
        assert!(s.report().max_junction_c > s.thermal().ambient_c());
    }

    #[test]
    fn observers_see_samples_and_events() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Counter {
            samples: usize,
            events: usize,
        }
        struct CountingObserver(Rc<RefCell<Counter>>);
        impl SessionObserver for CountingObserver {
            fn on_sample(&mut self, _: &RunSample) {
                self.0.borrow_mut().samples += 1;
            }
            fn on_event(&mut self, _: &ControllerEvent) {
                self.0.borrow_mut().events += 1;
            }
        }

        let counter = Rc::new(RefCell::new(Counter::default()));
        let mut s = ScenarioBuilder::new()
            .load(|m| spawn_threads(m, 16, 10_000))
            .thermal(PhoneThermalParams::hpca().time_scaled(1000.0).build())
            .observer(Box::new(CountingObserver(Rc::clone(&counter))))
            .trace_capacity(0)
            .build();
        s.run_to_completion();
        let c = counter.borrow();
        assert_eq!(c.samples as u64, s.windows());
        assert_eq!(c.events, s.events().len());
        assert!(c.events >= 1, "at least SprintStarted");
    }
}
