//! DVFS operating points and the paper's voltage-boost sprint arithmetic.
//!
//! Section 8.4 compares parallel sprinting against "sprinting via boosting
//! voltage and frequency": a linear voltage increase buys a linear
//! frequency increase but costs power cubically (P ∝ f·V² with V ∝ f), so
//! a 16× power headroom affords only a ∛16 ≈ 2.5× frequency boost, and
//! each instruction costs V² ≈ 6.3× more energy.

use serde::{Deserialize, Serialize};

/// An operating point: clock multiplier and the implied energy multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency relative to nominal.
    pub frequency_multiplier: f64,
    /// Per-operation energy relative to nominal (V² scaling).
    pub energy_multiplier: f64,
}

impl OperatingPoint {
    /// The nominal point.
    pub fn nominal() -> Self {
        Self {
            frequency_multiplier: 1.0,
            energy_multiplier: 1.0,
        }
    }

    /// A voltage-frequency boost: frequency scales by `f`, voltage scales
    /// proportionally, so energy per operation scales by `f²`.
    ///
    /// # Panics
    ///
    /// Panics unless `f` is positive and finite.
    pub fn voltage_boost(f: f64) -> Self {
        assert!(f.is_finite() && f > 0.0, "boost must be positive");
        Self {
            frequency_multiplier: f,
            energy_multiplier: f * f,
        }
    }

    /// The largest voltage-boost point that fits a given power headroom:
    /// P ∝ f³, so f = headroom^(1/3). A 16× headroom gives ≈ 2.52×.
    pub fn max_boost_for_power_headroom(headroom: f64) -> Self {
        assert!(headroom >= 1.0, "headroom must be at least 1x");
        Self::voltage_boost(headroom.powf(1.0 / 3.0))
    }

    /// A frequency throttle at constant voltage (the hardware failsafe of
    /// Section 7): power and energy-per-time fall linearly with frequency,
    /// energy per operation is unchanged.
    pub fn throttle(f: f64) -> Self {
        assert!(
            f.is_finite() && f > 0.0 && f <= 1.0,
            "throttle must be in (0, 1]"
        );
        Self {
            frequency_multiplier: f,
            energy_multiplier: 1.0,
        }
    }

    /// Instantaneous power multiplier of this point relative to nominal
    /// (per active core): f × V² = f × energy multiplier.
    pub fn power_multiplier(&self) -> f64 {
        self.frequency_multiplier * self.energy_multiplier
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_x_headroom_boosts_2_5x() {
        let p = OperatingPoint::max_boost_for_power_headroom(16.0);
        assert!((p.frequency_multiplier - 2.5198).abs() < 1e-3);
        // Power: f^3 = 16.
        assert!((p.power_multiplier() - 16.0).abs() < 1e-9);
        // Energy per op: ~6.35x.
        assert!((p.energy_multiplier - 6.3496).abs() < 1e-3);
    }

    #[test]
    fn throttle_preserves_energy_per_op() {
        let p = OperatingPoint::throttle(1.0 / 16.0);
        assert!((p.power_multiplier() - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(p.energy_multiplier, 1.0);
    }

    #[test]
    fn nominal_is_identity() {
        let p = OperatingPoint::nominal();
        assert_eq!(p.power_multiplier(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1x")]
    fn sub_unity_headroom_rejected() {
        let _ = OperatingPoint::max_boost_for_power_headroom(0.5);
    }
}
