//! Activity-based thermal budget estimation (Section 7).
//!
//! The paper's hardware "monitors energy dissipation since sprint
//! initiation; based on the dynamic energy consumption and a thermal model
//! of the system, the hardware estimates when the available thermal budget
//! is nearly exhausted". This module implements that estimator: the sprint
//! budget is the joule capacity of the package's thermal storage (latent
//! heat plus sensible headroom), drained by dissipated energy and
//! replenished at the sustainable (TDP) drain rate.

use serde::{Deserialize, Serialize};

/// Tracks remaining sprint capacity from energy accounting alone (no
/// temperature sensor on the fast path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalBudget {
    /// Total storage capacity at sprint start, joules.
    capacity_j: f64,
    /// Net energy absorbed so far (dissipated minus leaked), joules.
    absorbed_j: f64,
    /// Sustainable drain rate assumed by the estimator, watts.
    tdp_w: f64,
}

impl ThermalBudget {
    /// Starts accounting against `capacity_j` of storage with a steady
    /// leak of `tdp_w`.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn new(capacity_j: f64, tdp_w: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "capacity must be positive"
        );
        assert!(tdp_w.is_finite() && tdp_w > 0.0, "TDP must be positive");
        Self {
            capacity_j,
            absorbed_j: 0.0,
            tdp_w,
        }
    }

    /// Records one sampling window: `energy_j` dissipated over
    /// `window_s` seconds. Absorption can go negative only down to zero
    /// (a cooler-than-start package is clamped; the estimator is
    /// deliberately conservative).
    pub fn record(&mut self, energy_j: f64, window_s: f64) {
        debug_assert!(energy_j >= 0.0 && window_s >= 0.0);
        self.absorbed_j = (self.absorbed_j + energy_j - self.tdp_w * window_s).max(0.0);
    }

    /// Remaining capacity, joules.
    pub fn remaining_j(&self) -> f64 {
        (self.capacity_j - self.absorbed_j).max(0.0)
    }

    /// Fraction of capacity spent, in `[0, 1]`.
    pub fn spent_fraction(&self) -> f64 {
        (self.absorbed_j / self.capacity_j).min(1.0)
    }

    /// True once less than `margin` of the capacity remains.
    pub fn nearly_exhausted(&self, margin: f64) -> bool {
        self.remaining_j() <= margin * self.capacity_j
    }

    /// Total capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_drains_by_excess_over_tdp() {
        let mut b = ThermalBudget::new(16.0, 1.0);
        // 16 W for 0.5 s: absorbs (16 - 1) * 0.5 = 7.5 J.
        for _ in 0..500 {
            b.record(16.0e-3, 1e-3);
        }
        assert!((b.remaining_j() - 8.5).abs() < 1e-9);
        assert!(!b.nearly_exhausted(0.05));
    }

    #[test]
    fn sustainable_power_never_drains() {
        let mut b = ThermalBudget::new(16.0, 1.0);
        for _ in 0..10_000 {
            b.record(1.0e-3, 1e-3);
        }
        assert!((b.remaining_j() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_trips_at_margin() {
        let mut b = ThermalBudget::new(10.0, 1.0);
        b.record(10.3, 0.1); // absorbs 10.2 J > capacity
        assert!(b.nearly_exhausted(0.05));
        assert_eq!(b.remaining_j(), 0.0);
        assert_eq!(b.spent_fraction(), 1.0);
    }

    #[test]
    fn idle_windows_do_not_go_negative() {
        let mut b = ThermalBudget::new(5.0, 1.0);
        b.record(0.0, 3.0); // idle for 3 s
        assert!((b.remaining_j() - 5.0).abs() < 1e-12);
        b.record(2.0, 0.5); // then a burst
        assert!((b.remaining_j() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ThermalBudget::new(0.0, 1.0);
    }
}
