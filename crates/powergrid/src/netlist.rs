//! Circuit netlists: nodes and R/L/C/source elements.
//!
//! A [`Circuit`] is a passive description; the transient solver in
//! [`crate::transient`] compiles it into a modified-nodal-analysis system.

use serde::{Deserialize, Serialize};

/// A circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Node(pub(crate) usize);

impl Node {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a current source whose value can be changed mid-simulation
/// (cores are modelled as time-varying current sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CurrentSourceId(pub(crate) usize);

/// Identifier of an ideal voltage source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoltageSourceId(pub(crate) usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Resistor {
    pub a: usize,
    pub b: usize,
    pub ohms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Inductor {
    pub a: usize,
    pub b: usize,
    pub henries: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Capacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VoltageSource {
    pub pos: usize,
    pub neg: usize,
    pub volts: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CurrentSource {
    /// Current flows out of `from` through the source into `to` (i.e. a
    /// load drawing current from the `from` rail into the `to` rail).
    pub from: usize,
    pub to: usize,
    pub amps: f64,
}

/// An RLC netlist with ideal voltage sources and settable current sources.
///
/// # Examples
///
/// ```
/// use sprint_powergrid::netlist::{Circuit, Node};
///
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node();
/// ckt.vsource(vdd, Node::GROUND, 1.2);
/// let out = ckt.node();
/// ckt.resistor(vdd, out, 100.0);
/// ckt.capacitor(out, Node::GROUND, 1e-6);
/// assert_eq!(ckt.node_count(), 3); // ground + 2
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    pub(crate) node_count: usize,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) inductors: Vec<Inductor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vsources: Vec<VoltageSource>,
    pub(crate) isources: Vec<CurrentSource>,
}

impl Circuit {
    /// Creates a circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_count: 1,
            ..Self::default()
        }
    }

    /// Allocates a new node.
    pub fn node(&mut self) -> Node {
        let n = Node(self.node_count);
        self.node_count += 1;
        n
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    fn check(&self, n: Node) {
        assert!(n.0 < self.node_count, "node out of range");
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `ohms` is finite and strictly positive.
    pub fn resistor(&mut self, a: Node, b: Node, ohms: f64) {
        self.check(a);
        self.check(b);
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        assert_ne!(a, b, "resistor endpoints must differ");
        self.resistors.push(Resistor {
            a: a.0,
            b: b.0,
            ohms,
        });
    }

    /// Adds an inductor between `a` and `b` (initial current zero).
    ///
    /// # Panics
    ///
    /// Panics unless `henries` is finite and strictly positive.
    pub fn inductor(&mut self, a: Node, b: Node, henries: f64) {
        self.check(a);
        self.check(b);
        assert!(
            henries.is_finite() && henries > 0.0,
            "inductance must be positive"
        );
        assert_ne!(a, b, "inductor endpoints must differ");
        self.inductors.push(Inductor {
            a: a.0,
            b: b.0,
            henries,
        });
    }

    /// Adds a capacitor between `a` and `b` (initially discharged).
    ///
    /// # Panics
    ///
    /// Panics unless `farads` is finite and strictly positive.
    pub fn capacitor(&mut self, a: Node, b: Node, farads: f64) {
        self.check(a);
        self.check(b);
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        assert_ne!(a, b, "capacitor endpoints must differ");
        self.capacitors.push(Capacitor {
            a: a.0,
            b: b.0,
            farads,
        });
    }

    /// Adds a decoupling capacitor with equivalent series resistance: an
    /// internal node is created so the ESR is in series with the capacitor.
    pub fn decap(&mut self, a: Node, b: Node, farads: f64, esr_ohms: f64) {
        let inner = self.node();
        self.resistor(a, inner, esr_ohms);
        self.capacitor(inner, b, farads);
    }

    /// Adds an ideal DC voltage source (`pos` minus `neg` equals `volts`).
    pub fn vsource(&mut self, pos: Node, neg: Node, volts: f64) -> VoltageSourceId {
        self.check(pos);
        self.check(neg);
        assert!(volts.is_finite(), "voltage must be finite");
        self.vsources.push(VoltageSource {
            pos: pos.0,
            neg: neg.0,
            volts,
        });
        VoltageSourceId(self.vsources.len() - 1)
    }

    /// Adds a current source drawing `amps` from node `from` into node `to`
    /// (a load). The value can be changed during simulation via
    /// [`crate::transient::TransientSim::set_current`].
    pub fn isource(&mut self, from: Node, to: Node, amps: f64) -> CurrentSourceId {
        self.check(from);
        self.check(to);
        assert!(amps.is_finite(), "current must be finite");
        self.isources.push(CurrentSource {
            from: from.0,
            to: to.0,
            amps,
        });
        CurrentSourceId(self.isources.len() - 1)
    }

    /// Number of ideal voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.vsources.len()
    }

    /// Number of current sources.
    pub fn isource_count(&self) -> usize {
        self.isources.len()
    }

    /// Total element count (diagnostics).
    pub fn element_count(&self) -> usize {
        self.resistors.len()
            + self.inductors.len()
            + self.capacitors.len()
            + self.vsources.len()
            + self.isources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation_is_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.node().index(), 1);
        assert_eq!(c.node().index(), 2);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn decap_creates_internal_node() {
        let mut c = Circuit::new();
        let a = c.node();
        let before = c.node_count();
        c.decap(a, Node::GROUND, 1e-6, 0.01);
        assert_eq!(c.node_count(), before + 1);
        assert_eq!(c.resistors.len(), 1);
        assert_eq!(c.capacitors.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node();
        c.resistor(a, Node::GROUND, -5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_node_rejected() {
        let mut c = Circuit::new();
        c.resistor(Node(7), Node::GROUND, 1.0);
    }

    #[test]
    fn element_count_sums_all() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.resistor(a, b, 1.0);
        c.inductor(a, b, 1e-9);
        c.capacitor(a, b, 1e-9);
        c.vsource(a, Node::GROUND, 1.0);
        c.isource(a, b, 0.1);
        assert_eq!(c.element_count(), 5);
    }
}
