//! Thread-count determinism: the settlement barrier makes the facility
//! report a pure function of (specs, coupling, seed) — the worker count
//! only changes wall-clock time, never a single bit of the report.

use sprint_cluster::{ClusterPolicy, PowerPolicy, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

/// A facility with every coupling engaged: row airflow, a rationed
/// facility feed, power-rationed local admission, and bursty diurnal
/// traffic.
fn coupled_facility(racks: usize, seed: u64, tasks: usize) -> Facility {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            // Finite: a rack parked at the rationing floor cannot admit
            // sprints, so its queue must be allowed to degrade to
            // sustained runs instead of blocking.
            defer_s: 2e-4,
        })
        .power_policy(PowerPolicy::Rationed {
            sprint_draw_w: 14.0,
            shed_reserve_fraction: 0.5,
        })
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.05,
            crac_capacity_w: 8.0,
            max_inlet_c: 40.0,
        })
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 7.5,
            slot_w: 14.0,
        })
        // Oversubscribed: nameplates total 15 W per rack, the feed
        // carries ~97% of that — enough for the typical rack to sprint
        // (14 W booked per sprint), while a rack whose demand weight
        // dips below the mean is dealt less than a sprint's draw and
        // must defer or sustain: settlement genuinely moves admission.
        .facility_cap_w(14.5 * racks as f64)
        .epoch_windows(32)
        .traffic({
            let mut traffic = TrafficParams::frontend(seed, tasks, 60_000.0);
            // Keep the test fast: a B/C/D task that lands while its
            // rack is parked at the rationing floor runs sustained for
            // tens of simulated milliseconds. Determinism is about the
            // settlement machinery, not the tail; the tail's own
            // generation is golden-pinned in sprint-workloads.
            traffic.size_weights = [1.0, 0.0, 0.0, 0.0];
            traffic
        })
        .build()
}

#[test]
fn report_is_byte_identical_at_1_2_and_8_workers() {
    let facility = coupled_facility(8, 5, 16);
    let one = facility.run(1);
    let two = facility.run(2);
    let eight = facility.run(8);

    assert_eq!(one.completed, 16, "every task completes");
    assert!(one.all_drained);
    assert_eq!(
        one.digest(),
        two.digest(),
        "1 vs 2 workers: p99 {} vs {}",
        one.p99_latency_s,
        two.p99_latency_s
    );
    assert_eq!(
        one.digest(),
        eight.digest(),
        "1 vs 8 workers: p99 {} vs {}",
        one.p99_latency_s,
        eight.p99_latency_s
    );

    // The couplings actually fired (the determinism claim would be
    // vacuous over an uncoupled facility).
    assert!(
        one.peak_inlet_c > 25.0,
        "row recirculation never lifted an inlet (peak {})",
        one.peak_inlet_c
    );
    assert!(one.epochs > 1, "the settlement barrier ran more than once");
}

/// Two identically-parameterised facilities are two runs of the same
/// pure function; a different traffic seed is a different function.
#[test]
fn same_seed_same_report_different_seed_different_report() {
    let a = coupled_facility(4, 9, 8).run(3);
    let b = coupled_facility(4, 9, 8).run(4);
    assert_eq!(a.digest(), b.digest());
    let other = coupled_facility(4, 10, 8).run(3);
    assert_ne!(a.digest(), other.digest());
}
