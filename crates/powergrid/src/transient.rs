//! Transient circuit simulation via modified nodal analysis (MNA).
//!
//! Reactive elements are replaced by their *companion models*: a conductance
//! in parallel with a history current source whose value depends on the
//! previous step (trapezoidal rule by default, backward Euler optionally).
//! Because companion conductances depend only on the step size, the MNA
//! matrix is factored once and each step costs a single LU solve.

use serde::{Deserialize, Serialize};

use crate::linalg::{LuFactor, Matrix, SingularMatrix};
use crate::netlist::{Circuit, CurrentSourceId, Node, VoltageSourceId};

/// Numerical integration method for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Integration {
    /// Trapezoidal rule: second order, A-stable, no numerical damping.
    #[default]
    Trapezoidal,
    /// Backward Euler: first order, L-stable (damps under-resolved modes).
    BackwardEuler,
}

/// Errors from building a transient simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransientError {
    /// The MNA system is singular — typically a floating subcircuit or a
    /// loop of ideal voltage sources.
    Singular,
}

impl std::fmt::Display for TransientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransientError::Singular => {
                write!(
                    f,
                    "circuit produced a singular system (floating subcircuit?)"
                )
            }
        }
    }
}

impl std::error::Error for TransientError {}

impl From<SingularMatrix> for TransientError {
    fn from(_: SingularMatrix) -> Self {
        TransientError::Singular
    }
}

/// A compiled transient simulation over a [`Circuit`].
///
/// # Examples
///
/// ```
/// use sprint_powergrid::netlist::{Circuit, Node};
/// use sprint_powergrid::transient::{Integration, TransientSim};
///
/// // 1 V source behind 1 kΩ feeding a 1 µF rail cap; a 0.1 mA load
/// // switches on at t = 0 and sags the rail by I*R = 0.1 V.
/// let mut ckt = Circuit::new();
/// let vin = ckt.node();
/// let vout = ckt.node();
/// ckt.vsource(vin, Node::GROUND, 1.0);
/// ckt.resistor(vin, vout, 1e3);
/// ckt.capacitor(vout, Node::GROUND, 1e-6);
/// let load = ckt.isource(vout, Node::GROUND, 0.0);
///
/// let mut sim = TransientSim::new(&ckt, 1e-5, Integration::Trapezoidal).unwrap();
/// assert!((sim.voltage(vout) - 1.0).abs() < 1e-9); // settled DC start
/// sim.set_current(load, 1e-4);
/// for _ in 0..100 { sim.step(); } // 1 ms = 1 time constant
/// let expected = 1.0 - 0.1 * (1.0 - (-1.0f64).exp());
/// assert!((sim.voltage(vout) - expected).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct TransientSim {
    circuit: Circuit,
    dt: f64,
    method: Integration,
    lu: LuFactor,
    /// Solution vector: node voltages (ground excluded) then vsource branch
    /// currents.
    x: Vec<f64>,
    rhs: Vec<f64>,
    /// Per-inductor branch current (a to b), amps.
    inductor_current: Vec<f64>,
    /// Per-capacitor voltage (a minus b) and branch current.
    cap_voltage: Vec<f64>,
    cap_current: Vec<f64>,
    time_s: f64,
    unknowns: usize,
}

impl TransientSim {
    /// Compiles `circuit` for transient simulation with step `dt_s`.
    ///
    /// The initial state is the DC operating point for the circuit's
    /// *current* source values (inductors treated as shorts, capacitors as
    /// opens), so simulations start from settled rails rather than zero.
    ///
    /// # Errors
    ///
    /// Returns [`TransientError::Singular`] for degenerate circuits.
    ///
    /// # Panics
    ///
    /// Panics unless `dt_s` is finite and strictly positive.
    pub fn new(circuit: &Circuit, dt_s: f64, method: Integration) -> Result<Self, TransientError> {
        assert!(dt_s.is_finite() && dt_s > 0.0, "dt must be positive");
        let nv = circuit.node_count - 1;
        let unknowns = nv + circuit.vsources.len();
        let placeholder = {
            let mut m = Matrix::zeros(1);
            m.set(0, 0, 1.0);
            LuFactor::factor(m).expect("1x1 identity is nonsingular")
        };
        let mut sim = Self {
            circuit: circuit.clone(),
            dt: dt_s,
            method,
            lu: placeholder,
            x: vec![0.0; unknowns],
            rhs: vec![0.0; unknowns],
            inductor_current: vec![0.0; circuit.inductors.len()],
            cap_voltage: vec![0.0; circuit.capacitors.len()],
            cap_current: vec![0.0; circuit.capacitors.len()],
            time_s: 0.0,
            unknowns,
        };
        sim.dc_operating_point()?;
        sim.lu = LuFactor::factor(sim.build_matrix())?;
        Ok(sim)
    }

    /// Row index for a node, or `None` for ground.
    #[inline]
    fn row(node: usize) -> Option<usize> {
        node.checked_sub(1)
    }

    /// Conductance of an inductor's companion model.
    fn l_geq(&self, henries: f64) -> f64 {
        match self.method {
            Integration::Trapezoidal => self.dt / (2.0 * henries),
            Integration::BackwardEuler => self.dt / henries,
        }
    }

    /// Conductance of a capacitor's companion model.
    fn c_geq(&self, farads: f64) -> f64 {
        match self.method {
            Integration::Trapezoidal => 2.0 * farads / self.dt,
            Integration::BackwardEuler => farads / self.dt,
        }
    }

    fn stamp_conductance(m: &mut Matrix, a: usize, b: usize, g: f64) {
        if let Some(ra) = Self::row(a) {
            m.add(ra, ra, g);
        }
        if let Some(rb) = Self::row(b) {
            m.add(rb, rb, g);
        }
        if let (Some(ra), Some(rb)) = (Self::row(a), Self::row(b)) {
            m.add(ra, rb, -g);
            m.add(rb, ra, -g);
        }
    }

    fn build_matrix(&self) -> Matrix {
        let nv = self.circuit.node_count - 1;
        let mut m = Matrix::zeros(self.unknowns);
        for r in &self.circuit.resistors {
            Self::stamp_conductance(&mut m, r.a, r.b, 1.0 / r.ohms);
        }
        for l in &self.circuit.inductors {
            Self::stamp_conductance(&mut m, l.a, l.b, self.l_geq(l.henries));
        }
        for c in &self.circuit.capacitors {
            Self::stamp_conductance(&mut m, c.a, c.b, self.c_geq(c.farads));
        }
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let col = nv + k;
            if let Some(rp) = Self::row(v.pos) {
                m.add(rp, col, 1.0);
                m.add(col, rp, 1.0);
            }
            if let Some(rn) = Self::row(v.neg) {
                m.add(rn, col, -1.0);
                m.add(col, rn, -1.0);
            }
        }
        m
    }

    /// Solves the DC operating point: inductors become near-shorts (1 µΩ),
    /// capacitors open. Initializes companion states from the solution.
    fn dc_operating_point(&mut self) -> Result<(), TransientError> {
        const L_SHORT_OHMS: f64 = 1e-6;
        let nv = self.circuit.node_count - 1;
        let mut m = Matrix::zeros(self.unknowns);
        for r in &self.circuit.resistors {
            Self::stamp_conductance(&mut m, r.a, r.b, 1.0 / r.ohms);
        }
        for l in &self.circuit.inductors {
            Self::stamp_conductance(&mut m, l.a, l.b, 1.0 / L_SHORT_OHMS);
        }
        // Capacitors: tiny conductance keeps otherwise-floating internal
        // decap nodes (behind an ESR) well-defined without affecting the
        // solution materially.
        for c in &self.circuit.capacitors {
            Self::stamp_conductance(&mut m, c.a, c.b, 1e-12);
        }
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let col = nv + k;
            if let Some(rp) = Self::row(v.pos) {
                m.add(rp, col, 1.0);
                m.add(col, rp, 1.0);
            }
            if let Some(rn) = Self::row(v.neg) {
                m.add(rn, col, -1.0);
                m.add(col, rn, -1.0);
            }
        }
        let mut rhs = vec![0.0; self.unknowns];
        for s in &self.circuit.isources {
            if let Some(rf) = Self::row(s.from) {
                rhs[rf] -= s.amps;
            }
            if let Some(rt) = Self::row(s.to) {
                rhs[rt] += s.amps;
            }
        }
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            rhs[nv + k] = v.volts;
        }
        let lu = LuFactor::factor(m)?;
        lu.solve_in_place(&mut rhs);
        self.x.copy_from_slice(&rhs);
        // Initialise companion states.
        let volt = |x: &[f64], n: usize| -> f64 {
            match Self::row(n) {
                Some(r) => x[r],
                None => 0.0,
            }
        };
        for (k, l) in self.circuit.inductors.iter().enumerate() {
            let v_ab = volt(&self.x, l.a) - volt(&self.x, l.b);
            self.inductor_current[k] = v_ab / L_SHORT_OHMS;
        }
        for (k, c) in self.circuit.capacitors.iter().enumerate() {
            self.cap_voltage[k] = volt(&self.x, c.a) - volt(&self.x, c.b);
            self.cap_current[k] = 0.0;
        }
        Ok(())
    }

    /// Node voltage, volts (zero for ground).
    pub fn voltage(&self, node: Node) -> f64 {
        match Self::row(node.0) {
            Some(r) => self.x[r],
            None => 0.0,
        }
    }

    /// Differential voltage `a - b`.
    pub fn voltage_between(&self, a: Node, b: Node) -> f64 {
        self.voltage(a) - self.voltage(b)
    }

    /// Current delivered by a voltage source from its positive terminal
    /// into the circuit, amps.
    pub fn source_current(&self, id: VoltageSourceId) -> f64 {
        let nv = self.circuit.node_count - 1;
        -self.x[nv + id.0]
    }

    /// Updates the value of a current source (takes effect next step).
    pub fn set_current(&mut self, id: CurrentSourceId, amps: f64) {
        assert!(amps.is_finite(), "current must be finite");
        self.circuit.isources[id.0].amps = amps;
    }

    /// Current value of a current source, amps.
    pub fn current(&self, id: CurrentSourceId) -> f64 {
        self.circuit.isources[id.0].amps
    }

    /// Simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Fixed step size, seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt
    }

    /// Advances the simulation by one step of `dt`.
    pub fn step(&mut self) {
        let nv = self.circuit.node_count - 1;
        let volt = |x: &[f64], n: usize| -> f64 {
            match Self::row(n) {
                Some(r) => x[r],
                None => 0.0,
            }
        };
        let rhs = &mut self.rhs;
        rhs.iter_mut().for_each(|v| *v = 0.0);
        // Independent current sources (loads).
        for s in &self.circuit.isources {
            if let Some(rf) = Self::row(s.from) {
                rhs[rf] -= s.amps;
            }
            if let Some(rt) = Self::row(s.to) {
                rhs[rt] += s.amps;
            }
        }
        // Inductor history: current from a to b is
        //   i_{n+1} = Geq * v_ab,{n+1} + I_hist.
        for (k, l) in self.circuit.inductors.iter().enumerate() {
            let geq = match self.method {
                Integration::Trapezoidal => self.dt / (2.0 * l.henries),
                Integration::BackwardEuler => self.dt / l.henries,
            };
            let i_hist = match self.method {
                Integration::Trapezoidal => {
                    let v_ab = volt(&self.x, l.a) - volt(&self.x, l.b);
                    self.inductor_current[k] + geq * v_ab
                }
                Integration::BackwardEuler => self.inductor_current[k],
            };
            // I_hist flows a -> b: leaves a, enters b.
            if let Some(ra) = Self::row(l.a) {
                rhs[ra] -= i_hist;
            }
            if let Some(rb) = Self::row(l.b) {
                rhs[rb] += i_hist;
            }
        }
        // Capacitor history: i_{n+1} = Geq * v_ab,{n+1} + I_hist with
        //   TR: I_hist = -(Geq * v_n + i_n);  BE: I_hist = -Geq * v_n.
        for (k, c) in self.circuit.capacitors.iter().enumerate() {
            let geq = match self.method {
                Integration::Trapezoidal => 2.0 * c.farads / self.dt,
                Integration::BackwardEuler => c.farads / self.dt,
            };
            let i_hist = match self.method {
                Integration::Trapezoidal => -(geq * self.cap_voltage[k] + self.cap_current[k]),
                Integration::BackwardEuler => -geq * self.cap_voltage[k],
            };
            if let Some(ra) = Self::row(c.a) {
                rhs[ra] -= i_hist;
            }
            if let Some(rb) = Self::row(c.b) {
                rhs[rb] += i_hist;
            }
        }
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            rhs[nv + k] = v.volts;
        }
        self.lu.solve_in_place(rhs);
        std::mem::swap(&mut self.x, rhs);
        // Update companion states from the new solution.
        for (k, l) in self.circuit.inductors.iter().enumerate() {
            let v_ab_new = volt(&self.x, l.a) - volt(&self.x, l.b);
            self.inductor_current[k] = match self.method {
                Integration::Trapezoidal => {
                    // recompute hist against previous x stored in rhs
                    let v_ab_old = volt(rhs, l.a) - volt(rhs, l.b);
                    self.inductor_current[k] + self.dt / (2.0 * l.henries) * (v_ab_old + v_ab_new)
                }
                Integration::BackwardEuler => {
                    self.inductor_current[k] + self.dt / l.henries * v_ab_new
                }
            };
        }
        for (k, c) in self.circuit.capacitors.iter().enumerate() {
            let v_new = volt(&self.x, c.a) - volt(&self.x, c.b);
            let geq = self.c_geq(c.farads);
            self.cap_current[k] = match self.method {
                Integration::Trapezoidal => {
                    geq * (v_new - self.cap_voltage[k]) - self.cap_current[k]
                }
                Integration::BackwardEuler => geq * (v_new - self.cap_voltage[k]),
            };
            self.cap_voltage[k] = v_new;
        }
        self.time_s += self.dt;
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.vsource(vin, Node::GROUND, 10.0);
        ckt.resistor(vin, mid, 1000.0);
        ckt.resistor(mid, Node::GROUND, 1000.0);
        let sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        assert!((sim.voltage(mid) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rc_step_response() {
        // Start discharged by forcing zero source, then step to 1 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.vsource(vin, Node::GROUND, 1.0);
        ckt.resistor(vin, vout, 1e3);
        ckt.capacitor(vout, Node::GROUND, 1e-6);
        // DC init charges the cap to 1 V; discharge it by replacing state:
        // instead build with a 0 V source and raise it. Simpler: build a
        // second circuit with source at 0 is not possible post-hoc, so test
        // the settled solution and a perturbation via the current source.
        let mut sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        assert!(
            (sim.voltage(vout) - 1.0).abs() < 1e-6,
            "DC init should settle the cap"
        );
        sim.run(100);
        assert!(
            (sim.voltage(vout) - 1.0).abs() < 1e-6,
            "settled circuit stays settled"
        );
    }

    #[test]
    fn rc_discharge_through_load_switch() {
        // Cap charged to 1 V; at t=0 a 1 mA load switches on, and the
        // source resistance causes a drop of I*R = 0.1 V at the output.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.vsource(vin, Node::GROUND, 1.0);
        ckt.resistor(vin, vout, 100.0);
        ckt.capacitor(vout, Node::GROUND, 1e-6);
        let load = ckt.isource(vout, Node::GROUND, 0.0);
        let mut sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        sim.set_current(load, 1e-3);
        // tau = 100 Ω * 1 µF = 100 µs; run 10 tau.
        sim.run(1000);
        assert!((sim.voltage(vout) - 0.9).abs() < 1e-4);
        // Analytic check at one tau from switch-on: v = 1 - 0.1(1 - e^-1).
        let mut sim2 = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        sim2.set_current(load, 1e-3);
        sim2.run(100);
        let expected = 1.0 - 0.1 * (1.0 - (-1.0f64).exp());
        assert!(
            (sim2.voltage(vout) - expected).abs() < 1e-3,
            "got {}, want {expected}",
            sim2.voltage(vout)
        );
    }

    #[test]
    fn rl_current_rise() {
        // 1 V across R=1 Ω + L=1 mH: i(t) = 1 - e^{-t/(L/R)}, tau = 1 ms.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        let vs = ckt.vsource(vin, Node::GROUND, 1.0);
        ckt.resistor(vin, mid, 1.0);
        ckt.inductor(mid, Node::GROUND, 1e-3);
        // DC init gives i = 1 A already (inductor short). Check it.
        let sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        assert!((sim.source_current(vs) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn lc_oscillation_frequency() {
        // LC tank: charge C to 1 V, let it ring through L.
        // f = 1/(2π sqrt(LC)); L = 1 µH, C = 1 µF → f ≈ 159 kHz.
        let mut ckt = Circuit::new();
        let top = ckt.node();
        ckt.capacitor(top, Node::GROUND, 1e-6);
        ckt.inductor(top, Node::GROUND, 1e-6);
        // Kick the tank with a current source pulse.
        let kick = ckt.isource(Node::GROUND, top, 0.0);
        let mut sim = TransientSim::new(&ckt, 1e-8, Integration::Trapezoidal).unwrap();
        sim.set_current(kick, 1.0);
        sim.run(50); // 0.5 µs kick
        sim.set_current(kick, 0.0);
        // Measure period between positive-going zero crossings.
        let mut last_v = sim.voltage(top);
        let mut crossings = Vec::new();
        for _ in 0..2000 {
            sim.step();
            let v = sim.voltage(top);
            if last_v < 0.0 && v >= 0.0 {
                crossings.push(sim.time_s());
            }
            last_v = v;
        }
        assert!(crossings.len() >= 2, "tank must oscillate");
        let period = crossings[1] - crossings[0];
        let f = 1.0 / period;
        let expected = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-6).sqrt());
        assert!(
            (f - expected).abs() / expected < 0.02,
            "f = {f:.0} Hz, expected {expected:.0} Hz"
        );
    }

    #[test]
    fn backward_euler_damps_but_converges_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let out = ckt.node();
        ckt.vsource(vin, Node::GROUND, 1.2);
        ckt.resistor(vin, out, 0.01);
        ckt.inductor(vin, out, 1e-9);
        ckt.capacitor(out, Node::GROUND, 1e-6);
        let load = ckt.isource(out, Node::GROUND, 0.0);
        let mut sim = TransientSim::new(&ckt, 1e-8, Integration::BackwardEuler).unwrap();
        sim.set_current(load, 2.0);
        sim.run(20_000);
        // The inductor is a DC short in parallel with the resistor, so the
        // output recovers to (nearly) the full rail despite the load.
        let v = sim.voltage(out);
        assert!((v - 1.2).abs() < 0.02, "v = {v}");
    }

    #[test]
    fn energy_balance_resistive() {
        // Power from source equals power in resistors at DC.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        let vs = ckt.vsource(vin, Node::GROUND, 2.0);
        ckt.resistor(vin, mid, 5.0);
        ckt.resistor(mid, Node::GROUND, 5.0);
        let sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        let i = sim.source_current(vs);
        assert!((i - 0.2).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn singular_circuit_detected() {
        // A node connected only by a capacitor to a floating island of
        // resistors with no DC path anywhere — construct a truly floating
        // resistor pair.
        let mut ckt = Circuit::new();
        let a = ckt.node();
        let b = ckt.node();
        ckt.resistor(a, b, 1.0); // island: no path to ground at all
        let r = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal);
        assert!(matches!(r, Err(TransientError::Singular)));
    }
}
