//! Deterministic fault injection for the sprint stack.
//!
//! The paper's whole premise is operating silicon past sustainable
//! limits on the faith that thermal and electrical telemetry always
//! work. This module makes that faith testable: a [`FaultPlan`] is a
//! seeded, window-stamped schedule of sensor faults (stuck-at, bias,
//! dropout), supply faults (efficiency collapse, transient brownout,
//! hard regulator death) and node crash/recovery, and two wrapper
//! *ports* — [`FaultSensor`] over any [`ThermalModel`] and
//! [`FaultSupply`] over any [`PowerSupply`] — inject the live fault
//! state into the co-simulation loop without the loop knowing.
//!
//! # The fault ports
//!
//! Like the thermal and supply ports they compose over, the wrappers
//! are transparent when healthy: with no fault active every method
//! delegates to the inner backend bit-for-bit, so wrapping a node
//! unconditionally is digest-neutral — a fault-free wrapped run is
//! byte-identical to an unwrapped one. Fault state lives in a shared
//! [`FaultState`] cell (one per node, `Rc`-shared between the node's
//! sensor wrapper, supply wrapper and the scheduler that flips it), so
//! injecting a fault is a data write, never a structural change.
//!
//! Two contracts keep the event-driven cluster core's byte-for-byte
//! equivalence with the lockstep oracle intact under any plan:
//!
//! * **Idle paths are fault-transparent.** `idle_recharge` /
//!   `idle_recharge_many` and `advance` / `advance_many` always
//!   delegate — a faulted *sensor* lies about readings, it does not
//!   change the physics, and a faulted *supply* still settles its
//!   pool clock. Batched idle replay therefore stays bit-identical to
//!   the looped path whatever the fault state.
//! * **Fault values are integer-derived.** [`FaultPlan::seeded`] draws
//!   every stuck-at temperature, bias and collapse factor from integer
//!   arithmetic mapped onto exactly-representable `f64`s, so a plan is
//!   reproducible across platforms from its seed alone.
//!
//! The cluster layer decides the *response* ([`FaultResponse`]):
//! degradation-aware scheduling treats a lying sensor as hot (failsafe
//! throttle), re-enqueues a crashed node's task under the plan's retry
//! budget with exponential window backoff, quarantines the node and
//! returns its nameplate share to the rack pool; an oblivious
//! scheduler consumes the corrupted readings as-is — the comparison
//! `repro faults` quantifies.

use std::cell::Cell;
use std::rc::Rc;

use sprint_powersource::battery::SupplyError;

use crate::supply::PowerSupply;
use crate::thermal_model::ThermalModel;

/// A sensor fault mode currently active on a node's thermal telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The sensor reports this fixed temperature, Celsius, regardless
    /// of the true junction state.
    StuckAt(f64),
    /// The sensor reports the true junction temperature plus this
    /// offset, Kelvin.
    Bias(f64),
    /// The sensor returns no reading (`NaN`).
    Dropout,
}

/// A supply fault mode currently active on a node's power delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupplyFault {
    /// Conversion efficiency has collapsed: delivering `P` downstream
    /// draws `scale * P` through the stack (`scale > 1`).
    Collapsed(f64),
    /// Transient brownout: the regulator delivers nothing, but the
    /// stage is expected back (a matching clear follows in the plan).
    Brownout,
    /// Hard regulator death: permanently delivers nothing.
    Dead,
}

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Sensor sticks at a fixed reading, Celsius.
    SensorStuck(f64),
    /// Sensor gains a constant bias, Kelvin.
    SensorBias(f64),
    /// Sensor drops out (reads `NaN`).
    SensorDropout,
    /// Sensor telemetry recovers.
    SensorClear,
    /// Supply efficiency collapses by this factor (`> 1`).
    SupplyCollapse(f64),
    /// Supply browns out (delivers nothing, transiently).
    SupplyBrownout,
    /// Supply dies (delivers nothing, permanently).
    SupplyDead,
    /// Supply recovers from a collapse or brownout.
    SupplyClear,
    /// The node crashes. A busy node loses its in-flight task (the
    /// cluster re-enqueues it under the retry budget) and is
    /// quarantined; an idle node merely goes down until recovery.
    NodeCrash,
    /// The node comes back, unless it was quarantined.
    NodeRecover,
}

/// A window-stamped fault transition on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Sampling window (cluster window count) at which the transition
    /// fires, before that window's scheduling pass.
    pub window: u64,
    /// Target node index.
    pub node: u32,
    /// The transition.
    pub kind: FaultKind,
}

/// How the cluster scheduler reacts to injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultResponse {
    /// Graceful degradation: a faulted sensor triggers the
    /// treat-as-hot failsafe (the node is throttled and denied
    /// admission), crashed nodes are quarantined and their nameplate
    /// share returned to the rack pool, and lost tasks are re-enqueued
    /// with bounded retries.
    #[default]
    Aware,
    /// The scheduler consumes corrupted telemetry as-is: a stuck-cold
    /// sensor keeps winning admission, a dead node's share stays
    /// booked. Tasks are still re-enqueued (losing work silently would
    /// break the conservation invariant, not prove a point), but
    /// nothing else adapts. The baseline `repro faults` degrades
    /// against.
    Oblivious,
}

/// Mean-gap / hold-time knobs for [`FaultPlan::seeded`], all in
/// sampling windows. A zero mean gap disables that fault family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultRates {
    /// Mean windows between sensor-fault onsets per node (0 = never).
    pub mean_sensor_gap_windows: u64,
    /// Windows a sensor fault holds before clearing.
    pub sensor_hold_windows: u64,
    /// Mean windows between crashes per node (0 = never).
    pub mean_crash_gap_windows: u64,
    /// Windows a crash holds before the recovery attempt.
    pub crash_hold_windows: u64,
    /// Mean windows between supply-fault onsets per node (0 = never).
    pub mean_supply_gap_windows: u64,
    /// Windows a collapse/brownout holds before clearing (a dead
    /// regulator never clears).
    pub supply_hold_windows: u64,
}

/// A seeded, deterministic schedule of fault transitions plus the
/// recovery budget the cluster applies when they cost a task.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The schedule, sorted by `(window, node)` with generation order
    /// breaking ties.
    pub events: Vec<FaultEvent>,
    /// How many times a task lost to a crash is re-enqueued before it
    /// is declared failed.
    pub max_retries: u32,
    /// Base re-enqueue delay, windows; retry `k` waits
    /// `backoff_windows << (k - 1)` windows (exponential backoff).
    pub backoff_windows: u64,
    /// The scheduler's reaction to injected faults.
    pub response: FaultResponse,
}

/// The splitmix64 step: one 64-bit draw, advancing the stream state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An explicit schedule under the default retry budget (3 retries,
    /// 8-window base backoff, degradation-aware response). Events are
    /// stably sorted into `(window, node)` order.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.window, e.node));
        Self {
            events,
            max_retries: 3,
            backoff_windows: 8,
            response: FaultResponse::Aware,
        }
    }

    /// An empty plan: no faults, default budget. Running under it is
    /// byte-identical to running without a plan at all.
    pub fn none() -> Self {
        Self::new(Vec::new())
    }

    /// Generates a seeded schedule over `nodes` nodes and
    /// `horizon_windows` windows. Each `(node, fault family)` pair
    /// gets its own splitmix64 stream, so changing one rate never
    /// perturbs another family's schedule. Onset gaps are uniform on
    /// `[1, 2 * mean_gap]`; every fault value is drawn from integer
    /// arithmetic mapped onto exactly-representable `f64`s
    /// (stuck-at 20–119 °C, bias −10..=+10 K, collapse 1.25–3.0 in
    /// quarter steps), so the plan is bit-reproducible from its seed.
    pub fn seeded(seed: u64, nodes: usize, horizon_windows: u64, rates: FaultRates) -> Self {
        let mut events = Vec::new();
        for node in 0..nodes as u32 {
            for family in 0u64..3 {
                let (mean_gap, hold) = match family {
                    0 => (rates.mean_sensor_gap_windows, rates.sensor_hold_windows),
                    1 => (rates.mean_crash_gap_windows, rates.crash_hold_windows),
                    _ => (rates.mean_supply_gap_windows, rates.supply_hold_windows),
                };
                if mean_gap == 0 {
                    continue;
                }
                let mut s = seed
                    ^ (node as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
                    ^ (family + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
                let mut w = 0u64;
                loop {
                    let gap = 1 + splitmix64(&mut s) % (2 * mean_gap);
                    w = w.saturating_add(gap);
                    if w >= horizon_windows {
                        break;
                    }
                    let (onset, clear) = match family {
                        0 => {
                            let pick = splitmix64(&mut s);
                            let kind = match pick % 3 {
                                0 => {
                                    FaultKind::SensorStuck(20.0 + (splitmix64(&mut s) % 100) as f64)
                                }
                                1 => {
                                    FaultKind::SensorBias(-10.0 + (splitmix64(&mut s) % 21) as f64)
                                }
                                _ => FaultKind::SensorDropout,
                            };
                            (kind, Some(FaultKind::SensorClear))
                        }
                        1 => (FaultKind::NodeCrash, Some(FaultKind::NodeRecover)),
                        _ => {
                            let pick = splitmix64(&mut s);
                            match pick % 3 {
                                0 => {
                                    let scale = 1.25 + (splitmix64(&mut s) % 8) as f64 * 0.25;
                                    (
                                        FaultKind::SupplyCollapse(scale),
                                        Some(FaultKind::SupplyClear),
                                    )
                                }
                                1 => (FaultKind::SupplyBrownout, Some(FaultKind::SupplyClear)),
                                _ => (FaultKind::SupplyDead, None),
                            }
                        }
                    };
                    events.push(FaultEvent {
                        window: w,
                        node,
                        kind: onset,
                    });
                    let Some(clear_kind) = clear else { break };
                    let clear_w = w.saturating_add(hold.max(1));
                    if clear_w < horizon_windows {
                        events.push(FaultEvent {
                            window: clear_w,
                            node,
                            kind: clear_kind,
                        });
                    }
                    w = clear_w;
                }
            }
        }
        Self::new(events)
    }

    /// Sets the scheduler's fault response.
    pub fn with_response(mut self, response: FaultResponse) -> Self {
        self.response = response;
        self
    }

    /// Sets the retry budget: `max_retries` re-enqueues with a
    /// `backoff_windows` base delay (doubling per retry).
    ///
    /// # Panics
    ///
    /// Panics on a zero backoff — a zero delay would re-enqueue into
    /// the same window the crash fired in.
    pub fn with_retries(mut self, max_retries: u32, backoff_windows: u64) -> Self {
        assert!(
            backoff_windows >= 1,
            "retry backoff must be at least one window"
        );
        self.max_retries = max_retries;
        self.backoff_windows = backoff_windows;
        self
    }

    /// Validates the plan against a cluster shape.
    ///
    /// # Panics
    ///
    /// Panics when an event targets a node the cluster does not have,
    /// when the backoff is zero, or when the schedule is unsorted.
    pub fn validate(&self, nodes: usize) {
        assert!(
            self.backoff_windows >= 1,
            "retry backoff must be at least one window"
        );
        let mut prev = (0u64, 0u32);
        for e in &self.events {
            assert!(
                (e.node as usize) < nodes,
                "fault plan targets node {} but the cluster has {nodes}",
                e.node
            );
            assert!(
                (e.window, e.node) >= prev,
                "fault plan must be sorted by (window, node)"
            );
            if let FaultKind::SupplyCollapse(scale) = e.kind {
                assert!(
                    scale.is_finite() && scale > 1.0,
                    "a supply collapse must scale draws above unity, got {scale}"
                );
            }
            prev = (e.window, e.node);
        }
    }
}

/// The live fault state of one node, shared (`Rc`) between the node's
/// [`FaultSensor`], its [`FaultSupply`] and the scheduler applying the
/// plan. Interior mutability keeps injection a plain data write.
#[derive(Debug, Default)]
pub struct FaultState {
    sensor: Cell<Option<SensorFault>>,
    supply: Cell<Option<SupplyFault>>,
}

impl FaultState {
    /// The active sensor fault, if any.
    pub fn sensor(&self) -> Option<SensorFault> {
        self.sensor.get()
    }

    /// Sets (or clears) the sensor fault.
    pub fn set_sensor(&self, fault: Option<SensorFault>) {
        self.sensor.set(fault);
    }

    /// The active supply fault, if any.
    pub fn supply(&self) -> Option<SupplyFault> {
        self.supply.get()
    }

    /// Sets (or clears) the supply fault. Clearing never resurrects a
    /// dead regulator: `Dead` is sticky against `None`.
    pub fn set_supply(&self, fault: Option<SupplyFault>) {
        if fault.is_none() && self.supply.get() == Some(SupplyFault::Dead) {
            return;
        }
        self.supply.set(fault);
    }
}

/// A thermal port whose *readings* can fault while the physics stays
/// honest: `advance`, `advance_many` and the power setters always
/// delegate (heat flows whatever the sensor claims), but the
/// temperature queries — `junction_temp_c`, `headroom_k`,
/// `at_thermal_limit` — report through the active [`SensorFault`].
/// With no fault active every method is a bit-identical passthrough.
#[derive(Debug)]
pub struct FaultSensor<T> {
    inner: T,
    state: Rc<FaultState>,
}

impl<T: ThermalModel> FaultSensor<T> {
    /// Wraps `inner` behind the shared fault state.
    pub fn new(inner: T, state: Rc<FaultState>) -> Self {
        Self { inner, state }
    }

    /// The wrapped backend (true physics, fault-free readings).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The shared fault state.
    pub fn state(&self) -> &Rc<FaultState> {
        &self.state
    }
}

impl<T: ThermalModel> ThermalModel for FaultSensor<T> {
    fn set_chip_power_w(&mut self, watts: f64) {
        self.inner.set_chip_power_w(watts);
    }

    fn set_active_core_count(&mut self, cores: usize) {
        self.inner.set_active_core_count(cores);
    }

    fn advance(&mut self, dt_s: f64) {
        self.inner.advance(dt_s);
    }

    fn advance_many(&mut self, dt_s: f64, count: u64) {
        self.inner.advance_many(dt_s, count);
    }

    fn junction_temp_c(&self) -> f64 {
        match self.state.sensor() {
            None => self.inner.junction_temp_c(),
            Some(SensorFault::StuckAt(v)) => v,
            Some(SensorFault::Bias(d)) => self.inner.junction_temp_c() + d,
            Some(SensorFault::Dropout) => f64::NAN,
        }
    }

    fn headroom_k(&self) -> f64 {
        match self.state.sensor() {
            None => self.inner.headroom_k(),
            // Derived from the corrupted reading, exactly as a governor
            // computing headroom from its telemetry would (a dropout
            // yields NaN headroom — the consumer decides what that
            // means).
            Some(_) => self.inner.t_max_c() - self.junction_temp_c(),
        }
    }

    fn melt_fraction(&self) -> f64 {
        self.inner.melt_fraction()
    }

    fn at_thermal_limit(&self) -> bool {
        match self.state.sensor() {
            None => self.inner.at_thermal_limit(),
            // NaN compares false: a dropped-out sensor never trips the
            // limit check — which is exactly why the cluster's Aware
            // response refuses to sprint on one.
            Some(_) => self.junction_temp_c() >= self.inner.t_max_c() - 1e-9,
        }
    }

    fn sprint_energy_budget_j(&self) -> f64 {
        self.inner.sprint_energy_budget_j()
    }

    fn t_max_c(&self) -> f64 {
        self.inner.t_max_c()
    }

    fn ambient_c(&self) -> f64 {
        self.inner.ambient_c()
    }
}

/// A supply port whose delivery can fault: a collapse inflates every
/// draw, a brownout or death refuses delivery (while still settling
/// the inner stack's clock with a zero-power draw, so shared-pool
/// accounting stays causal). Idle recharge always delegates — idle
/// paths are fault-transparent, which is what keeps batched idle
/// replay bit-identical under any fault state.
#[derive(Debug)]
pub struct FaultSupply<S> {
    inner: S,
    state: Rc<FaultState>,
}

impl<S: PowerSupply> FaultSupply<S> {
    /// Wraps `inner` behind the shared fault state.
    pub fn new(inner: S, state: Rc<FaultState>) -> Self {
        Self { inner, state }
    }

    /// The wrapped supply.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The shared fault state.
    pub fn state(&self) -> &Rc<FaultState> {
        &self.state
    }
}

impl<S: PowerSupply> PowerSupply for FaultSupply<S> {
    fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        match self.state.supply() {
            None => self.inner.draw(power_w, dt_s),
            Some(SupplyFault::Collapsed(scale)) => {
                // Report limits in the chip's (unscaled) terms.
                match self.inner.draw(power_w * scale, dt_s) {
                    Ok(()) => Ok(()),
                    Err(SupplyError::CurrentLimit { available_w, .. }) => {
                        Err(SupplyError::CurrentLimit {
                            requested_w: power_w,
                            available_w: available_w / scale,
                        })
                    }
                    Err(e) => Err(e),
                }
            }
            Some(SupplyFault::Brownout) | Some(SupplyFault::Dead) => {
                // Deliver nothing, but keep the inner stack's clock
                // settled: a shared-pool view must see this node's
                // window elapse (at zero draw) or the pool's leader
                // settlement would run ahead of it.
                let _ = self.inner.draw(0.0, dt_s);
                Err(SupplyError::CurrentLimit {
                    requested_w: power_w,
                    available_w: 0.0,
                })
            }
        }
    }

    fn available_power_w(&self) -> f64 {
        match self.state.supply() {
            None => self.inner.available_power_w(),
            Some(SupplyFault::Collapsed(scale)) => self.inner.available_power_w() / scale,
            Some(SupplyFault::Brownout) | Some(SupplyFault::Dead) => 0.0,
        }
    }

    fn remaining_energy_j(&self) -> f64 {
        self.inner.remaining_energy_j()
    }

    fn idle_recharge(&mut self, dt_s: f64) -> f64 {
        self.inner.idle_recharge(dt_s)
    }

    fn idle_recharge_many(&mut self, dt_s: f64, count: u64) -> f64 {
        self.inner.idle_recharge_many(dt_s, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::IdealSupply;
    use crate::thermal_model::LumpedThermal;

    fn lumped() -> LumpedThermal {
        LumpedThermal::server_heatsink()
    }

    #[test]
    fn healthy_wrappers_are_bit_identical_passthrough() {
        let state = Rc::new(FaultState::default());
        let mut bare = lumped();
        let mut wrapped = FaultSensor::new(lumped(), state.clone());
        for _ in 0..50 {
            bare.set_chip_power_w(16.0);
            wrapped.set_chip_power_w(16.0);
            bare.advance(1e-3);
            wrapped.advance(1e-3);
            assert_eq!(
                bare.junction_temp_c().to_bits(),
                wrapped.junction_temp_c().to_bits()
            );
            assert_eq!(bare.headroom_k().to_bits(), wrapped.headroom_k().to_bits());
            assert_eq!(bare.at_thermal_limit(), wrapped.at_thermal_limit());
        }
        let mut supply = FaultSupply::new(IdealSupply, state);
        assert!(supply.draw(16.0, 1e-3).is_ok());
        assert_eq!(supply.available_power_w(), f64::INFINITY);
    }

    #[test]
    fn sensor_faults_corrupt_readings_not_physics() {
        let state = Rc::new(FaultState::default());
        let mut s = FaultSensor::new(lumped(), state.clone());
        s.set_chip_power_w(16.0);
        s.advance(0.5);
        let truth = s.inner().junction_temp_c();

        state.set_sensor(Some(SensorFault::StuckAt(30.0)));
        assert_eq!(s.junction_temp_c(), 30.0);
        state.set_sensor(Some(SensorFault::Bias(5.0)));
        assert_eq!(s.junction_temp_c().to_bits(), (truth + 5.0).to_bits());
        state.set_sensor(Some(SensorFault::Dropout));
        assert!(s.junction_temp_c().is_nan());
        assert!(s.headroom_k().is_nan());
        assert!(!s.at_thermal_limit(), "NaN never trips the limit");
        // The physics underneath never lied.
        assert_eq!(s.inner().junction_temp_c().to_bits(), truth.to_bits());
        state.set_sensor(None);
        assert_eq!(s.junction_temp_c().to_bits(), truth.to_bits());
    }

    #[test]
    fn stuck_hot_sensor_trips_the_limit() {
        let state = Rc::new(FaultState::default());
        let s = FaultSensor::new(lumped(), state.clone());
        state.set_sensor(Some(SensorFault::StuckAt(200.0)));
        assert!(s.at_thermal_limit());
        assert!(s.headroom_k() < 0.0);
    }

    #[test]
    fn supply_faults_refuse_delivery_and_dead_is_sticky() {
        let state = Rc::new(FaultState::default());
        let mut s = FaultSupply::new(IdealSupply, state.clone());
        state.set_supply(Some(SupplyFault::Brownout));
        assert_eq!(s.available_power_w(), 0.0);
        assert!(matches!(
            s.draw(16.0, 1e-3),
            Err(SupplyError::CurrentLimit { available_w, .. }) if available_w == 0.0
        ));
        state.set_supply(None);
        assert!(s.draw(16.0, 1e-3).is_ok(), "brownout clears");
        state.set_supply(Some(SupplyFault::Dead));
        state.set_supply(None);
        assert!(s.draw(16.0, 1e-3).is_err(), "a dead regulator never clears");
        // Idle recharge stays fault-transparent.
        assert_eq!(s.idle_recharge(1.0), 0.0);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_sorted() {
        let rates = FaultRates {
            mean_sensor_gap_windows: 40,
            sensor_hold_windows: 25,
            mean_crash_gap_windows: 90,
            crash_hold_windows: 60,
            mean_supply_gap_windows: 70,
            supply_hold_windows: 30,
        };
        let a = FaultPlan::seeded(2012, 9, 4000, rates);
        let b = FaultPlan::seeded(2012, 9, 4000, rates);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.events.is_empty());
        a.validate(9);
        let c = FaultPlan::seeded(2013, 9, 4000, rates);
        assert_ne!(a.events, c.events, "a different seed moves the schedule");
        // Every drawn value is exactly representable (integer-derived).
        for e in &a.events {
            match e.kind {
                FaultKind::SensorStuck(v) => assert_eq!(v.fract(), 0.0),
                FaultKind::SensorBias(d) => assert_eq!(d.fract(), 0.0),
                FaultKind::SupplyCollapse(s) => {
                    assert!(s > 1.0 && (s * 4.0).fract() == 0.0)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zero_rates_yield_an_empty_plan() {
        let plan = FaultPlan::seeded(7, 4, 10_000, FaultRates::default());
        assert!(plan.events.is_empty());
        plan.validate(4);
    }

    #[test]
    #[should_panic(expected = "targets node")]
    fn plan_validation_rejects_out_of_range_nodes() {
        FaultPlan::new(vec![FaultEvent {
            window: 1,
            node: 9,
            kind: FaultKind::NodeCrash,
        }])
        .validate(4);
    }
}
