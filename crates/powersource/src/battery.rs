//! Battery models (Section 6).
//!
//! Conventional smart-phone Li-ion cells cap discharge at a few amps
//! (internal thermal constraints), limiting sprint intensity; high-
//! discharge Li-polymer packs (power-tool/EV class) comfortably supply a
//! 16 W sprint. The model covers voltage, internal resistance, discharge
//! limits, and capacity draw-down.

use serde::{Deserialize, Serialize};

/// A battery model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    name: String,
    /// Open-circuit voltage, volts.
    pub voltage_v: f64,
    /// Internal resistance, ohms.
    pub internal_resistance_ohm: f64,
    /// Maximum continuous discharge current, amps.
    pub max_discharge_a: f64,
    /// Capacity, joules.
    pub capacity_j: f64,
    /// Mass, grams.
    pub mass_g: f64,
    /// Remaining charge, joules.
    charge_j: f64,
}

impl Battery {
    /// Creates a battery at full charge.
    ///
    /// # Panics
    ///
    /// Panics on non-positive electrical parameters.
    pub fn new(
        name: impl Into<String>,
        voltage_v: f64,
        internal_resistance_ohm: f64,
        max_discharge_a: f64,
        capacity_j: f64,
        mass_g: f64,
    ) -> Self {
        assert!(
            voltage_v > 0.0 && internal_resistance_ohm > 0.0,
            "bad electrical params"
        );
        assert!(
            max_discharge_a > 0.0 && capacity_j > 0.0 && mass_g > 0.0,
            "bad ratings"
        );
        Self {
            name: name.into(),
            voltage_v,
            internal_resistance_ohm,
            max_discharge_a,
            capacity_j,
            mass_g,
            charge_j: capacity_j,
        }
    }

    /// A representative smart-phone Li-ion cell: ~10 W burst ceiling
    /// (2.7 A at 3.7 V), ~5 Wh.
    pub fn phone_li_ion() -> Self {
        Self::new("phone-li-ion", 3.7, 0.15, 2.7, 5.3 * 3600.0, 40.0)
    }

    /// A high-discharge Li-polymer pack (the paper's Dualsky GT 850 2s
    /// example): 43 A at 7 V, 51 g.
    pub fn high_discharge_li_po() -> Self {
        Self::new("high-discharge-li-po", 7.0, 0.02, 43.0, 6.3 * 3600.0, 51.0)
    }

    /// Battery name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Remaining charge, joules.
    pub fn charge_j(&self) -> f64 {
        self.charge_j
    }

    /// Maximum power deliverable without exceeding the discharge limit,
    /// watts (at the sagged terminal voltage).
    pub fn max_power_w(&self) -> f64 {
        let i = self.max_discharge_a;
        (self.voltage_v - i * self.internal_resistance_ohm) * i
    }

    /// Terminal voltage at a given load current, volts.
    pub fn terminal_voltage_v(&self, current_a: f64) -> f64 {
        self.voltage_v - current_a * self.internal_resistance_ohm
    }

    /// True if the battery can supply `power_w` continuously.
    pub fn can_supply_w(&self, power_w: f64) -> bool {
        power_w <= self.max_power_w()
    }

    /// Draws `power_w` for `dt_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns the shortfall when the current limit or remaining charge
    /// would be exceeded; no charge is drawn in that case.
    pub fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        if !self.can_supply_w(power_w) {
            return Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: self.max_power_w(),
            });
        }
        let energy = power_w * dt_s;
        if energy > self.charge_j {
            return Err(SupplyError::Depleted);
        }
        self.charge_j -= energy;
        Ok(())
    }

    /// Recharges by `joules` (clamped to capacity).
    pub fn recharge(&mut self, joules: f64) {
        self.charge_j = (self.charge_j + joules).min(self.capacity_j);
    }
}

/// Power-source failure conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SupplyError {
    /// The requested power exceeds the source's current limit.
    CurrentLimit {
        /// Requested power, watts.
        requested_w: f64,
        /// Deliverable power, watts.
        available_w: f64,
    },
    /// Stored energy exhausted.
    Depleted,
}

impl std::fmt::Display for SupplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupplyError::CurrentLimit {
                requested_w,
                available_w,
            } => write!(
                f,
                "requested {requested_w:.1} W exceeds the {available_w:.1} W discharge limit"
            ),
            SupplyError::Depleted => write!(f, "stored energy exhausted"),
        }
    }
}

impl std::error::Error for SupplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_battery_caps_near_10w() {
        let b = Battery::phone_li_ion();
        let p = b.max_power_w();
        assert!((8.0..11.0).contains(&p), "phone cell ≈ 10 W bursts: {p:.1}");
        assert!(!b.can_supply_w(16.0), "cannot feed a 16-core sprint");
    }

    #[test]
    fn li_po_feeds_a_16w_sprint() {
        let b = Battery::high_discharge_li_po();
        assert!(b.can_supply_w(16.0));
        assert!(b.max_power_w() > 100.0);
    }

    #[test]
    fn draw_depletes_charge() {
        let mut b = Battery::phone_li_ion();
        let c0 = b.charge_j();
        b.draw(5.0, 2.0).unwrap();
        assert!((c0 - b.charge_j() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overcurrent_rejected_without_draw() {
        let mut b = Battery::phone_li_ion();
        let c0 = b.charge_j();
        let err = b.draw(16.0, 1.0).unwrap_err();
        assert!(matches!(err, SupplyError::CurrentLimit { .. }));
        assert_eq!(b.charge_j(), c0);
    }

    #[test]
    fn terminal_voltage_sags_with_current() {
        let b = Battery::phone_li_ion();
        assert!(b.terminal_voltage_v(2.0) < b.voltage_v);
    }

    #[test]
    fn recharge_clamps_at_capacity() {
        let mut b = Battery::phone_li_ion();
        b.draw(1.0, 10.0).unwrap();
        b.recharge(1e9);
        assert_eq!(b.charge_j(), b.capacity_j);
    }
}
