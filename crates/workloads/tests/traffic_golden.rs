//! Golden-pinned determinism test for `sprint_workloads::traffic`.
//!
//! The facility studies and their byte-equality tests all assume the
//! arrival trace is a pure function of the seed. This pins one trace's
//! prefix (exact `f64` bits) and a whole-stream FNV digest so that any
//! change to the generator — or to the vendored xoshiro stand-in it
//! draws from — fails loudly instead of silently shifting every
//! downstream figure. If a change is intentional, regenerate the
//! constants with the recipe in each assertion's message.

use sprint_workloads::suite::InputSize;
use sprint_workloads::traffic::{Arrival, TrafficParams};

/// FNV-1a over the bit patterns of every field that feeds the cluster.
fn digest(stream: &[Arrival]) -> u64 {
    stream.iter().fold(0xcbf2_9ce4_8422_2325u64, |mut h, a| {
        for b in [
            a.arrival_s.to_bits(),
            a.size as u64,
            a.burst as u64,
            a.threads as u64,
        ] {
            h ^= b;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    })
}

/// The pinned trace: `TrafficParams::frontend(42, 256, 25_000.0)`.
#[test]
fn frontend_seed_42_trace_is_pinned() {
    let params = TrafficParams::frontend(42, 256, 25_000.0);
    let stream = params.generate();
    assert_eq!(stream.len(), 256);

    // First eight arrivals, exact to the bit (times via `to_bits`).
    const PREFIX: [(u64, InputSize, bool); 8] = [
        (0x3f0938732e00c9fd, InputSize::B, false),
        (0x3f1c4caa0533087e, InputSize::A, false),
        (0x3f265c03c226e1dc, InputSize::A, false),
        (0x3f29511103499e86, InputSize::A, false),
        (0x3f33bee0d19de6e7, InputSize::A, false),
        (0x3f3d29b0e9e48979, InputSize::A, false),
        (0x3f3f8ad2ca9d030a, InputSize::B, false),
        (0x3f43f3d5514a2f23, InputSize::A, false),
    ];
    for (i, (bits, size, burst)) in PREFIX.iter().enumerate() {
        assert_eq!(
            stream[i].arrival_s.to_bits(),
            *bits,
            "arrival {i} time drifted (got {:#018x}); if intentional, \
             re-pin from `TrafficParams::frontend(42, 256, 25_000.0)`",
            stream[i].arrival_s.to_bits()
        );
        assert_eq!(stream[i].size, *size, "arrival {i} size drifted");
        assert_eq!(stream[i].burst, *burst, "arrival {i} burst flag drifted");
    }

    // Whole-stream digest: catches drift anywhere in the 256 arrivals.
    assert_eq!(
        digest(&stream),
        0x28ed3c3cc99bb47b,
        "traffic digest drifted (got {:#018x}); if intentional, re-pin",
        digest(&stream)
    );

    // The pinned stream exercises both processes.
    assert_eq!(stream.iter().filter(|a| a.burst).count(), 24);
}

/// The base process is a fixed function of the seed regardless of the
/// burst process: disabling bursts must leave the base arrivals' times
/// bit-identical (they only stop being displaced in the merged order).
#[test]
fn base_stream_is_independent_of_bursts() {
    let with = TrafficParams::frontend(42, 256, 25_000.0).generate();
    let mut params = TrafficParams::frontend(42, 256, 25_000.0);
    params.burst_rate_hz = 0.0;
    let without = params.generate();

    let base_times: Vec<u64> = with
        .iter()
        .filter(|a| !a.burst)
        .map(|a| a.arrival_s.to_bits())
        .collect();
    // Every base arrival in the merged stream appears, in order, in the
    // burst-free stream (which has extra base arrivals past the ones
    // bursts displaced out of the 256-task truncation).
    let bare_times: Vec<u64> = without.iter().map(|a| a.arrival_s.to_bits()).collect();
    assert!(
        base_times.len() <= bare_times.len() && base_times == bare_times[..base_times.len()],
        "base process must not depend on the burst process"
    );
}
