//! Criterion bench: Figure 4's thermal transients.

use criterion::{criterion_group, criterion_main, Criterion};
use sprint_thermal::analysis::simulate_sprint;
use sprint_thermal::phone::PhoneThermalParams;

fn bench_thermal(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("sprint_16w_full_pcm", |b| {
        b.iter(|| {
            let mut phone = PhoneThermalParams::hpca().build();
            let t = simulate_sprint(&mut phone, 16.0, 0.005, 5.0);
            std::hint::black_box(t.duration_s)
        })
    });
    g.bench_function("sprint_16w_limited_pcm", |b| {
        b.iter(|| {
            let mut phone = PhoneThermalParams::limited().build();
            let t = simulate_sprint(&mut phone, 16.0, 0.001, 5.0);
            std::hint::black_box(t.duration_s)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);
