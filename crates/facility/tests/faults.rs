//! Facility-scale fault injection: seeded per-rack fault plans must
//! not cost a single bit of determinism — the faulted facility report
//! is byte-identical at any worker count and on either stepping core —
//! and must never lose work: every arrival ends completed, failed
//! after retries, or outstanding at the time limit, on the cluster
//! *and* the facility merge path.

use sprint_cluster::{ClusterPolicy, PowerPolicy, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultRates, FaultResponse};
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

/// Fault rates sized to the fixture's ~10k-window horizon: enough
/// onsets that every family provably fires, few enough that the run
/// still makes progress.
fn biting_rates() -> FaultRates {
    FaultRates {
        mean_sensor_gap_windows: 400,
        sensor_hold_windows: 200,
        mean_crash_gap_windows: 1500,
        crash_hold_windows: 300,
        mean_supply_gap_windows: 800,
        supply_hold_windows: 250,
    }
}

/// The determinism suite's fully-coupled facility, plus seeded faults
/// on every rack. The finite time limit bounds racks whose quarantined
/// nodes strand part of the queue.
fn faulted_facility(
    racks: usize,
    seed: u64,
    tasks: usize,
    event_driven: bool,
    response: FaultResponse,
) -> Facility {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            defer_s: 2e-4,
        })
        .power_policy(PowerPolicy::Rationed {
            sprint_draw_w: 14.0,
            shed_reserve_fraction: 0.5,
        })
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.05,
            crac_capacity_w: 8.0,
            max_inlet_c: 40.0,
        })
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 7.5,
            slot_w: 14.0,
        })
        .facility_cap_w(14.5 * racks as f64)
        .epoch_windows(32)
        .max_time_s(0.01)
        .traffic({
            let mut traffic = TrafficParams::frontend(seed, tasks, 60_000.0);
            traffic.size_weights = [1.0, 0.0, 0.0, 0.0];
            traffic
        })
        .fault_rates(biting_rates())
        .fault_seed(seed ^ 0xFA17)
        .fault_response(response)
        .event_driven(event_driven)
        .build()
}

/// The headline acceptance invariant: under seeded faults the
/// event-driven facility reproduces the lockstep oracle's digest at
/// 1, 2 and 8 workers — and the plans provably bite.
#[test]
fn faulted_facility_is_byte_identical_across_cores_and_worker_counts() {
    let response = FaultResponse::Aware;
    let oracle = faulted_facility(8, 5, 16, false, response).run(1);
    assert!(oracle.fault_events > 0, "the fault plans never fired");
    assert!(oracle.node_crashes > 0, "no node ever crashed");
    assert!(oracle.sensor_faults > 0, "no sensor ever faulted");
    assert!(oracle.supply_faults > 0, "no supply ever faulted");
    assert!(
        oracle.task_conservation_holds(),
        "a task was lost: {} completed + {} failed + {} outstanding != {}",
        oracle.completed,
        oracle.failed_tasks,
        oracle.outstanding_tasks,
        oracle.total_tasks,
    );

    for threads in [1usize, 2, 8] {
        let report = faulted_facility(8, 5, 16, true, response).run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "faulted event-driven facility at {threads} workers diverged \
             from the lockstep oracle: p99 {} vs {}, crashes {} vs {}",
            oracle.p99_latency_s,
            report.p99_latency_s,
            oracle.node_crashes,
            report.node_crashes,
        );
    }
}

/// Task conservation on the facility merge path, in both response
/// modes and across seeds: the facility totals are exactly the sum of
/// the rack reports, and nothing is ever lost.
#[test]
fn facility_merge_conserves_tasks_under_faults() {
    for seed in [5u64, 11] {
        for response in [FaultResponse::Aware, FaultResponse::Oblivious] {
            let report = faulted_facility(4, seed, 8, true, response).run(2);
            assert!(
                report.task_conservation_holds(),
                "seed {seed} ({response:?}): {} completed + {} failed + {} \
                 outstanding != {}",
                report.completed,
                report.failed_tasks,
                report.outstanding_tasks,
                report.total_tasks,
            );
            for field in [
                (
                    report.fault_events,
                    report.rack_reports.iter().map(|r| r.fault_events).sum(),
                ),
                (
                    report.failed_tasks,
                    report.rack_reports.iter().map(|r| r.failed_tasks).sum(),
                ),
                (
                    report.requeues,
                    report.rack_reports.iter().map(|r| r.requeues).sum(),
                ),
                (
                    report.outstanding_tasks,
                    report
                        .rack_reports
                        .iter()
                        .map(|r| r.outstanding_tasks)
                        .sum(),
                ),
            ] {
                let (facility, racks): (usize, usize) = field;
                assert_eq!(facility, racks, "facility counter is not the rack sum");
            }
        }
    }
}

/// The two response modes are genuinely different policies under the
/// same fault plans — the degradation study compares real alternatives.
#[test]
fn aware_and_oblivious_runs_differ_under_the_same_plans() {
    let aware = faulted_facility(4, 5, 8, true, FaultResponse::Aware).run(2);
    let oblivious = faulted_facility(4, 5, 8, true, FaultResponse::Oblivious).run(2);
    assert!(aware.fault_events > 0 && oblivious.fault_events > 0);
    assert_ne!(
        aware.digest(),
        oblivious.digest(),
        "Aware and Oblivious produced identical runs — the faults never \
         touched a scheduling decision"
    );
}

/// Unsatisfiable facility provisioning comes back as a typed error
/// from `try_build`, with `build` panicking on the identical message.
#[test]
fn facility_build_errors_are_typed_and_display_cleanly() {
    let err = FacilityBuilder::new(2)
        .epoch_windows(0)
        .try_build()
        .unwrap_err();
    assert_eq!(err, FacilityBuildError::ZeroEpochWindows);
    assert_eq!(err.to_string(), "an epoch needs at least one window");

    let err = FacilityBuilder::new(2)
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 10.0,
            slot_w: 14.0,
        })
        .try_build()
        .unwrap_err();
    assert_eq!(err, FacilityBuildError::MissingFacilityCap);

    let err = FacilityBuilder::new(2)
        .rack_supply(RackSupplyParams::rack(2))
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 10.0,
            slot_w: 0.0,
        })
        .facility_cap_w(40.0)
        .try_build()
        .unwrap_err();
    assert!(
        err.to_string().contains("slot must be positive"),
        "policy diagnostics must survive the typed path: {err}"
    );
    assert!(std::error::Error::source(&err).is_none());
}
