//! The memory controller: dual-channel bandwidth and latency modelling.
//!
//! Lines interleave across channels. Each channel is a single-server queue:
//! a read completes after the uncontended round-trip latency plus any time
//! spent waiting for the channel; each transfer occupies the channel for
//! one line time (64 B / 4 GB/s = 16 ns in the paper's configuration).
//! Writebacks consume channel time but nobody waits on them.

use serde::{Deserialize, Serialize};

use crate::config::MemoryConfig;

/// Per-channel queue state.
///
/// The machine simulates cores *sequentially* within each time window, so
/// request timestamps arrive out of order (a later-simulated core replays
/// times earlier-simulated cores already passed). A strict busy-until
/// timestamp would make late-simulated cores queue behind bandwidth that
/// was notionally reserved in their future. Instead each channel tracks a
/// fluid queue per window: the backlog carried into the window plus the
/// transfer time enqueued so far, drained at line rate relative to the
/// window start. Queueing then depends only on *how much* traffic the
/// window carries, not on core simulation order, and backlog persists
/// across windows exactly when offered load exceeds channel bandwidth.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Channel {
    /// Start of the current accounting window, picoseconds.
    window_start_ps: u64,
    /// Backlog carried into the window, picoseconds of transfer time.
    carried_ps: u64,
    /// Transfer time enqueued within the current window.
    added_ps: u64,
}

impl Channel {
    /// Enqueues one line transfer at `now_ps`, returning the queueing
    /// delay it experiences.
    fn enqueue(&mut self, now_ps: u64, line_transfer_ps: u64) -> u64 {
        let drained = now_ps.saturating_sub(self.window_start_ps);
        let delay = (self.carried_ps + self.added_ps).saturating_sub(drained);
        self.added_ps += line_transfer_ps;
        delay
    }

    /// Rolls the accounting window forward to `start_ps`.
    fn advance_window(&mut self, start_ps: u64) {
        let span = start_ps.saturating_sub(self.window_start_ps);
        self.carried_ps = (self.carried_ps + self.added_ps).saturating_sub(span);
        self.added_ps = 0;
        self.window_start_ps = start_ps;
    }
}

/// The memory interface model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryController {
    channels: Vec<Channel>,
    base_line_transfer_ps: u64,
    base_latency_ps: u64,
    line_transfer_ps: u64,
    latency_ps: u64,
    reads: u64,
    writebacks: u64,
    /// Total picosecond-channel time consumed (utilization accounting).
    busy_ps: u64,
}

impl MemoryController {
    /// Creates a controller for the given configuration and line size.
    pub fn new(cfg: &MemoryConfig, line_bytes: usize) -> Self {
        let line_transfer_ps = cfg.line_transfer_ps(line_bytes);
        let latency_ps = (cfg.latency_ns * 1000.0) as u64;
        Self {
            channels: vec![Channel::default(); cfg.channels],
            base_line_transfer_ps: line_transfer_ps,
            base_latency_ps: latency_ps,
            line_transfer_ps,
            latency_ps,
            reads: 0,
            writebacks: 0,
            busy_ps: 0,
        }
    }

    /// Rescales latency and bandwidth by a speed multiplier (used by the
    /// *idealized DVFS* model, where the whole system — not just the core
    /// clock — speeds up with frequency, as the paper's Section 8.4
    /// comparison assumes).
    pub fn set_speed_multiplier(&mut self, multiplier: f64) {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive"
        );
        self.line_transfer_ps =
            ((self.base_line_transfer_ps as f64 / multiplier).round() as u64).max(1);
        self.latency_ps = ((self.base_latency_ps as f64 / multiplier).round() as u64).max(1);
    }

    #[inline]
    fn channel_of(&self, line: u64) -> usize {
        (line as usize) % self.channels.len()
    }

    /// Issues a read of `line` at `now_ps`; returns the completion time
    /// (queueing delay plus the uncontended round-trip latency).
    pub fn read(&mut self, line: u64, now_ps: u64) -> u64 {
        let ch = self.channel_of(line);
        let delay = self.channels[ch].enqueue(now_ps, self.line_transfer_ps);
        self.busy_ps += self.line_transfer_ps;
        self.reads += 1;
        now_ps + delay + self.latency_ps
    }

    /// Issues a writeback of `line` at `now_ps` (fire-and-forget: consumes
    /// bandwidth, nobody stalls on completion).
    pub fn writeback(&mut self, line: u64, now_ps: u64) {
        let ch = self.channel_of(line);
        let _ = self.channels[ch].enqueue(now_ps, self.line_transfer_ps);
        self.busy_ps += self.line_transfer_ps;
        self.writebacks += 1;
    }

    /// Rolls the bandwidth-accounting window forward (called by the
    /// machine at each simulation window boundary).
    pub fn advance_window(&mut self, start_ps: u64) {
        for ch in &mut self.channels {
            ch.advance_window(start_ps);
        }
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writebacks issued so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Aggregate channel-busy time, picoseconds (across channels).
    pub fn busy_ps(&self) -> u64 {
        self.busy_ps
    }

    /// Average bandwidth utilization over `elapsed_ps` (0-1 per channel).
    pub fn utilization(&self, elapsed_ps: u64) -> f64 {
        if elapsed_ps == 0 {
            return 0.0;
        }
        self.busy_ps as f64 / (elapsed_ps as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> MemoryController {
        MemoryController::new(&MemoryConfig::hpca(), 64)
    }

    #[test]
    fn uncontended_read_takes_round_trip_latency() {
        let mut m = ctl();
        let done = m.read(0, 1_000_000);
        assert_eq!(done, 1_000_000 + 60_000);
    }

    #[test]
    fn same_channel_reads_queue() {
        let mut m = ctl();
        // Lines 0 and 2 share channel 0 (even lines, 2 channels).
        let a = m.read(0, 0);
        let b = m.read(2, 0);
        assert_eq!(a, 60_000);
        assert_eq!(b, 16_000 + 60_000, "second read waits one line transfer");
    }

    #[test]
    fn different_channels_do_not_queue() {
        let mut m = ctl();
        let a = m.read(0, 0);
        let b = m.read(1, 0);
        assert_eq!(a, b, "odd/even lines land on distinct channels");
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut m = ctl();
        m.writeback(0, 0);
        let read_done = m.read(0, 0);
        assert_eq!(
            read_done,
            16_000 + 60_000,
            "read queues behind the writeback"
        );
        assert_eq!(m.writebacks(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut m = ctl();
        for i in 0..10 {
            let _ = m.read(i * 2, 0); // all on channel 0
        }
        // 10 transfers x 16 ns = 160 ns busy on one of two channels.
        assert_eq!(m.busy_ps(), 160_000);
        assert!((m.utilization(160_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn doubled_bandwidth_halves_queueing() {
        let cfg = MemoryConfig::hpca().with_doubled_bandwidth();
        let mut m = MemoryController::new(&cfg, 64);
        let _ = m.read(0, 0);
        let b = m.read(2, 0);
        assert_eq!(b, 8_000 + 60_000);
    }
}
