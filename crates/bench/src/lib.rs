//! The benchmark harness: reproduces every table and figure of
//! *Computational Sprinting* (HPCA 2012).
//!
//! Run `cargo run --release -p sprint-bench --bin repro -- all` to
//! regenerate the full evaluation (tables to stdout, series to
//! `results/*.csv`), or name individual experiments:
//!
//! ```text
//! repro fig1        # power density / dark silicon trends
//! repro fig2        # conceptual sprint traces
//! repro table1      # kernel suite inventory
//! repro fig4a fig4b # thermal transients
//! repro fig5 fig6   # power grid + activation schedules
//! repro fig7        # 16-core sprint vs DVFS speedups
//! repro fig8        # sobel input-size sweep
//! repro fig9        # input classes A-D
//! repro fig10       # core-count scaling (+ fig11 energy)
//! repro power       # Section 6 power-source table
//! repro grid        # lumped vs grid backend, hotspot throttle
//! repro perf        # explicit vs ADI grid-solver wall-clock sweep
//! repro rack        # cluster sprint admission on a 16-server rack
//! repro facility    # facility cap sweep: global vs oblivious rationing
//!                   # (event-driven racks; --oracle cross-checks lockstep digests)
//! repro faults      # fault matrix: degradation-aware vs oblivious under crashes
//! repro hetero      # degraded big/little rack: duplication + loser
//!                   # cancellation vs bounded retry-in-place
//! repro ablation_tmelt | ablation_metal | ablation_budget | ablation_abort | ablation_pacing
//! ```

#![warn(missing_docs)]

pub mod figs_arch;
pub mod figs_facility;
pub mod figs_faults;
pub mod figs_grid;
pub mod figs_hetero;
pub mod figs_model;
pub mod figs_perf;
pub mod figs_rack;
pub mod harness;
pub mod output;

pub use harness::{run_baseline, run_coupled, run_fixed_cores, Outcome, ThermalDesign};
