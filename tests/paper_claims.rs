//! Integration tests pinning the paper's headline claims, at reduced scale
//! so they run quickly in CI. The full-scale numbers live in
//! EXPERIMENTS.md and regenerate via the `repro` binary.

use computational_sprinting::powergrid::{ActivationExperiment, ActivationSchedule};
use computational_sprinting::powersource::evaluate_sources;
use computational_sprinting::scaling::ScalingModel;
use computational_sprinting::thermal::analysis::{simulate_cooldown, simulate_sprint};
use computational_sprinting::thermal::PhoneThermalParams;

/// Section 3: a 16-core sprint on the full PCM design lasts about a second.
#[test]
fn claim_one_second_sprint() {
    let mut phone = PhoneThermalParams::hpca().build();
    let duration = simulate_sprint(&mut phone, 16.0, 0.002, 5.0)
        .duration_s
        .expect("16 W must exceed the thermal envelope");
    assert!((1.0..1.5).contains(&duration), "duration {duration:.2} s");
}

/// Section 4.5: cooldown returns the junction near ambient in tens of
/// seconds (the paper quotes ~24 s; the rule of thumb gives 16 s).
#[test]
fn claim_cooldown_tens_of_seconds() {
    let mut phone = PhoneThermalParams::hpca().build();
    let _ = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
    let t = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 120.0)
        .t_near_ambient_s
        .expect("must cool");
    assert!((8.0..40.0).contains(&t), "cooldown {t:.1} s");
}

/// Section 5: abrupt activation violates the 2% supply tolerance; a
/// 128 µs linear ramp does not.
#[test]
fn claim_gradual_activation_required() {
    let mut abrupt = ActivationExperiment::hpca(ActivationSchedule::Simultaneous);
    abrupt.horizon_s = 20e-6;
    assert!(abrupt.run().unwrap().report.violated);

    let mut slow = ActivationExperiment::hpca(ActivationSchedule::LinearRamp { total_s: 128e-6 });
    slow.horizon_s = 300e-6;
    assert!(!slow.run().unwrap().report.violated);
}

/// Section 6: a phone Li-ion cell cannot power a 16-core sprint, but the
/// hybrid (battery + ultracapacitor) can.
#[test]
fn claim_power_source_feasibility() {
    let verdicts = evaluate_sources(16.0, 1.0);
    let li_ion = verdicts
        .iter()
        .find(|v| v.source.contains("li-ion"))
        .unwrap();
    assert!(!li_ion.covers_peak);
    let hybrid = verdicts
        .iter()
        .find(|v| v.source.contains("hybrid"))
        .unwrap();
    assert!(hybrid.covers_peak && hybrid.covers_energy);
}

/// Section 8.4: 16x power headroom buys only ~2.5x of DVFS boost, at
/// ~6.3x the energy per instruction.
#[test]
fn claim_dvfs_cube_root_law() {
    use computational_sprinting::archsim::OperatingPoint;
    let p = OperatingPoint::max_boost_for_power_headroom(16.0);
    assert!((p.frequency_multiplier - 2.52).abs() < 0.01);
    assert!((p.energy_multiplier - 6.35).abs() < 0.01);
    assert!((p.power_multiplier() - 16.0).abs() < 1e-9);
}

/// Section 2: dark-silicon projections reach a large dark fraction by the
/// end of the roadmap under pessimistic voltage scaling.
#[test]
fn claim_dark_silicon_trend() {
    let series = ScalingModel::ItrsWithBorkarVdd.series();
    let (_, _, dark_last) = series.last().unwrap();
    assert!(*dark_last > 75.0, "dark fraction {dark_last:.0}%");
    // ITRS (optimistic) is strictly less dark everywhere.
    for (i, (_, _, dark)) in ScalingModel::Itrs.series().iter().enumerate() {
        assert!(*dark <= series[i].2 + 1e-9);
    }
}

/// Section 4.2: ~150 mg of 100 J/g PCM stores the 16 J a one-second
/// 16-core sprint dissipates.
#[test]
fn claim_pcm_sizing() {
    use computational_sprinting::thermal::Material;
    let pcm = Material::reference_pcm();
    let mass_g = pcm.mass_for_latent_storage_g(16.0).unwrap();
    assert!((0.14..0.18).contains(&mass_g), "mass {mass_g:.3} g");
    let thickness = pcm.block_thickness_mm(mass_g, 64.0);
    assert!(thickness < 3.0, "fits the package: {thickness:.1} mm");
}
