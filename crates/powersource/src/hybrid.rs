//! Hybrid battery + ultracapacitor supply (Section 6).
//!
//! The capacitor serves sprint peaks (its discharge rate is effectively
//! unlimited at these scales); the battery carries the sustained load and
//! recharges the capacitor between sprints at whatever current headroom it
//! has left.

use serde::{Deserialize, Serialize};

use crate::battery::{Battery, SupplyError};
use crate::ultracap::Ultracapacitor;

/// A hybrid supply: battery plus ultracapacitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridSupply {
    /// The battery.
    pub battery: Battery,
    /// The ultracapacitor.
    pub cap: Ultracapacitor,
    /// Minimum capacitor voltage the regulator can work from, volts.
    pub cap_min_v: f64,
    /// Power the battery reserves for the rest of the system, watts.
    pub system_reserve_w: f64,
    sprints_served: u64,
}

impl HybridSupply {
    /// Builds the paper's phone configuration: a standard Li-ion cell
    /// plus the 25 F ultracapacitor.
    pub fn phone() -> Self {
        Self {
            battery: Battery::phone_li_ion(),
            cap: Ultracapacitor::nesscap_25f(),
            cap_min_v: 1.0,
            system_reserve_w: 1.0,
            sprints_served: 0,
        }
    }

    /// Sprints served so far.
    pub fn sprints_served(&self) -> u64 {
        self.sprints_served
    }

    /// Maximum sprint energy available right now, joules.
    pub fn sprint_capacity_j(&self) -> f64 {
        self.cap.usable_j(self.cap_min_v)
    }

    /// Draws a sprint of `power_w` for `duration_s`: the capacitor covers
    /// everything above the battery's safe share.
    ///
    /// # Errors
    ///
    /// Fails if the capacitor cannot cover the peak (current limit or
    /// depleted).
    pub fn sprint(&mut self, power_w: f64, duration_s: f64) -> Result<(), SupplyError> {
        self.draw(power_w, duration_s)?;
        self.sprints_served += 1;
        Ok(())
    }

    /// Draws `power_w` for `dt_s` without counting a served sprint — the
    /// window-level primitive the co-simulation loop calls every sampling
    /// interval. The battery carries its safe share; the capacitor covers
    /// the excess.
    ///
    /// # Errors
    ///
    /// Fails without drawing if the capacitor cannot cover the peak
    /// (current limit) or lacks the usable energy (depleted).
    pub fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        let battery_share = (self.battery.max_power_w() - self.system_reserve_w).max(0.0);
        let from_battery = power_w.min(battery_share);
        let from_cap = power_w - from_battery;
        // Check the capacitor can deliver the peak and the energy first.
        if from_cap > self.cap.max_power_w() {
            return Err(SupplyError::CurrentLimit {
                requested_w: from_cap,
                available_w: self.cap.max_power_w(),
            });
        }
        if from_cap > 0.0 && from_cap * dt_s >= self.cap.usable_j(self.cap_min_v) {
            return Err(SupplyError::Depleted);
        }
        self.battery.draw(from_battery, dt_s)?;
        self.cap.draw(from_cap, dt_s)?;
        Ok(())
    }

    /// Peak power the hybrid can deliver right now, watts.
    pub fn max_power_w(&self) -> f64 {
        let battery_share = (self.battery.max_power_w() - self.system_reserve_w).max(0.0);
        battery_share + self.cap.max_power_w()
    }

    /// Recharges the capacitor from the battery during an idle period of
    /// `duration_s` seconds, using current headroom above the system
    /// reserve. Returns the energy transferred, joules.
    pub fn recharge_between_sprints(&mut self, duration_s: f64) -> f64 {
        let headroom_w = (self.battery.max_power_w() - self.system_reserve_w).max(0.0);
        // Transfer at most what the cap can absorb.
        let deficit = 0.5 * self.cap.capacitance_f * self.cap.rated_v * self.cap.rated_v
            - self.cap.stored_j();
        let transfer = (headroom_w * duration_s).min(deficit.max(0.0));
        if transfer > 0.0 && self.battery.draw(transfer / duration_s, duration_s).is_ok() {
            self.cap.recharge(transfer);
            transfer
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_hybrid_serves_a_16w_one_second_sprint() {
        let mut s = HybridSupply::phone();
        s.sprint(16.0, 1.0)
            .expect("hybrid must cover the paper's sprint");
        assert_eq!(s.sprints_served(), 1);
    }

    #[test]
    fn battery_alone_cannot() {
        let b = Battery::phone_li_ion();
        assert!(!b.can_supply_w(16.0));
    }

    #[test]
    fn repeated_sprints_need_recharge() {
        let mut s = HybridSupply::phone();
        let mut served = 0;
        // Back-to-back sprints with no recharge eventually deplete the cap.
        for _ in 0..20 {
            if s.sprint(16.0, 1.0).is_ok() {
                served += 1;
            } else {
                break;
            }
        }
        assert!(
            served >= 2,
            "the 91 J cap covers several 16 J sprints: {served}"
        );
        assert!(served < 20, "but not indefinitely many");
        // After a recharge interval, sprinting works again.
        let transferred = s.recharge_between_sprints(30.0);
        assert!(transferred > 10.0, "recharge moved {transferred:.1} J");
        s.sprint(16.0, 1.0).expect("sprint after recharge");
    }

    #[test]
    fn battery_share_draws_survive_a_drained_cap() {
        let mut s = HybridSupply::phone();
        // Drain the capacitor to (near) the regulator dropout.
        while s.cap.usable_j(s.cap_min_v) > 0.5 {
            s.cap.draw(20.0, 0.1).unwrap();
        }
        // A draw the battery share covers alone must not report Depleted.
        let battery_share = s.battery.max_power_w() - s.system_reserve_w;
        s.draw(battery_share * 0.5, 1e-3)
            .expect("battery-only draw must succeed with an empty cap");
    }

    #[test]
    fn sprint_capacity_reflects_cap_state() {
        let mut s = HybridSupply::phone();
        let c0 = s.sprint_capacity_j();
        s.sprint(16.0, 1.0).unwrap();
        assert!(s.sprint_capacity_j() < c0);
    }
}
