//! Thermal storage nodes using the enthalpy method.
//!
//! Every heat-storing node tracks its state as enthalpy (joules relative to
//! a reference temperature) rather than temperature. Temperature is a
//! piecewise function of enthalpy, which makes phase change (a temperature
//! plateau while latent heat is absorbed) exact and makes energy
//! conservation trivial to verify.

use serde::{Deserialize, Serialize};

use crate::material::Material;

/// Reference temperature (Celsius) at which enthalpy is defined to be zero
/// for a node initialised "cold". Individual nodes may be initialised at any
/// temperature; this constant only anchors the internal representation.
const REFERENCE_TEMP_C: f64 = 0.0;

/// Phase-change parameters for a storage node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseChange {
    /// Melting temperature in Celsius.
    pub melt_temp_c: f64,
    /// Total latent heat of the block in joules (mass x latent heat of
    /// fusion).
    pub latent_heat_j: f64,
    /// Sensible heat capacity of the liquid phase in J/K. Often close to the
    /// solid value; modelled separately for completeness.
    pub liquid_heat_capacity_j_per_k: f64,
}

/// A heat-storing node: a lump of material with sensible heat capacity and
/// an optional phase transition.
///
/// # Examples
///
/// ```
/// use sprint_thermal::node::StorageNode;
///
/// let mut node = StorageNode::sensible_only("case", 5.0, 25.0);
/// node.add_enthalpy(10.0); // inject 10 J
/// assert!((node.temperature_c() - 27.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageNode {
    name: String,
    /// Sensible heat capacity of the solid phase, J/K.
    solid_heat_capacity_j_per_k: f64,
    phase_change: Option<PhaseChange>,
    /// Current enthalpy relative to `REFERENCE_TEMP_C`, joules.
    enthalpy_j: f64,
}

impl StorageNode {
    /// Creates a node with sensible heat storage only.
    ///
    /// # Panics
    ///
    /// Panics if `heat_capacity_j_per_k` is not strictly positive and finite.
    pub fn sensible_only(
        name: impl Into<String>,
        heat_capacity_j_per_k: f64,
        initial_temp_c: f64,
    ) -> Self {
        assert!(
            heat_capacity_j_per_k.is_finite() && heat_capacity_j_per_k > 0.0,
            "heat capacity must be positive"
        );
        let mut node = Self {
            name: name.into(),
            solid_heat_capacity_j_per_k: heat_capacity_j_per_k,
            phase_change: None,
            enthalpy_j: 0.0,
        };
        node.set_temperature(initial_temp_c);
        node
    }

    /// Creates a phase-change node.
    ///
    /// # Panics
    ///
    /// Panics if heat capacities or latent heat are non-positive, or if the
    /// initial temperature is above the melting point (nodes start solid).
    pub fn with_phase_change(
        name: impl Into<String>,
        solid_heat_capacity_j_per_k: f64,
        phase_change: PhaseChange,
        initial_temp_c: f64,
    ) -> Self {
        assert!(
            solid_heat_capacity_j_per_k.is_finite() && solid_heat_capacity_j_per_k > 0.0,
            "solid heat capacity must be positive"
        );
        assert!(
            phase_change.latent_heat_j > 0.0,
            "latent heat must be positive; use sensible_only otherwise"
        );
        assert!(
            phase_change.liquid_heat_capacity_j_per_k > 0.0,
            "liquid heat capacity must be positive"
        );
        assert!(
            initial_temp_c <= phase_change.melt_temp_c,
            "phase-change nodes must be initialised at or below the melting point"
        );
        let mut node = Self {
            name: name.into(),
            solid_heat_capacity_j_per_k,
            phase_change: Some(phase_change),
            enthalpy_j: 0.0,
        };
        node.set_temperature(initial_temp_c);
        node
    }

    /// Builds a PCM node from a material and block mass, reusing the
    /// solid-phase specific heat for the liquid phase.
    ///
    /// # Panics
    ///
    /// Panics if the material has no melting point or latent heat.
    pub fn from_material(
        name: impl Into<String>,
        material: &Material,
        mass_g: f64,
        initial_temp_c: f64,
    ) -> Self {
        let melt = material
            .melting_point_c()
            .expect("material must have a melting point to form a PCM node");
        let latent = material.block_latent_heat_j(mass_g);
        assert!(
            latent > 0.0,
            "material must have latent heat to form a PCM node"
        );
        let sensible = material.block_heat_capacity_j_per_k(mass_g);
        Self::with_phase_change(
            name,
            sensible,
            PhaseChange {
                melt_temp_c: melt,
                latent_heat_j: latent,
                liquid_heat_capacity_j_per_k: sensible,
            },
            initial_temp_c,
        )
    }

    /// Node name (used in traces and error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enthalpy at which melting begins (J, relative to the reference).
    fn melt_onset_enthalpy(&self) -> f64 {
        let pc = self.phase_change.as_ref().expect("no phase change");
        (pc.melt_temp_c - REFERENCE_TEMP_C) * self.solid_heat_capacity_j_per_k
    }

    /// Current temperature in Celsius, derived from enthalpy.
    pub fn temperature_c(&self) -> f64 {
        match &self.phase_change {
            None => REFERENCE_TEMP_C + self.enthalpy_j / self.solid_heat_capacity_j_per_k,
            Some(pc) => {
                let h0 = self.melt_onset_enthalpy();
                if self.enthalpy_j <= h0 {
                    REFERENCE_TEMP_C + self.enthalpy_j / self.solid_heat_capacity_j_per_k
                } else if self.enthalpy_j <= h0 + pc.latent_heat_j {
                    pc.melt_temp_c
                } else {
                    pc.melt_temp_c
                        + (self.enthalpy_j - h0 - pc.latent_heat_j)
                            / pc.liquid_heat_capacity_j_per_k
                }
            }
        }
    }

    /// Fraction of the phase-change material currently melted, in `[0, 1]`.
    /// Always zero for sensible-only nodes.
    pub fn melt_fraction(&self) -> f64 {
        match &self.phase_change {
            None => 0.0,
            Some(pc) => {
                let h0 = self.melt_onset_enthalpy();
                ((self.enthalpy_j - h0) / pc.latent_heat_j).clamp(0.0, 1.0)
            }
        }
    }

    /// True if the node models a phase transition.
    pub fn has_phase_change(&self) -> bool {
        self.phase_change.is_some()
    }

    /// The phase-change parameters, if any.
    pub fn phase_change(&self) -> Option<&PhaseChange> {
        self.phase_change.as_ref()
    }

    /// Current enthalpy in joules relative to the internal reference.
    pub fn enthalpy_j(&self) -> f64 {
        self.enthalpy_j
    }

    /// Adds (or with a negative argument, removes) enthalpy.
    pub fn add_enthalpy(&mut self, joules: f64) {
        debug_assert!(joules.is_finite(), "enthalpy change must be finite");
        self.enthalpy_j += joules;
    }

    /// Sets the node temperature directly, recomputing enthalpy. For
    /// phase-change nodes, a temperature exactly at the melting point is
    /// interpreted as fully solid (melt fraction zero).
    pub fn set_temperature(&mut self, temp_c: f64) {
        self.enthalpy_j = match &self.phase_change {
            None => (temp_c - REFERENCE_TEMP_C) * self.solid_heat_capacity_j_per_k,
            Some(pc) => {
                if temp_c <= pc.melt_temp_c {
                    (temp_c - REFERENCE_TEMP_C) * self.solid_heat_capacity_j_per_k
                } else {
                    self.melt_onset_enthalpy()
                        + pc.latent_heat_j
                        + (temp_c - pc.melt_temp_c) * pc.liquid_heat_capacity_j_per_k
                }
            }
        };
    }

    /// Effective heat capacity (J/K) at the current state; during melting
    /// this is unbounded, so the value returned is the *sensible* capacity
    /// of the current phase — used only for solver step-size control.
    pub fn sensible_capacity_j_per_k(&self) -> f64 {
        match &self.phase_change {
            None => self.solid_heat_capacity_j_per_k,
            Some(pc) => {
                if self.melt_fraction() >= 1.0 {
                    pc.liquid_heat_capacity_j_per_k
                } else {
                    self.solid_heat_capacity_j_per_k
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcm_node() -> StorageNode {
        // 0.15 g of the reference PCM: 0.045 J/K sensible, 15 J latent, 60 C.
        StorageNode::with_phase_change(
            "pcm",
            0.045,
            PhaseChange {
                melt_temp_c: 60.0,
                latent_heat_j: 15.0,
                liquid_heat_capacity_j_per_k: 0.045,
            },
            25.0,
        )
    }

    #[test]
    fn sensible_node_linear_in_enthalpy() {
        let mut n = StorageNode::sensible_only("x", 2.0, 20.0);
        n.add_enthalpy(8.0);
        assert!((n.temperature_c() - 24.0).abs() < 1e-12);
        n.add_enthalpy(-16.0);
        assert!((n.temperature_c() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn pcm_plateaus_at_melting_point() {
        let mut n = pcm_node();
        // Heat to melting point: (60-25) * 0.045 = 1.575 J.
        n.add_enthalpy(1.575);
        assert!((n.temperature_c() - 60.0).abs() < 1e-9);
        assert!(n.melt_fraction().abs() < 1e-9);
        // Halfway through melting.
        n.add_enthalpy(7.5);
        assert!((n.temperature_c() - 60.0).abs() < 1e-9);
        assert!((n.melt_fraction() - 0.5).abs() < 1e-9);
        // Finish melting and add 0.45 J more: T = 60 + 0.45/0.045 = 70.
        n.add_enthalpy(7.5 + 0.45);
        assert!((n.temperature_c() - 70.0).abs() < 1e-9);
        assert!((n.melt_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcm_refreezes_symmetrically() {
        let mut n = pcm_node();
        n.set_temperature(60.0);
        n.add_enthalpy(15.0); // fully melt
        assert!((n.melt_fraction() - 1.0).abs() < 1e-12);
        n.add_enthalpy(-7.5);
        assert!((n.melt_fraction() - 0.5).abs() < 1e-12);
        assert!((n.temperature_c() - 60.0).abs() < 1e-9);
        n.add_enthalpy(-7.5 - 0.045 * 35.0);
        assert!((n.temperature_c() - 25.0).abs() < 1e-9);
        assert!(n.melt_fraction().abs() < 1e-12);
    }

    #[test]
    fn set_temperature_roundtrips() {
        let mut n = pcm_node();
        for t in [10.0, 25.0, 59.9, 60.0, 61.0, 75.0] {
            n.set_temperature(t);
            assert!(
                (n.temperature_c() - t).abs() < 1e-9,
                "roundtrip failed at {t}"
            );
        }
    }

    #[test]
    fn from_material_matches_manual_construction() {
        let mat = Material::reference_pcm();
        let n = StorageNode::from_material("pcm", &mat, 0.15, 25.0);
        let pc = n.phase_change().unwrap();
        assert!((pc.latent_heat_j - 15.0).abs() < 1e-12);
        assert!((pc.melt_temp_c - 60.0).abs() < 1e-12);
        assert!((n.sensible_capacity_j_per_k() - 0.045).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at or below the melting point")]
    fn pcm_cannot_start_melted() {
        let _ = StorageNode::with_phase_change(
            "pcm",
            1.0,
            PhaseChange {
                melt_temp_c: 60.0,
                latent_heat_j: 1.0,
                liquid_heat_capacity_j_per_k: 1.0,
            },
            61.0,
        );
    }
}
