//! Technology nodes and their scaling parameters.

use serde::{Deserialize, Serialize};

/// A CMOS process node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechNode {
    /// Feature size, nanometres.
    pub nm: u32,
    /// Supply voltage under ITRS projections, volts.
    pub vdd_itrs: f64,
    /// Supply voltage under Borkar's (pessimistic) projections, volts.
    pub vdd_borkar: f64,
}

/// The node sequence of Figure 1: 45 nm down to 6 nm.
pub const NODES: [TechNode; 7] = [
    TechNode {
        nm: 45,
        vdd_itrs: 1.00,
        vdd_borkar: 1.00,
    },
    TechNode {
        nm: 32,
        vdd_itrs: 0.93,
        vdd_borkar: 0.97,
    },
    TechNode {
        nm: 22,
        vdd_itrs: 0.87,
        vdd_borkar: 0.95,
    },
    TechNode {
        nm: 16,
        vdd_itrs: 0.81,
        vdd_borkar: 0.93,
    },
    TechNode {
        nm: 11,
        vdd_itrs: 0.76,
        vdd_borkar: 0.91,
    },
    TechNode {
        nm: 8,
        vdd_itrs: 0.71,
        vdd_borkar: 0.89,
    },
    TechNode {
        nm: 6,
        vdd_itrs: 0.66,
        vdd_borkar: 0.87,
    },
];

/// Generations elapsed since the 45 nm reference for a node index.
pub fn generation(index: usize) -> u32 {
    index as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_shrink_monotonically() {
        for w in NODES.windows(2) {
            assert!(w[1].nm < w[0].nm);
            assert!(w[1].vdd_itrs < w[0].vdd_itrs, "ITRS Vdd keeps scaling");
            assert!(w[1].vdd_borkar < w[0].vdd_borkar);
            assert!(
                w[0].vdd_itrs - w[1].vdd_itrs > w[0].vdd_borkar - w[1].vdd_borkar,
                "Borkar assumes slower voltage scaling"
            );
        }
    }
}
